#!/usr/bin/env python
"""Online adaptation: re-provisioning the coordination level under drift.

The paper's future work (§VII) asks for online self-adaptive algorithms
that adjust the coordination level as network dynamics change.  This
example drives a drifting workload — the Zipf exponent moves linearly
from 0.6 (flat, cache-hostile) to 1.3 (head-heavy) over 16 epochs — on
the Abilene topology, and compares two controllers against a
clairvoyant oracle:

- model-based: estimate the exponent from observed traffic (MLE),
  re-solve the paper's optimization, move (optionally rate-limited to
  bound placement churn);
- gradient: model-free Kiefer-Wolfowitz descent on the measured
  objective.

Run:  python examples/adaptive_provisioning.py
"""

from repro.adaptive import (
    AdaptiveSimulation,
    DriftingPopularity,
    GradientController,
    ModelBasedController,
    linear_drift,
)
from repro.core import Scenario
from repro.topology import load_topology

EPOCHS = 16
CATALOG = 4_000


def run(controller_name: str, controller, scenario, topology) -> None:
    drift = DriftingPopularity(linear_drift(0.6, 1.3, EPOCHS), CATALOG)
    simulation = AdaptiveSimulation(
        topology, scenario, drift, controller,
        requests_per_epoch=2_000, seed=11,
    )
    trace = simulation.run(EPOCHS)
    print(f"--- {controller_name} ---")
    print(f"{'epoch':>5}  {'s_true':>7}  {'deployed':>9}  {'oracle':>7}  {'churn':>6}")
    for record in trace.records:
        print(
            f"{record.epoch:>5}  {record.true_exponent:>7.3f}  "
            f"{record.deployed_level:>9.4f}  {record.oracle_level:>7.4f}  "
            f"{record.placement_churn:>6}"
        )
    print(
        f"tail tracking error = {trace.tracking_error(tail=6):.4f}; "
        f"total placement churn = {trace.total_churn()}\n"
    )


def main() -> None:
    topology = load_topology("abilene")
    scenario = Scenario(
        alpha=0.7,
        n_routers=topology.n_routers,
        capacity=40.0,
        catalog_size=CATALOG,
    )
    print(
        "Popularity drift s: 0.6 -> 1.3 over "
        f"{EPOCHS} epochs on {topology.name} (n={topology.n_routers})\n"
    )
    run(
        "model-based (estimate-then-optimize)",
        ModelBasedController(scenario, memory=0.3),
        scenario,
        topology,
    )
    run(
        "model-based, churn-limited (max step 0.05/epoch)",
        ModelBasedController(scenario, memory=0.3, max_step=0.05),
        scenario,
        topology,
    )
    run(
        "gradient (model-free Kiefer-Wolfowitz)",
        GradientController(initial_level=0.2, step_gain=0.5, probe_gain=0.15),
        scenario,
        topology,
    )
    print(
        "Reading: the model-based controller locks onto the oracle within\n"
        "an epoch or two and follows the drift; rate-limiting trades a\n"
        "little tracking lag for much lower placement churn; the model-\n"
        "free controller converges more slowly but needs no popularity\n"
        "assumption."
    )


if __name__ == "__main__":
    main()
