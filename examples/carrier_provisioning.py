#!/usr/bin/env python
"""Carrier provisioning study over the paper's four real topologies.

For each network (Abilene, CERNET, GEANT, US-A) this example extracts
the Table III parameters (router count n, unit coordination cost w =
max pairwise latency, mean intra-domain hop distance d1-d0), solves the
optimal coordination level across a range of trade-off weights alpha,
and prints a per-carrier provisioning recommendation with the expected
origin-load and latency gains.

This is the workflow a network carrier adopting the paper's model would
follow: measure the topology, pick alpha to taste, provision l*.

Run:  python examples/carrier_provisioning.py
"""

from repro import Scenario, load_topology, topology_parameters

ALPHAS = (0.2, 0.5, 0.8, 1.0)
TOPOLOGIES = ("abilene", "cernet", "geant", "us-a")


def study_topology(name: str) -> None:
    topology = load_topology(name)
    params = topology_parameters(topology)
    print(f"--- {topology.name} ({topology.region}, {topology.kind}) ---")
    print(
        f"routers n = {params.n_routers}, unit cost w = "
        f"{params.unit_cost_ms:.1f} ms, mean peer distance = "
        f"{params.mean_hops:.4f} hops ({params.mean_latency_ms:.1f} ms)"
    )
    print(f"{'alpha':>6}  {'l*':>8}  {'G_O':>8}  {'G_R':>8}  method")
    for alpha in ALPHAS:
        scenario = Scenario(
            alpha=alpha,
            n_routers=params.n_routers,
            unit_cost=params.unit_cost_ms,
            peer_delta=params.mean_hops,
        )
        strategy, gains = scenario.solve_with_gains()
        print(
            f"{alpha:>6.1f}  {strategy.level:>8.4f}  "
            f"{gains.origin_load_reduction:>8.2%}  "
            f"{gains.routing_improvement:>8.2%}  {strategy.method}"
        )
    print()


def main() -> None:
    print("Optimal coordinated-caching provisioning per carrier")
    print("(base model parameters from the paper's Table IV; per-topology")
    print(" n, w, d1-d0 extracted from the reconstructed networks)\n")
    for name in TOPOLOGIES:
        study_topology(name)
    print(
        "Reading: larger networks (CERNET, n=36) coordinate less at low\n"
        "alpha because the w*n*x cost term scales with n, while at\n"
        "alpha -> 1 every carrier converges to a high coordination level."
    )


if __name__ == "__main__":
    main()
