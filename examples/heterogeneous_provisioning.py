#!/usr/bin/env python
"""Heterogeneous capacities: when routers differ, who should coordinate?

The paper's model assumes identical routers; its future work (§VII)
asks about heterogeneous storage.  This example provisions a domain
whose router capacities range over a 9:1 spread (think: core PoPs with
large stores, edge PoPs with small ones) while keeping the aggregate
storage fixed, and compares:

- the *uniform-level* strategy — applying the paper's homogeneous
  result, every router coordinates the same fraction of its store;
- the *free per-router optimum* — each router gets its own
  coordinated share, solved jointly.

Run:  python examples/heterogeneous_provisioning.py
"""

import numpy as np

from repro.core import Scenario
from repro.hetero import (
    HeterogeneousModel,
    optimize_shares,
    optimize_uniform_level,
)

N_ROUTERS = 20
TOTAL_CAPACITY = 20_000.0
ALPHA = 0.6


def build_model(spread: float) -> HeterogeneousModel:
    scenario = Scenario(alpha=ALPHA)
    base = np.linspace(1.0, spread, N_ROUTERS)
    capacities = base / base.sum() * TOTAL_CAPACITY
    return HeterogeneousModel(
        scenario.popularity(),
        scenario.latency(),
        capacities,
        scenario.cost_model(),
        ALPHA,
    )


def main() -> None:
    print(
        f"n = {N_ROUTERS} routers, fixed aggregate storage "
        f"{TOTAL_CAPACITY:.0f}, alpha = {ALPHA}\n"
    )
    print(f"{'spread':>7}  {'uniform obj':>12}  {'free obj':>12}  {'gain':>8}")
    for spread in (1.0, 3.0, 9.0):
        model = build_model(spread)
        uniform = optimize_uniform_level(model)
        free = optimize_shares(model)
        gain = uniform.objective_value - free.objective_value
        print(
            f"{spread:>7.1f}  {uniform.objective_value:>12.6f}  "
            f"{free.objective_value:>12.6f}  {gain:>8.6f}"
        )

    model = build_model(9.0)
    free = optimize_shares(model)
    print("\nPer-router optimal coordination levels (9:1 capacity spread):")
    print(f"{'router':>6}  {'capacity':>9}  {'x_i':>9}  {'level':>6}")
    for i, (cap, share, level) in enumerate(
        zip(model.capacities, free.shares, free.levels)
    ):
        print(f"{i:>6}  {cap:>9.0f}  {share:>9.1f}  {level:>6.3f}")

    print(
        "\nReading: the free optimum concentrates local (replicated)\n"
        "storage on the smallest routers — their stores barely dent the\n"
        "popularity head, so they serve it locally — while mid-size and\n"
        "large routers dedicate most capacity to the coordinated pool.\n"
        "The uniform-level rule leaves measurable objective value on the\n"
        "table once capacities disperse."
    )


if __name__ == "__main__":
    main()
