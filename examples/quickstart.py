#!/usr/bin/env python
"""Quickstart: solve for the optimal coordination level of one network.

Scenario: a 20-router domain (the paper's US-A carrier), a million-item
Zipf(0.8) catalog, 1000-object content stores, and a carrier that
weighs routing performance and coordination cost 70/30.

Run:  python examples/quickstart.py
"""

from repro import Scenario


def main() -> None:
    scenario = Scenario(
        alpha=0.7,        # 70% weight on routing performance
        gamma=5.0,        # origin is 5x farther (in latency) than peers
        exponent=0.8,     # Zipf popularity exponent
        n_routers=20,     # routers in the domain
        catalog_size=10**6,
        capacity=10**3,   # content-store slots per router
    )

    strategy, gains = scenario.solve_with_gains()

    print("=== Optimal in-network caching provisioning ===")
    print(f"scenario: {scenario}")
    print()
    print(f"optimal coordination level  l* = {strategy.level:.4f}")
    print(f"  -> {strategy.storage:.0f} of {scenario.capacity:.0f} slots per "
          f"router run coordinated")
    print(f"  -> {int((scenario.capacity - strategy.storage))} slots keep the "
          f"globally most popular contents locally")
    print(f"solver: {strategy.method};  objective T_w(x*) = "
          f"{strategy.objective_value:.4f}")
    print()
    print("=== Gains vs the non-coordinated baseline ===")
    print(f"origin load:   {gains.origin_load_baseline:.1%} -> "
          f"{gains.origin_load_optimal:.1%}  "
          f"(G_O = {gains.origin_load_reduction:.1%} reduction)")
    print(f"mean latency:  {gains.latency_baseline:.3f} -> "
          f"{gains.latency_optimal:.3f} hops  "
          f"(G_R = {gains.routing_improvement:.1%} improvement)")


if __name__ == "__main__":
    main()
