#!/usr/bin/env python
"""Validate the analytical model against the request-level simulator.

The paper's evaluation is purely numerical; this library also contains
the event-level CCN caching simulator the model abstracts.  This
example provisions the US-A topology at several coordination levels,
drives an IRM Zipf workload through the simulated network, and compares
what the model *predicts* (origin load, per-tier service fractions)
against what the simulator *measures*.

Run:  python examples/model_validation.py
"""

import numpy as np

from repro import (
    IRMWorkload,
    LatencyModel,
    ProvisioningStrategy,
    RoutingPerformanceModel,
    SteadyStateSimulator,
    ZipfModel,
    ZipfPopularity,
    load_topology,
)
from repro.core.performance import tier_fractions

CAPACITY = 50
CATALOG = 5_000
EXPONENT = 0.8
REQUESTS = 50_000
LEVELS = (0.0, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    topology = load_topology("us-a")
    n = topology.n_routers
    popularity_sim = ZipfModel(EXPONENT, CATALOG)
    popularity_model = ZipfPopularity(EXPONENT, CATALOG)
    workload = IRMWorkload(popularity_sim, topology.nodes, seed=42)

    print(f"Topology: {topology.name} (n={n}); c={CAPACITY}, N={CATALOG}, "
          f"s={EXPONENT}, {REQUESTS} requests\n")
    header = (
        f"{'level':>6}  {'origin (model)':>14}  {'origin (sim)':>13}  "
        f"{'local (model)':>13}  {'local (sim)':>12}  {'mean hops':>10}"
    )
    print(header)
    print("-" * len(header))

    for level in LEVELS:
        strategy = ProvisioningStrategy(
            capacity=CAPACITY, n_routers=n, level=level
        )
        simulator = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        )
        metrics = simulator.run(workload, REQUESTS)

        x = float(strategy.coordinated_slots)
        local, peer, origin = tier_fractions(
            x, float(CAPACITY), n, popularity_model, exact=True
        )
        # The model books the requester's own coordinated share as peer;
        # the simulator correctly serves it locally — shift 1/n of peer.
        local_adjusted = local + peer / n

        print(
            f"{level:>6.2f}  {origin:>14.4f}  {metrics.origin_load:>13.4f}  "
            f"{local_adjusted:>13.4f}  {metrics.local_fraction:>12.4f}  "
            f"{metrics.mean_hops:>10.4f}"
        )

    print(
        "\nThe simulated origin load tracks the analytical prediction to\n"
        "within sampling noise at every coordination level — the eq. 2\n"
        "steady-state model is exact for provisioned placements."
    )


if __name__ == "__main__":
    main()
