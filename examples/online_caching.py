#!/usr/bin/env python
"""Online (dynamic) caching: replacement policies vs the provisioned optimum.

The analytical model assumes a provisioned steady state.  Real CCN
routers run online replacement (LRU by default).  This example runs the
dynamic simulator on the GEANT topology in three configurations —

1. non-coordinated LRU (each router caches what passes by; misses go
   to the origin),
2. non-coordinated perfect-LFU (the paper's "canonical frequency-based
   policy", which converges to the top-c placement of the model),
3. hash-coordinated LRU at the model's optimal level l* (each rank has
   a custodian router that absorbs the domain's misses),

— and compares their measured origin load and mean fetch distance
against the analytical optimum's prediction.

Run:  python examples/online_caching.py
"""

from repro import (
    DynamicSimulator,
    IRMWorkload,
    ProvisioningStrategy,
    Scenario,
    SteadyStateSimulator,
    ZipfModel,
    load_topology,
    topology_parameters,
)

CAPACITY = 50
CATALOG = 5_000
EXPONENT = 0.8
REQUESTS = 40_000
WARMUP = 40_000


def main() -> None:
    topology = load_topology("geant")
    params = topology_parameters(topology)
    workload = IRMWorkload(ZipfModel(EXPONENT, CATALOG), topology.nodes, seed=9)

    # The model's recommended coordination level for this network.
    scenario = Scenario(
        alpha=0.8,
        n_routers=params.n_routers,
        unit_cost=params.unit_cost_ms,
        peer_delta=params.mean_hops,
        capacity=float(CAPACITY),
        catalog_size=CATALOG,
    )
    level_star = scenario.solve(check_conditions=False).level
    print(f"Topology: {topology.name} (n={params.n_routers}); "
          f"model-optimal coordination level l* = {level_star:.3f}\n")

    configs = {
        "LRU, non-coordinated": DynamicSimulator(
            topology, capacity=CAPACITY, policy="lru",
            coordination_level=0.0, seed=1,
        ),
        "perfect-LFU, non-coordinated": DynamicSimulator(
            topology, capacity=CAPACITY, policy="perfect-lfu",
            coordination_level=0.0, seed=1,
        ),
        "LRU, hash-coordinated @ l*": DynamicSimulator(
            topology, capacity=CAPACITY, policy="lru",
            coordination_level=level_star, seed=1,
        ),
    }

    header = (
        f"{'configuration':<32}  {'origin load':>11}  {'local':>7}  "
        f"{'peer':>7}  {'mean hops':>9}"
    )
    print(header)
    print("-" * len(header))
    for name, simulator in configs.items():
        metrics = simulator.run(workload, REQUESTS, warmup=WARMUP)
        print(
            f"{name:<32}  {metrics.origin_load:>11.4f}  "
            f"{metrics.local_fraction:>7.4f}  {metrics.peer_fraction:>7.4f}  "
            f"{metrics.mean_hops:>9.4f}"
        )

    # The provisioned steady state at l* — what the model promises.
    strategy = ProvisioningStrategy(
        capacity=CAPACITY, n_routers=params.n_routers, level=level_star
    )
    provisioned = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    ).run(workload, REQUESTS)
    print(
        f"{'provisioned optimum (model)':<32}  "
        f"{provisioned.origin_load:>11.4f}  "
        f"{provisioned.local_fraction:>7.4f}  "
        f"{provisioned.peer_fraction:>7.4f}  {provisioned.mean_hops:>9.4f}"
    )

    print(
        "\nReading: coordination (hash or provisioned) cuts the origin\n"
        "load far below any non-coordinated policy, because the domain\n"
        "collectively stores n times more distinct contents — the\n"
        "paper's central quantitative claim."
    )


if __name__ == "__main__":
    main()
