#!/usr/bin/env python
"""Bring your own network: provision a custom topology end to end.

A carrier adopting the paper's model starts from its own PoP map.  This
example walks the full workflow on a made-up 12-PoP European carrier:

1. describe the network (nodes with coordinates, links with latencies)
   and save/load it through the JSON topology format;
2. extract the model parameters the paper's §V-A procedure derives
   (n, w = max pairwise latency, mean peer distance);
3. solve for the optimal coordination level at the carrier's chosen
   trade-off weight;
4. validate the recommendation by simulating the provisioned network
   against the non-coordinated baseline.

Run:  python examples/custom_topology.py
"""

import tempfile
from pathlib import Path

from repro import (
    IRMWorkload,
    ProvisioningStrategy,
    Scenario,
    SteadyStateSimulator,
    Topology,
    ZipfModel,
)
from repro.topology import load_topology_file, save_topology

CITIES = {
    "London": (51.51, -0.13),
    "Paris": (48.86, 2.35),
    "Amsterdam": (52.37, 4.90),
    "Frankfurt": (50.11, 8.68),
    "Zurich": (47.38, 8.54),
    "Milan": (45.46, 9.19),
    "Vienna": (48.21, 16.37),
    "Prague": (50.08, 14.44),
    "Warsaw": (52.23, 21.01),
    "Madrid": (40.42, -3.70),
    "Stockholm": (59.33, 18.07),
    "Dublin": (53.35, -6.26),
}

LINKS = [
    ("London", "Paris"), ("London", "Amsterdam"), ("London", "Dublin"),
    ("Paris", "Madrid"), ("Paris", "Frankfurt"), ("Paris", "Zurich"),
    ("Amsterdam", "Frankfurt"), ("Amsterdam", "Stockholm"),
    ("Frankfurt", "Prague"), ("Frankfurt", "Zurich"),
    ("Zurich", "Milan"), ("Milan", "Vienna"), ("Vienna", "Prague"),
    ("Prague", "Warsaw"), ("Warsaw", "Stockholm"), ("Vienna", "Warsaw"),
    ("Madrid", "Milan"), ("Dublin", "Amsterdam"),
]

CAPACITY = 50
CATALOG = 5_000
ALPHA = 0.8


def main() -> None:
    # 1. Build from coordinates (propagation latency + 1 ms per hop),
    #    then round-trip through the JSON format as a user would.
    topology = Topology.from_coordinates(
        CITIES, LINKS, name="EU-Custom", region="Europe", kind="Commercial",
        km_per_ms=200.0, per_hop_ms=1.0,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "eu-custom.json"
        save_topology(topology, path)
        topology = load_topology_file(path)
        print(f"loaded {topology.name}: n={topology.n_routers}, "
              f"links={topology.n_links} (from {path.name})")

    # 2. Paper §V-A parameter extraction, via the one-call helper.
    scenario = Scenario.from_topology(
        topology, alpha=ALPHA, capacity=float(CAPACITY), catalog_size=CATALOG
    )
    print(f"extracted: w = {scenario.unit_cost:.2f} ms, "
          f"d1-d0 = {scenario.peer_delta:.4f} hops\n")

    # 3. Solve.
    strategy, gains = scenario.solve_with_gains(check_conditions=False)
    print(f"recommended coordination level l* = {strategy.level:.4f}")
    print(f"predicted: G_O = {gains.origin_load_reduction:.2%}, "
          f"G_R = {gains.routing_improvement:.2%}\n")

    # 4. Validate by simulation against the non-coordinated baseline.
    workload = IRMWorkload(ZipfModel(scenario.exponent, CATALOG),
                           topology.nodes, seed=29)
    results = {}
    for label, level in (("non-coordinated", 0.0), ("optimal", strategy.level)):
        plan = ProvisioningStrategy(
            capacity=CAPACITY, n_routers=topology.n_routers, level=level
        )
        simulator = SteadyStateSimulator.from_strategy(
            topology, plan, message_accounting="none"
        )
        results[label] = simulator.run(workload, 30_000)
    baseline, optimal = results["non-coordinated"], results["optimal"]
    print(f"{'strategy':<16}  {'origin load':>11}  {'mean hops':>9}")
    for label, metrics in results.items():
        print(f"{label:<16}  {metrics.origin_load:>11.4f}  "
              f"{metrics.mean_hops:>9.4f}")
    measured_go = 1 - optimal.origin_load / baseline.origin_load
    print(f"\nmeasured origin load reduction: {measured_go:.2%} "
          f"(model predicted {gains.origin_load_reduction:.2%})")


if __name__ == "__main__":
    main()
