#!/usr/bin/env python
"""The coordinated strategy on a real CCN data plane, packet by packet.

The paper's model abstracts CCN into three latency tiers.  This example
runs the actual protocol machinery — Interests, Data, Pending Interest
Tables, name-based FIBs — on the Abilene topology and shows three
things the abstraction hides:

1. placement alone is NOT enough: splitting contents across routers
   without installing custodian FIB routes leaves Interests flowing
   toward the origin (the coordination messages of eq. 3 are what buy
   the gain);
2. with the routes installed, the packet-level origin load matches the
   analytical model;
3. PIT aggregation: concurrent Interests for the same content collapse
   into a single upstream fetch — a CCN effect the flow-level model
   cannot represent (and which makes measured origin load slightly
   better than predicted under bursty arrivals).

Run:  python examples/ccn_data_plane.py
"""

from repro import IRMWorkload, ProvisioningStrategy, ZipfModel, load_topology
from repro.ccn import CCNNetwork, NoCache
from repro.core import LatencyModel, RoutingPerformanceModel, ZipfPopularity

CAPACITY = 40
CATALOG = 4_000
EXPONENT = 0.8
REQUESTS = 6_000
LEVEL = 0.6


def build_network(topology) -> CCNNetwork:
    return CCNNetwork(
        topology, origin_gateway=topology.nodes[0], enroute=NoCache()
    )


def main() -> None:
    topology = load_topology("abilene")
    n = topology.n_routers
    strategy = ProvisioningStrategy(capacity=CAPACITY, n_routers=n, level=LEVEL)
    workload = IRMWorkload(ZipfModel(EXPONENT, CATALOG), topology.nodes, seed=21)

    perf = RoutingPerformanceModel(
        popularity=ZipfPopularity(EXPONENT, CATALOG),
        latency=LatencyModel(1.0, 2.0, 3.0),
        capacity=float(CAPACITY),
        n_routers=n,
    )
    predicted = float(perf.origin_load(strategy.coordinated_slots, exact=True))
    print(f"Topology: {topology.name} (n={n}); level l = {LEVEL}")
    print(f"analytical origin load prediction: {predicted:.4f}\n")

    # 1. Placement without FIB coordination.
    net = build_network(topology)
    placement_only = build_network(topology)
    for index, node in enumerate(topology.nodes):
        from repro.simulation import StaticCache

        ranks = frozenset(strategy.contents_of_router(index))
        placement_only._nodes[node].store = StaticCache(CAPACITY, ranks)
    metrics1 = placement_only.run_workload(
        workload, REQUESTS, interarrival_ms=1_000.0
    )
    print(
        "placement only (no custodian routes):  "
        f"origin load {metrics1.origin_load:.4f}  "
        f"(directives paid: {placement_only.directive_messages})"
    )

    # 2. Full coordination: placement + FIB routes.
    net.install_strategy(strategy)
    metrics2 = net.run_workload(workload, REQUESTS, interarrival_ms=1_000.0)
    print(
        "coordinated (routes installed):        "
        f"origin load {metrics2.origin_load:.4f}  "
        f"(directives paid: {net.directive_messages})"
    )

    # 3. Bursty arrivals: PIT aggregation kicks in.
    bursty = build_network(topology)
    bursty.install_strategy(strategy)
    metrics3 = bursty.run_workload(workload, REQUESTS, interarrival_ms=0.05)
    print(
        "coordinated, bursty arrivals:          "
        f"origin load {metrics3.origin_load:.4f}  "
        f"({metrics3.pit_aggregations} Interests aggregated in PITs)"
    )

    print(
        f"\nmean fetch distance (coordinated): "
        f"{metrics2.mean_interest_hops:.3f} router hops; "
        f"mean completion latency {metrics2.mean_latency_ms:.1f} ms"
    )
    print(
        "\nReading: the model's prediction is realized only when the\n"
        "coordination messages install the custodian routes — the cost\n"
        "term of eq. 3 is not an accounting fiction but the price of the\n"
        "routing state that produces the gain."
    )


if __name__ == "__main__":
    main()
