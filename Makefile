# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench experiments examples scorecard clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro run all

scorecard:
	$(PYTHON) -m repro run scorecard

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/carrier_provisioning.py
	$(PYTHON) examples/model_validation.py
	$(PYTHON) examples/online_caching.py
	$(PYTHON) examples/ccn_data_plane.py
	$(PYTHON) examples/adaptive_provisioning.py
	$(PYTHON) examples/heterogeneous_provisioning.py
	$(PYTHON) examples/custom_topology.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
