# Convenience targets for the reproduction repository.

PYTHON ?= python
# Make the src layout importable without an editable install.
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test lint lint-full bench bench-quick bench-check experiments examples scorecard clean

# Label for the throughput snapshot written by `make bench`
# (BENCH_<label>.json at the repo root).
BENCH_LABEL ?= local

install:
	pip install -e . || $(PYTHON) setup.py develop

# Static analysis gate: the repo-specific whole-program checker (rules
# R1-R10, see DESIGN.md "Static analysis & invariants") plus ruff and
# mypy when installed (pip install -e '.[dev]'); both are skipped with
# a notice on bare containers so `make lint` stays runnable everywhere
# the test suite is.  Warm runs are served from .lint-cache/ and the
# committed baseline (kept empty by policy) gates on *new* findings;
# `make lint-full` bypasses both for a from-scratch audit.
lint:
	$(PYTHON) -m repro.lint --baseline lint-baseline.json src/ tests/
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[dev]')"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/core src/repro/lint; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[dev]')"; \
	fi

# Cache-bypassing audit run: re-parses and re-lints every file and
# ignores the baseline, so it sees exactly what a fresh checkout sees.
lint-full:
	$(PYTHON) -m repro.lint --no-cache src/ tests/

test: lint bench-quick
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	$(PYTHON) benchmarks/run_bench.py --label $(BENCH_LABEL)

# CI smoke: exercises the batched kernel, both simulators, the sweep
# engine and the Zipf caches end to end with small counts; writes
# nothing and stores no pytest-benchmark data.
bench-quick:
	$(PYTHON) benchmarks/run_bench.py --quick --no-write

# Regression gate: re-measure the guarded throughput cases against the
# newest committed BENCH_*.json and fail on a >20% drop.  Skips (exit 0)
# when the machine fingerprint differs from the baseline's, since the
# numbers are only comparable on the machine that recorded them.
bench-check:
	$(PYTHON) benchmarks/check_regression.py

experiments:
	$(PYTHON) -m repro run all

scorecard:
	$(PYTHON) -m repro run scorecard

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/carrier_provisioning.py
	$(PYTHON) examples/model_validation.py
	$(PYTHON) examples/online_caching.py
	$(PYTHON) examples/ccn_data_plane.py
	$(PYTHON) examples/adaptive_provisioning.py
	$(PYTHON) examples/heterogeneous_provisioning.py
	$(PYTHON) examples/custom_topology.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
