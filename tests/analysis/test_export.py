"""Unit tests for repro.analysis.export — CSV/JSON serialization."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis.experiments import TableData
from repro.analysis.export import (
    export_result,
    figure_to_csv,
    figure_to_json,
    table_to_csv,
    table_to_json,
)
from repro.analysis.sweep import FigureData, Series
from repro.errors import ParameterError


@pytest.fixture
def table() -> TableData:
    return TableData(
        table_id="X",
        title="A title",
        columns=("name", "value"),
        rows=(("alpha", 1.5), ("beta", 2)),
        notes="n",
    )


@pytest.fixture
def figure() -> FigureData:
    return FigureData(
        figure_id="9",
        title="fig",
        xlabel="x",
        ylabel="y",
        series=(
            Series(label="a", x=(1.0, 2.0), y=(10.0, 20.0)),
            Series(label="b", x=(1.0, 2.0), y=(30.0, 40.0)),
        ),
        parameters={"gamma": 5.0},
    )


class TestCsv:
    def test_table_roundtrip(self, table):
        rows = list(csv.reader(io.StringIO(table_to_csv(table))))
        assert rows[0] == ["name", "value"]
        assert rows[1] == ["alpha", "1.5"]
        assert len(rows) == 3

    def test_figure_layout(self, figure):
        rows = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["1.0", "10.0", "30.0"]

    def test_empty_figure(self):
        fig = FigureData(
            figure_id="0", title="t", xlabel="x", ylabel="y", series=()
        )
        rows = list(csv.reader(io.StringIO(figure_to_csv(fig))))
        assert rows == [["x"]]


class TestJson:
    def test_table_document(self, table):
        doc = json.loads(table_to_json(table))
        assert doc["kind"] == "table"
        assert doc["id"] == "X"
        assert doc["columns"] == ["name", "value"]
        assert doc["rows"][0] == ["alpha", 1.5]
        assert doc["notes"] == "n"

    def test_figure_document(self, figure):
        doc = json.loads(figure_to_json(figure))
        assert doc["kind"] == "figure"
        assert doc["series"][0] == {"label": "a", "x": [1.0, 2.0], "y": [10.0, 20.0]}
        assert doc["parameters"] == {"gamma": "5.0"}


class TestExportResult:
    def test_dispatch(self, table, figure):
        assert export_result(table, "csv").startswith("name,value")
        assert json.loads(export_result(figure, "json"))["kind"] == "figure"

    def test_writes_file(self, table, tmp_path):
        path = tmp_path / "out.csv"
        text = export_result(table, "csv", path=path)
        assert path.read_text() == text

    def test_rejects_unknown_format(self, table):
        with pytest.raises(ParameterError):
            export_result(table, "xml")

    def test_rejects_unknown_object(self):
        with pytest.raises(ParameterError):
            export_result("not a result", "csv")  # type: ignore[arg-type]
