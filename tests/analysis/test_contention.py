"""Tests for the packet-level contention sweep (repro.analysis.contention)."""

from __future__ import annotations

import pytest

from repro.analysis.contention import (
    DEFAULT_CONTENTION_CONFIGS,
    ContentionConfig,
    contention_sweep,
)
from repro.ccn import CacheQueue
from repro.errors import ParameterError

# A deliberately small sweep so the suite stays fast: three levels, two
# regimes, a few thousand requests.  The full-size defaults back the
# README headline and run via `repro ccn --sweep`.
SMALL_LEVELS = (0.0, 0.5, 1.0)
SMALL_CONFIGS = (
    ContentionConfig("independent", 1.0),
    ContentionConfig("contended", 0.02),
    ContentionConfig(
        "tiny queue",
        0.02,
        CacheQueue(size=1, read_penalty_ms=1.0, write_penalty_ms=0.5),
    ),
)


@pytest.fixture(scope="module")
def figure():
    return contention_sweep(
        levels=SMALL_LEVELS, configs=SMALL_CONFIGS, requests=4000
    )


class TestContentionConfig:
    def test_rejects_negative_interarrival(self):
        with pytest.raises(ParameterError):
            ContentionConfig("bad", -1.0)

    def test_default_configs_escalate(self):
        # Ordered from the model's world to the hostile one.
        assert DEFAULT_CONTENTION_CONFIGS[0].queue is None
        assert DEFAULT_CONTENTION_CONFIGS[0].interarrival_ms > (
            DEFAULT_CONTENTION_CONFIGS[1].interarrival_ms
        )
        sizes = [c.queue.size for c in DEFAULT_CONTENTION_CONFIGS if c.queue]
        assert sizes == sorted(sizes, reverse=True)


class TestContentionSweep:
    def test_figure_shape(self, figure):
        assert figure.figure_id == "contention"
        assert len(figure.series) == len(SMALL_CONFIGS)
        for series in figure.series:
            assert series.x == SMALL_LEVELS
            assert len(series.y) == len(SMALL_LEVELS)
            assert all(v > 0 for v in series.y)

    def test_parameters_carry_optima_and_mechanisms(self, figure):
        params = figure.parameters
        assert 0.0 <= params["analytic_level"] <= 1.0
        for config in SMALL_CONFIGS:
            assert params["measured_optima"][config.label] in SMALL_LEVELS
        # Contention turns on PIT aggregation ...
        assert (
            params["pit_aggregations"]["contended"]
            > params["pit_aggregations"]["independent"]
        )
        # ... and a size-1 queue under contention rejects.
        assert params["rejected_ops"]["tiny queue"] > 0
        assert params["rejected_ops"]["independent"] == 0

    def test_validates_levels(self):
        with pytest.raises(ParameterError):
            contention_sweep(levels=(0.5, 1.5), requests=10)
        with pytest.raises(ParameterError):
            contention_sweep(levels=(), requests=10)

    def test_validates_requests(self):
        with pytest.raises(ParameterError):
            contention_sweep(levels=SMALL_LEVELS, requests=0)
