"""Unit tests for repro.analysis.sensitivity — stability of ℓ*."""

from __future__ import annotations

import pytest

from repro.analysis.sensitivity import (
    level_sensitivity,
    sensitive_range,
    sensitivity_profile,
)
from repro.core import Scenario
from repro.errors import ParameterError


class TestLevelSensitivity:
    def test_alpha_sensitivity_positive(self):
        """ℓ* increases in α (Figure 4), so dℓ*/dα > 0 mid-range."""
        assert level_sensitivity(Scenario(alpha=0.5), "alpha") > 0

    def test_gamma_sensitivity_positive(self):
        assert level_sensitivity(Scenario(alpha=0.5), "gamma") > 0

    def test_unit_cost_sensitivity_negative(self):
        """ℓ* decreases in w (Figure 7) at moderate α."""
        assert level_sensitivity(Scenario(alpha=0.4), "unit_cost") < 0

    def test_unit_cost_insensitive_at_alpha_one(self):
        """At α = 1 the cost term vanishes: dℓ*/dw = 0 (Figure 7)."""
        assert level_sensitivity(Scenario(alpha=1.0), "unit_cost") == pytest.approx(
            0.0, abs=1e-9
        )

    def test_rejects_integer_fields(self):
        with pytest.raises(ParameterError):
            level_sensitivity(Scenario(), "n_routers")

    def test_rejects_unknown_field(self):
        with pytest.raises(ParameterError):
            level_sensitivity(Scenario(), "weather")

    def test_matches_secant_of_sweep(self):
        scenario = Scenario(alpha=0.5)
        eps = 0.01
        lo = scenario.replace(alpha=0.5 - eps).solve(check_conditions=False).level
        hi = scenario.replace(alpha=0.5 + eps).solve(check_conditions=False).level
        secant = (hi - lo) / (2 * eps)
        assert level_sensitivity(scenario, "alpha") == pytest.approx(
            secant, rel=0.1
        )


class TestSensitiveRange:
    def test_shifts_down_with_gamma(self):
        """Higher γ moves the sensitive range to lower α — the
        self-consistent version of the paper's Figure 4 remark."""
        low_gamma = sensitive_range(Scenario(gamma=2.0))
        high_gamma = sensitive_range(Scenario(gamma=10.0))
        assert high_gamma.alpha_low < low_gamma.alpha_low
        assert high_gamma.alpha_high < low_gamma.alpha_high

    def test_range_well_formed(self):
        result = sensitive_range(Scenario(gamma=5.0))
        assert 0.0 < result.alpha_low <= result.alpha_high <= 1.0
        assert result.level_low <= result.level_high
        assert result.width >= 0.0
        assert result.alpha_low <= result.max_slope_alpha + 0.3

    def test_matches_paper_interval_scale(self):
        """Both paper-quoted intervals ([0.2,0.4] and [0.6,0.8]) appear
        across the γ extremes, with widths ~0.2."""
        low_gamma = sensitive_range(Scenario(gamma=2.0))
        high_gamma = sensitive_range(Scenario(gamma=10.0))
        assert 0.1 <= high_gamma.alpha_low <= 0.3
        assert 0.2 <= high_gamma.alpha_high <= 0.45
        assert 0.35 <= low_gamma.alpha_low <= 0.65
        assert 0.6 <= low_gamma.alpha_high <= 0.85

    def test_degenerate_scenario_rejected(self):
        """With a negligible cost term, ℓ* equals the α=1 optimum for
        every α — no swing, hence no sensitive range."""
        with pytest.raises(ParameterError):
            sensitive_range(Scenario(cost_scale=1e-15), grid_size=21)

    def test_validates_inputs(self):
        with pytest.raises(ParameterError):
            sensitive_range(Scenario(), low_fraction=0.9, high_fraction=0.1)
        with pytest.raises(ParameterError):
            sensitive_range(Scenario(), grid_size=5)


class TestProfile:
    def test_profile_covers_all_fields(self):
        profile = sensitivity_profile(Scenario(alpha=0.5))
        assert set(profile) == {
            "alpha", "gamma", "exponent", "unit_cost", "peer_delta", "capacity",
        }

    def test_signs_consistent_with_figures(self):
        profile = sensitivity_profile(Scenario(alpha=0.5))
        assert profile["alpha"] > 0  # Figure 4
        assert profile["gamma"] > 0  # Figure 4
        assert profile["unit_cost"] < 0  # Figure 7
