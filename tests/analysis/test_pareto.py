"""Unit tests for repro.analysis.pareto — the performance/cost frontier."""

from __future__ import annotations

import pytest

from repro.analysis.pareto import knee_point, pareto_frontier, ParetoPoint
from repro.core import Scenario
from repro.errors import ParameterError


@pytest.fixture(scope="module")
def frontier():
    return pareto_frontier(Scenario(gamma=5.0))


class TestFrontier:
    def test_alpha_sweep_order(self, frontier):
        alphas = [p.alpha for p in frontier]
        assert alphas == sorted(alphas)
        assert alphas[0] == 0.0
        assert alphas[-1] == 1.0

    def test_latency_non_increasing(self, frontier):
        latencies = [p.latency for p in frontier]
        assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))

    def test_cost_non_decreasing(self, frontier):
        costs = [p.cost for p in frontier]
        assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_levels_track_alpha(self, frontier):
        levels = [p.level for p in frontier]
        assert levels[0] == 0.0
        assert levels[-1] > 0.9
        assert all(b >= a - 1e-9 for a, b in zip(levels, levels[1:]))

    def test_endpoints(self, frontier):
        # Alpha 0: no coordination, zero variable cost.
        assert frontier[0].cost == pytest.approx(0.0, abs=1e-9)
        # Alpha 1: latency at its minimum over the frontier.
        assert frontier[-1].latency == min(p.latency for p in frontier)

    def test_rejects_empty_alphas(self):
        with pytest.raises(ParameterError):
            pareto_frontier(Scenario(), alphas=())


class TestKnee:
    def test_knee_is_interior(self, frontier):
        knee = knee_point(frontier)
        assert frontier[0].alpha < knee.alpha < frontier[-1].alpha

    def test_knee_buys_most_latency_cheaply(self, frontier):
        """The knee captures the bulk of the achievable latency gain at
        a fraction of the maximal cost."""
        knee = knee_point(frontier)
        total_gain = frontier[0].latency - frontier[-1].latency
        knee_gain = frontier[0].latency - knee.latency
        assert knee_gain >= 0.5 * total_gain
        assert knee.cost <= 0.8 * frontier[-1].cost

    def test_needs_three_points(self):
        points = (
            ParetoPoint(alpha=0.0, level=0.0, latency=2.0, cost=0.0),
            ParetoPoint(alpha=1.0, level=1.0, latency=1.0, cost=1.0),
        )
        with pytest.raises(ParameterError):
            knee_point(points)

    def test_degenerate_frontier_rejected(self):
        points = tuple(
            ParetoPoint(alpha=a, level=0.0, latency=2.0, cost=0.0)
            for a in (0.0, 0.5, 1.0)
        )
        with pytest.raises(ParameterError):
            knee_point(points)
