"""Unit tests for repro.analysis.tables — text rendering."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import TableData
from repro.analysis.sweep import FigureData, Series
from repro.analysis.tables import (
    format_cell,
    render_ascii_chart,
    render_figure,
    render_table,
)


class TestFormatCell:
    def test_float_precision(self):
        assert format_cell(1.23456789) == "1.2346"
        assert format_cell(1.5, precision=1) == "1.5"

    def test_int_passthrough(self):
        assert format_cell(42) == "42"

    def test_bool_not_formatted_as_float(self):
        assert format_cell(True) == "True"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def make(self) -> TableData:
        return TableData(
            table_id="X",
            title="A title",
            columns=("name", "value"),
            rows=(("alpha", 1.23456), ("beta", 2)),
            notes="a note",
        )

    def test_contains_title_and_cells(self):
        text = render_table(self.make())
        assert "Table X: A title" in text
        assert "alpha" in text
        assert "1.2346" in text
        assert "a note" in text

    def test_no_notes_line_when_empty(self):
        table = TableData(
            table_id="Y", title="t", columns=("a",), rows=((1,),)
        )
        assert "note:" not in render_table(table)

    def test_columns_aligned(self):
        lines = render_table(self.make()).splitlines()
        header = lines[1]
        separator = lines[2]
        assert len(separator) == len(header)


class TestRenderFigure:
    def make(self) -> FigureData:
        return FigureData(
            figure_id="7",
            title="Some sweep",
            xlabel="w",
            ylabel="l*",
            series=(
                Series(label="alpha=0.2", x=(10.0, 20.0), y=(0.5, 0.4)),
                Series(label="alpha=1.0", x=(10.0, 20.0), y=(0.9, 0.9)),
            ),
        )

    def test_contains_series_columns(self):
        text = render_figure(self.make())
        assert "Figure 7" in text
        assert "alpha=0.2" in text
        assert "alpha=1.0" in text
        assert "[y: l*]" in text

    def test_one_row_per_x(self):
        lines = render_figure(self.make()).splitlines()
        # title + header + rule + 2 data rows
        assert len(lines) == 5

    def test_empty_figure(self):
        fig = FigureData(
            figure_id="0", title="empty", xlabel="x", ylabel="y", series=()
        )
        text = render_figure(fig)
        assert "Figure 0" in text


class TestAsciiChart:
    def make(self) -> FigureData:
        return FigureData(
            figure_id="4",
            title="sweep",
            xlabel="alpha",
            ylabel="l*",
            series=(
                Series(label="g2", x=(0.0, 0.5, 1.0), y=(0.0, 0.4, 0.8)),
                Series(label="g10", x=(0.0, 0.5, 1.0), y=(0.1, 0.7, 0.95)),
            ),
        )

    def test_contains_markers_and_legend(self):
        text = render_ascii_chart(self.make())
        assert "*" in text and "o" in text
        assert "*=g2" in text and "o=g10" in text
        assert "x: alpha; y: l*" in text

    def test_grid_dimensions(self):
        text = render_ascii_chart(self.make(), width=40, height=10)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 10
        for row in plot_rows:
            assert len(row.split("|", 1)[1]) == 40

    def test_axis_labels(self):
        text = render_ascii_chart(self.make())
        assert "0.95" in text  # y max
        assert "0" in text

    def test_empty_series(self):
        fig = FigureData(
            figure_id="0", title="t", xlabel="x", ylabel="y", series=()
        )
        assert "(no data)" in render_ascii_chart(fig)

    def test_flat_series_no_crash(self):
        fig = FigureData(
            figure_id="f", title="flat", xlabel="x", ylabel="y",
            series=(Series(label="c", x=(1.0, 2.0), y=(0.5, 0.5)),),
        )
        assert "c" in render_ascii_chart(fig)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            render_ascii_chart(self.make(), width=5, height=3)
