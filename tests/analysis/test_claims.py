"""Tests for repro.analysis.claims — the reproduction scorecard."""

from __future__ import annotations

import pytest

from repro.analysis.claims import (
    PAPER_CLAIMS,
    evaluate_claims,
    scorecard_table,
)


class TestRegistry:
    def test_claim_ids_unique(self):
        ids = [c.claim_id for c in PAPER_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_every_claim_has_source_and_statement(self):
        for claim in PAPER_CLAIMS:
            assert claim.source
            assert claim.statement
            assert callable(claim.check)

    def test_covers_key_artifacts(self):
        sources = {c.source for c in PAPER_CLAIMS}
        for required in ("Table I", "Lemma 1", "Theorem 1", "Theorem 2",
                         "Figure 4", "Figure 5", "Figure 12", "Section V-A"):
            assert required in sources


class TestEvaluation:
    @pytest.fixture(scope="class")
    def results(self):
        return evaluate_claims()

    def test_all_claims_hold(self, results):
        failing = [r.claim_id for r in results if not r.holds]
        assert not failing, f"claims failing: {failing}"

    def test_every_claim_produces_evidence(self, results):
        for result in results:
            assert result.evidence

    def test_scorecard_table_structure(self, results):
        table = scorecard_table()
        assert len(table.rows) == len(PAPER_CLAIMS)
        assert set(table.column("status")) == {"PASS"}
