"""The sweep ``parallel=`` knob: identical output, validated input."""

from __future__ import annotations

import os

import pytest

from repro.analysis.defaults import BASE_SCENARIO
from repro.analysis.sweep import (
    AUTO_PARALLEL_MIN_POINTS_PER_WORKER,
    resolve_parallel,
    sweep,
)
from repro.errors import ParameterError
from repro.obs import available_cpus

ALPHAS = tuple(round(0.1 + 0.8 * i / 5, 4) for i in range(6))


def run_sweep(parallel):
    return sweep(
        BASE_SCENARIO,
        x_field="alpha",
        x_values=ALPHAS,
        quantity="level",
        curve_field="gamma",
        curve_values=(2.0, 10.0),
        parallel=parallel,
    )


def assert_series_close(left, right, tolerance=1e-9):
    """Structurally equal series, values within the solver tolerance.

    The batched path warm-starts its bisection, so it agrees with the
    scalar path per point well below 1e-9 without being bitwise equal.
    """
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.label == b.label
        assert a.x == b.x
        assert len(a.y) == len(b.y)
        for ya, yb in zip(a.y, b.y):
            assert ya == pytest.approx(yb, abs=tolerance)


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        serial = run_sweep(None)
        parallel = run_sweep(2)
        assert parallel == serial  # bitwise: same grid order, same solver

    @pytest.mark.parametrize("parallel", [0, 1])
    def test_degenerate_worker_counts_are_serial(self, parallel):
        assert run_sweep(parallel) == run_sweep(None)

    @pytest.mark.parametrize("parallel", [-1, 2.5])
    def test_rejects_invalid_worker_counts(self, parallel):
        with pytest.raises(ParameterError):
            run_sweep(parallel)

    def test_single_point_grid(self):
        series = sweep(
            BASE_SCENARIO,
            x_field="alpha",
            x_values=(0.5,),
            quantity="level",
            parallel=2,
        )
        assert len(series) == 1
        assert len(series[0].x) == 1

    def test_unknown_quantity_raises_before_spawning(self):
        with pytest.raises(ParameterError):
            sweep(
                BASE_SCENARIO,
                x_field="alpha",
                x_values=ALPHAS,
                quantity="nonsense",
                parallel=2,
            )


class TestAutoParallel:
    def test_small_grid_resolves_serial(self):
        # The whole point of the heuristic: a figure-sized grid must not
        # pay process spin-up.
        assert resolve_parallel("auto", 12) == 0
        assert (
            resolve_parallel("auto", AUTO_PARALLEL_MIN_POINTS_PER_WORKER - 1)
            == 0
        )

    def test_large_grid_scales_with_available_cpus(self):
        cpus = available_cpus()
        huge = AUTO_PARALLEL_MIN_POINTS_PER_WORKER * (cpus + 4)
        assert resolve_parallel("auto", huge) == cpus

    def test_threshold_caps_worker_count(self):
        # Two thresholds' worth of points affords at most two workers,
        # regardless of how many CPUs the machine has.
        points = AUTO_PARALLEL_MIN_POINTS_PER_WORKER * 2
        assert resolve_parallel("auto", points) <= 2

    def test_explicit_counts_pass_through(self):
        assert resolve_parallel(None, 10_000) == 0
        assert resolve_parallel(0, 10_000) == 0
        assert resolve_parallel(3, 4) == 3

    def test_rejects_unknown_strings(self):
        with pytest.raises(ParameterError):
            resolve_parallel("fast", 100)

    def test_auto_sweep_matches_serial(self):
        # "auto" now dispatches analytical grids to the batched solver;
        # it must agree with the scalar serial path per point.
        assert_series_close(run_sweep("auto"), run_sweep(None))

    def test_analytical_auto_never_spawns_processes(self):
        # BENCH_pr4 showed process spin-up losing to serial on analytical
        # sweeps (auto 0.0315s vs serial 0.0223s on a figure-sized grid);
        # the solver-aware heuristic keeps them vectorized at any size.
        huge = AUTO_PARALLEL_MIN_POINTS_PER_WORKER * 64
        assert resolve_parallel("auto", huge, analytical=True) == 0
        assert resolve_parallel("auto", 12, analytical=True) == 0

    def test_analytical_flag_preserves_explicit_counts(self):
        assert resolve_parallel(2, 10_000, analytical=True) == 2
        assert resolve_parallel(None, 10_000, analytical=True) == 0


class TestAvailableCpus:
    def test_at_least_one_and_at_most_the_machine(self):
        cpus = available_cpus()
        assert cpus >= 1
        machine = os.cpu_count()
        if machine:
            assert cpus <= machine

    def test_reported_in_machine_provenance(self):
        from repro.obs import machine_provenance

        provenance = machine_provenance()
        assert provenance["process_cpu_count"] == available_cpus()


class TestShardedResolution:
    def test_auto_has_no_amortization_floor(self):
        # Region shards are long simulations: even a handful of regions
        # deserve a pool, unlike sub-millisecond analytical points.
        cpus = available_cpus()
        assert resolve_parallel("auto", 4, sharded=True) == min(cpus, 4)
        assert resolve_parallel("auto", 100, sharded=True) == min(cpus, 100)
        assert resolve_parallel("auto", 1, sharded=True) == 1

    def test_sharded_overrides_the_analytical_shortcut(self):
        assert (
            resolve_parallel("auto", 8, analytical=True, sharded=True) >= 1
        )

    def test_explicit_counts_and_serial_pass_through(self):
        assert resolve_parallel(None, 8, sharded=True) == 0
        assert resolve_parallel(0, 8, sharded=True) == 0
        assert resolve_parallel(6, 8, sharded=True) == 6


class TestFigureParallelKnob:
    def test_figure_functions_accept_parallel(self):
        from repro.analysis.experiments import figure4_level_vs_alpha

        alphas = ALPHAS
        batched = figure4_level_vs_alpha(alphas=alphas)  # default "auto"
        scalar = figure4_level_vs_alpha(alphas=alphas, parallel=2)
        assert_series_close(batched.series, scalar.series)
