"""Unit tests for repro.analysis.sweep — the sweep engine."""

from __future__ import annotations

import pytest

from repro.analysis.sweep import (
    FigureData,
    QUANTITIES,
    Series,
    solve_quantity,
    sweep,
)
from repro.core.scenario import Scenario
from repro.errors import ParameterError


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            Series(label="x", x=(1.0, 2.0), y=(1.0,))

    def test_y_at(self):
        s = Series(label="x", x=(1.0, 2.0), y=(10.0, 20.0))
        assert s.y_at(2.0) == 20.0

    def test_y_at_missing_raises(self):
        s = Series(label="x", x=(1.0,), y=(10.0,))
        with pytest.raises(ParameterError):
            s.y_at(3.0)

    def test_monotonicity_predicates(self):
        up = Series(label="u", x=(1, 2, 3), y=(1.0, 2.0, 2.0))
        down = Series(label="d", x=(1, 2, 3), y=(3.0, 2.0, 1.0))
        assert up.is_monotone_increasing()
        assert not up.is_monotone_decreasing()
        assert down.is_monotone_decreasing()
        assert not down.is_monotone_increasing()


class TestFigureData:
    def test_series_by_label(self):
        s = Series(label="a", x=(1.0,), y=(2.0,))
        fig = FigureData(
            figure_id="t", title="t", xlabel="x", ylabel="y", series=(s,)
        )
        assert fig.series_by_label("a") is s
        with pytest.raises(ParameterError):
            fig.series_by_label("missing")


class TestSolveQuantity:
    def test_all_registered_quantities(self):
        scenario = Scenario(alpha=0.8)
        for name in QUANTITIES:
            value = solve_quantity(scenario, name)
            assert 0.0 <= value <= 1.0

    def test_unknown_quantity_rejected(self):
        with pytest.raises(ParameterError):
            solve_quantity(Scenario(), "latency_gain")

    def test_level_matches_optimizer(self):
        scenario = Scenario(alpha=0.8)
        assert solve_quantity(scenario, "level") == pytest.approx(
            scenario.solve(check_conditions=False).level
        )


class TestSweep:
    def test_single_series(self):
        series = sweep(
            Scenario(),
            x_field="alpha",
            x_values=(0.2, 0.5, 0.8),
            quantity="level",
        )
        assert len(series) == 1
        assert series[0].x == (0.2, 0.5, 0.8)
        assert len(series[0].y) == 3

    def test_curves_fan_out(self):
        series = sweep(
            Scenario(),
            x_field="alpha",
            x_values=(0.3, 0.7),
            quantity="level",
            curve_field="gamma",
            curve_values=(2.0, 10.0),
        )
        assert [s.label for s in series] == ["gamma=2.0", "gamma=10.0"]

    def test_custom_labels(self):
        series = sweep(
            Scenario(),
            x_field="alpha",
            x_values=(0.5,),
            quantity="level",
            curve_field="gamma",
            curve_values=(5.0,),
            curve_label=lambda g: f"g{g:g}",
        )
        assert series[0].label == "g5"

    def test_sweep_values_match_pointwise_solve(self):
        series = sweep(
            Scenario(),
            x_field="alpha",
            x_values=(0.4, 0.9),
            quantity="level",
            curve_field="gamma",
            curve_values=(6.0,),
        )
        expected = Scenario(alpha=0.9, gamma=6.0).solve(check_conditions=False).level
        assert series[0].y_at(0.9) == pytest.approx(expected)


class TestSolverSelection:
    BASE = Scenario(capacity=100.0, catalog_size=10_000)

    def test_explicit_solvers_match_auto(self):
        kwargs = dict(
            x_field="alpha", x_values=(0.2, 0.5, 0.8), quantity="level"
        )
        auto = sweep(self.BASE, **kwargs)
        scalar = sweep(self.BASE, solver="scalar", **kwargs)
        batched = sweep(self.BASE, solver="batched", **kwargs)
        for a, s, b in zip(auto[0].y, scalar[0].y, batched[0].y):
            assert s == pytest.approx(a, abs=1e-9)
            assert b == pytest.approx(a, abs=1e-9)

    @pytest.mark.parametrize("quantity", sorted(QUANTITIES))
    def test_approx_solver_answers_every_quantity(self, quantity):
        series = sweep(
            self.BASE,
            x_field="alpha",
            x_values=(0.2, 0.8),
            quantity=quantity,
            solver="approx",
        )
        assert len(series[0].y) == 2
        assert all(0.0 <= y <= 1.0 for y in series[0].y)

    def test_approx_level_rises_with_alpha(self):
        # Heavier performance weighting must not decrease the chosen
        # coordination level under the approximation either.
        series = sweep(
            self.BASE,
            x_field="alpha",
            x_values=(0.05, 0.5, 0.95),
            quantity="level",
            solver="approx",
        )
        assert series[0].is_monotone_increasing(tolerance=1e-9)

    def test_unknown_solver_rejected(self):
        with pytest.raises(ParameterError, match="unknown solver"):
            sweep(
                self.BASE,
                x_field="alpha",
                x_values=(0.5,),
                quantity="level",
                solver="simulated",
            )

    def test_approx_rejects_non_scenario_types(self):
        class HeteroScenario(Scenario):
            pass

        with pytest.raises(ParameterError, match="plain Scenario"):
            sweep(
                HeteroScenario(),
                x_field="alpha",
                x_values=(0.5,),
                quantity="level",
                solver="approx",
            )
