"""Unit tests for repro.analysis.reporting — markdown report generation."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import TableData
from repro.analysis.reporting import (
    figure_to_markdown,
    generate_report,
    table_to_markdown,
)
from repro.analysis.sweep import FigureData, Series
from repro.errors import ParameterError


class TestTableMarkdown:
    def test_structure(self):
        table = TableData(
            table_id="X", title="T", columns=("a", "b"),
            rows=(("v", 1.23456),), notes="note",
        )
        text = table_to_markdown(table)
        assert "### Table X: T" in text
        assert "| a | b |" in text
        assert "| v | 1.2346 |" in text
        assert "*note*" in text

    def test_no_notes(self):
        table = TableData(table_id="X", title="T", columns=("a",), rows=((1,),))
        assert "*" not in table_to_markdown(table).splitlines()[-1]


class TestFigureMarkdown:
    def test_structure(self):
        fig = FigureData(
            figure_id="9", title="F", xlabel="x", ylabel="y",
            series=(Series(label="s1", x=(1.0,), y=(2.0,)),),
        )
        text = figure_to_markdown(fig)
        assert "### Figure 9: F" in text
        assert "| x | s1 |" in text
        assert "| 1.0000 | 2.0000 |" in text
        assert "*y-axis: y*" in text


class TestGenerateReport:
    def test_selected_experiments(self):
        text = generate_report(experiments=["table1", "table2"])
        assert "Table I" in text
        assert "Table II" in text
        assert "Figure 4" not in text

    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(experiments=["table2"], path=path)
        assert path.read_text() == text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ParameterError):
            generate_report(experiments=["figure99"])

    def test_title(self):
        text = generate_report(experiments=["table2"], title="My run")
        assert text.startswith("# My run")
