"""Tests for repro.analysis.experiments — the paper's tables and figures.

Beyond smoke-running every experiment, these tests assert the *shape*
claims the paper makes about each figure — the substance of the
reproduction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import (
    ALL_EXPERIMENTS,
    TableData,
    figure4_level_vs_alpha,
    figure5_level_vs_exponent,
    figure6_level_vs_routers,
    figure7_level_vs_unit_cost,
    figure8_origin_gain_vs_alpha,
    figure9_origin_gain_vs_exponent,
    figure10_origin_gain_vs_routers,
    figure11_origin_gain_vs_unit_cost,
    figure12_routing_gain_vs_alpha,
    figure13_routing_gain_vs_exponent,
    model_vs_simulation,
    table1_motivating,
    table2_topologies,
    table3_parameters,
    table4_settings,
    theorem2_closed_form_vs_n,
)
from repro.errors import ParameterError

# Reduced grids keep the shape-assertion tests fast.
FAST_ALPHAS = (0.2, 0.4, 0.6, 0.8, 1.0)
FAST_EXPONENTS = (0.1, 0.4, 0.7, 0.9, 1.1, 1.4, 1.7, 1.9)
FAST_GAMMAS = (2.0, 6.0, 10.0)
FAST_NS = (10, 50, 200, 500)
FAST_WS = (10.0, 40.0, 70.0, 100.0)


class TestTableData:
    def test_row_shape_validated(self):
        with pytest.raises(ParameterError):
            TableData(
                table_id="x", title="t", columns=("a", "b"), rows=((1,),)
            )

    def test_column_access(self):
        table = TableData(
            table_id="x", title="t", columns=("a", "b"), rows=((1, 2), (3, 4))
        )
        assert table.column("b") == (2, 4)
        with pytest.raises(ParameterError):
            table.column("c")


class TestTable1:
    def test_paper_values(self):
        table = table1_motivating()
        non_coord = table.column("Non-coordinated caching")
        coord = table.column("Coordinated caching")
        assert non_coord[0] == pytest.approx(1 / 3)  # origin load 33%
        assert coord[0] == pytest.approx(0.0)  # -> 0%
        assert non_coord[1] == pytest.approx(2 / 3)  # ~0.67 hops
        assert coord[1] == pytest.approx(0.5)  # -> 0.5 hops
        assert non_coord[2] == 0  # no messages
        assert coord[2] == 1  # one consensus message

    def test_rejects_partial_cycle(self):
        with pytest.raises(ParameterError):
            table1_motivating(requests=7)


class TestTables2to4:
    def test_table2_matches_paper(self):
        table = table2_topologies()
        assert table.column("Topology") == ("Abilene", "CERNET", "GEANT", "US-A")
        assert table.column("|V|") == (11, 36, 23, 20)
        assert table.column("|E|") == (28, 112, 74, 80)

    def test_table3_measured_equals_paper(self):
        table = table3_parameters()
        for row in table.rows:
            _, _, w, ms, hops, paper_w, paper_ms, paper_hops = row
            assert w == pytest.approx(paper_w, abs=1e-3)
            assert ms == pytest.approx(paper_ms, abs=1e-3)
            assert hops == pytest.approx(paper_hops, abs=1e-3)

    def test_table4_structure(self):
        table = table4_settings()
        assert len(table.rows) == 4
        assert "figures" in table.columns


class TestFigure4:
    def test_monotone_increasing_in_alpha(self):
        fig = figure4_level_vs_alpha(alphas=FAST_ALPHAS, gammas=FAST_GAMMAS)
        for series in fig.series:
            assert series.is_monotone_increasing(tolerance=1e-6)

    def test_higher_gamma_higher_level(self):
        fig = figure4_level_vs_alpha(alphas=FAST_ALPHAS, gammas=FAST_GAMMAS)
        for alpha in FAST_ALPHAS:
            levels = [s.y_at(alpha) for s in fig.series]
            assert levels == sorted(levels)

    def test_range_spans_zero_to_one(self):
        """l* increases 'monotonically from 0 to 1' across alpha."""
        fig = figure4_level_vs_alpha(
            alphas=(0.02, 0.99), gammas=(10.0,)
        )
        series = fig.series[0]
        assert series.y[0] < 0.1
        assert series.y[-1] > 0.9


class TestFigure5:
    def test_alpha1_decreases_from_1_to_035(self):
        """Paper: for alpha=1, l* falls from ~1 at s->0 to ~0.35 at s->2."""
        fig = figure5_level_vs_exponent(
            exponents=(0.05, 1.95), alphas=(1.0,)
        )
        series = fig.series[0]
        assert series.y[0] > 0.95
        assert series.y[-1] == pytest.approx(0.35, abs=0.05)

    def test_small_s_drives_level_to_zero_for_alpha_below_one(self):
        fig = figure5_level_vs_exponent(exponents=(0.05,), alphas=(0.2, 0.6))
        for series in fig.series:
            assert series.y[0] < 0.05

    def test_hump_exists_for_partial_alpha(self):
        """Paper: for alpha < 1 there is a maximum l* around s ~ 0.5-0.9."""
        exponents = tuple(np.round(np.arange(0.1, 1.95, 0.1), 3))
        exponents = tuple(s for s in exponents if abs(s - 1.0) > 1e-9)
        fig = figure5_level_vs_exponent(exponents=exponents, alphas=(0.5,))
        series = fig.series[0]
        peak_idx = int(np.argmax(series.y))
        peak_s = series.x[peak_idx]
        assert 0.3 <= peak_s <= 1.0
        assert series.y[peak_idx] > series.y[0]
        assert series.y[peak_idx] > series.y[-1]

    def test_lower_alpha_lower_level(self):
        fig = figure5_level_vs_exponent(exponents=(0.8,), alphas=(0.2, 0.6, 1.0))
        levels = [s.y[0] for s in fig.series]
        assert levels == sorted(levels)


class TestFigure6:
    def test_level_decreases_with_network_size(self):
        """Paper: l* decreases as n increases (coordination costs grow)."""
        fig = figure6_level_vs_routers(router_counts=FAST_NS, alphas=(0.4, 0.6))
        for series in fig.series:
            assert series.is_monotone_decreasing(tolerance=1e-6)

    def test_higher_alpha_higher_level(self):
        fig = figure6_level_vs_routers(router_counts=(50,), alphas=(0.2, 0.6, 1.0))
        levels = [s.y[0] for s in fig.series]
        assert levels == sorted(levels)


class TestFigure7:
    def test_level_decreases_with_unit_cost_small_alpha(self):
        """Paper: for small alpha, l* drops drastically as w grows."""
        fig = figure7_level_vs_unit_cost(unit_costs=FAST_WS, alphas=(0.2, 0.4))
        for series in fig.series:
            assert series.is_monotone_decreasing(tolerance=1e-6)
            assert series.y[0] > 2 * series.y[-1] + 1e-9

    def test_alpha1_is_cost_invariant(self):
        """Paper: at alpha=1, l* is a constant close to 1 regardless of w."""
        fig = figure7_level_vs_unit_cost(unit_costs=FAST_WS, alphas=(1.0,))
        series = fig.series[0]
        assert max(series.y) - min(series.y) < 1e-9
        assert series.y[0] > 0.9


class TestFigures8to11:
    def test_figure8_origin_gain_monotone_in_alpha_and_gamma(self):
        fig = figure8_origin_gain_vs_alpha(alphas=FAST_ALPHAS, gammas=FAST_GAMMAS)
        for series in fig.series:
            assert series.is_monotone_increasing(tolerance=1e-6)
        for alpha in FAST_ALPHAS:
            gains = [s.y_at(alpha) for s in fig.series]
            assert gains == sorted(gains)

    def test_figure9_small_alpha_peak_above_one(self):
        """Paper: for smaller alpha the G_O maximum sits near s ~ 1.3."""
        fig = figure9_origin_gain_vs_exponent(
            exponents=FAST_EXPONENTS, alphas=(0.4,)
        )
        series = fig.series[0]
        peak_s = series.x[int(np.argmax(series.y))]
        assert peak_s > 1.0

    def test_figure10_origin_gain_flat_for_small_alpha(self):
        """Paper: when alpha is small, network size barely moves G_O."""
        fig = figure10_origin_gain_vs_routers(
            router_counts=FAST_NS, alphas=(0.4,)
        )
        series = fig.series[0]
        assert max(series.y) - min(series.y) < 0.2

    def test_figure11_origin_gain_drops_with_w_for_small_alpha(self):
        fig = figure11_origin_gain_vs_unit_cost(unit_costs=FAST_WS, alphas=(0.2,))
        series = fig.series[0]
        assert series.is_monotone_decreasing(tolerance=1e-6)

    def test_figure11_origin_gain_invariant_for_alpha_one(self):
        fig = figure11_origin_gain_vs_unit_cost(unit_costs=FAST_WS, alphas=(1.0,))
        series = fig.series[0]
        assert max(series.y) - min(series.y) < 1e-9


class TestFigures12to13:
    def test_figure12_routing_gain_monotone(self):
        fig = figure12_routing_gain_vs_alpha(alphas=FAST_ALPHAS, gammas=FAST_GAMMAS)
        for series in fig.series:
            assert series.is_monotone_increasing(tolerance=1e-6)
        for alpha in FAST_ALPHAS:
            gains = [s.y_at(alpha) for s in fig.series]
            assert gains == sorted(gains)

    def test_figure13_peak_near_s_equals_one(self):
        """Paper: G_R is largest for s close to 1, smaller at 0 and 2."""
        fig = figure13_routing_gain_vs_exponent(
            exponents=FAST_EXPONENTS, alphas=(1.0,)
        )
        series = fig.series[0]
        peak_s = series.x[int(np.argmax(series.y))]
        assert 0.7 <= peak_s <= 1.4
        assert series.y[0] < max(series.y)
        assert series.y[-1] < max(series.y)


class TestTheorem2Figure:
    def test_opposite_limits(self):
        fig = theorem2_closed_form_vs_n()
        for series in fig.series:
            s = float(series.label.split("=")[1])
            if s < 1.0:
                assert series.is_monotone_increasing(tolerance=1e-9)
                assert series.y[-1] > 0.95
            else:
                assert series.is_monotone_decreasing(tolerance=1e-9)
                assert series.y[-1] < series.y[0]


class TestModelVsSimulation:
    def test_agreement_within_tolerance(self):
        table = model_vs_simulation(requests=20_000)
        for row in table.rows:
            _, model_origin, sim_origin = row[0], row[1], row[2]
            assert sim_origin == pytest.approx(model_origin, abs=0.02)

    def test_tier_fractions_sum_to_one(self):
        table = model_vs_simulation(requests=5_000)
        for row in table.rows:
            _, _, sim_origin, local, peer, _ = row
            assert local + peer + sim_origin == pytest.approx(1.0, abs=1e-6)


class TestMetricDuality:
    def test_reference_topology_exact(self):
        """US-A defines the unit conversion, so its two variants agree."""
        from repro.analysis.experiments import metric_duality

        table = metric_duality(alphas=(0.3, 0.8))
        for row in table.rows:
            topology, _, level_hops, level_ms, diff = row
            if topology == "US-A":
                assert diff == pytest.approx(0.0, abs=1e-6)

    def test_metrics_similar_everywhere(self):
        """The paper's 'similar results' claim: differences stay small."""
        from repro.analysis.experiments import metric_duality

        table = metric_duality(alphas=(0.5, 0.8, 1.0))
        assert max(table.column("|diff|")) < 0.12


class TestCoverageRegime:
    def test_gr_recovers_paper_magnitude_at_full_coverage(self):
        """60-90% G_R appears once n*c approaches N (EXPERIMENTS.md)."""
        from repro.analysis.experiments import coverage_regime

        table = coverage_regime(coverage_ratios=(0.02, 1.0))
        gains = table.column("G_R")
        assert gains[0] < 0.30  # Table IV's regime
        assert 0.6 <= gains[-1] <= 0.95  # the paper's claimed band

    def test_origin_gain_saturates(self):
        from repro.analysis.experiments import coverage_regime

        table = coverage_regime(coverage_ratios=(0.02, 2.0))
        assert table.column("G_O")[-1] == pytest.approx(1.0, abs=1e-6)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(ALL_EXPERIMENTS) == 24

    def test_registry_ids_unique(self):
        assert len(set(ALL_EXPERIMENTS)) == len(ALL_EXPERIMENTS)
