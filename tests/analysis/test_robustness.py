"""Unit tests for repro.analysis.robustness — misspecification study."""

from __future__ import annotations

import pytest

from repro.analysis.robustness import (
    discrete_objective,
    misspecification_study,
    optimal_level_discrete,
)
from repro.catalog.popularity import UniformModel, ZipfMandelbrotModel, ZipfModel
from repro.core import Scenario
from repro.errors import ParameterError


@pytest.fixture
def scenario() -> Scenario:
    return Scenario(alpha=0.7, capacity=100.0, catalog_size=20_000)


class TestDiscreteObjective:
    def test_matches_continuous_model_for_zipf(self, scenario):
        """With pure Zipf popularity, the discrete objective tracks the
        continuous-approximation objective of the core model."""
        popularity = ZipfModel(scenario.exponent, scenario.catalog_size)
        model = scenario.model()
        for level in (0.0, 0.4, 0.9):
            discrete = discrete_objective(scenario, popularity, level)
            continuous = float(model.objective(level * scenario.capacity))
            assert discrete == pytest.approx(continuous, rel=0.05)

    def test_bounded_by_latency_and_cost(self, scenario):
        popularity = ZipfModel(0.8, scenario.catalog_size)
        latency = scenario.latency()
        for level in (0.0, 0.5, 1.0):
            value = discrete_objective(scenario, popularity, level)
            upper = latency.d2 + float(
                scenario.cost_model().cost(scenario.capacity, scenario.n_routers)
            )
            assert 0 < value <= upper

    def test_rejects_bad_level(self, scenario):
        popularity = ZipfModel(0.8, scenario.catalog_size)
        with pytest.raises(ParameterError):
            discrete_objective(scenario, popularity, 1.5)

    def test_rejects_catalog_mismatch(self, scenario):
        with pytest.raises(ParameterError):
            discrete_objective(scenario, ZipfModel(0.8, 999), 0.5)


class TestOptimalLevelDiscrete:
    def test_agrees_with_core_optimizer_for_zipf(self, scenario):
        popularity = ZipfModel(scenario.exponent, scenario.catalog_size)
        level, _ = optimal_level_discrete(scenario, popularity, resolution=201)
        core = scenario.solve(check_conditions=False).level
        assert level == pytest.approx(core, abs=0.05)

    def test_uniform_popularity_prefers_full_coordination(self, scenario):
        """With no popularity skew, local replication is worthless: the
        optimum coordinates everything (more distinct contents)."""
        popularity = UniformModel(scenario.catalog_size)
        level, _ = optimal_level_discrete(scenario, popularity, resolution=101)
        assert level > 0.9

    def test_rejects_tiny_resolution(self, scenario):
        with pytest.raises(ParameterError):
            optimal_level_discrete(
                scenario, ZipfModel(0.8, scenario.catalog_size), resolution=1
            )


class TestMisspecificationStudy:
    def test_zero_plateau_near_zero_regret(self, scenario):
        rows = misspecification_study(
            scenario, plateaus=(0.0,), resolution=101
        )
        assert rows[0].relative_regret < 0.01

    def test_regret_nonnegative(self, scenario):
        for row in misspecification_study(
            scenario, plateaus=(0.0, 50.0, 500.0), resolution=101
        ):
            assert row.regret >= -1e-9

    def test_flatter_head_pushes_true_optimum_up(self, scenario):
        rows = misspecification_study(
            scenario, plateaus=(0.0, 500.0), resolution=101
        )
        assert rows[1].true_level >= rows[0].true_level

    def test_strategy_is_robust(self, scenario):
        """The headline finding: even q = 1000 costs < 2% objective."""
        rows = misspecification_study(
            scenario, plateaus=(1000.0,), resolution=101
        )
        assert rows[0].relative_regret < 0.02
