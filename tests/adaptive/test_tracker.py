"""Tests for repro.adaptive.tracker — warm-started strategy tracking.

The tracker is the adaptive layer's bridge to the incremental
re-solver: these tests pin (a) warm/cold equivalence of the controller
trace, (b) the counting model (cold exactly once, everything else warm
or skipped), and (c) the dead-band skip semantics at the boundary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveSimulation,
    DriftingPopularity,
    ModelBasedController,
    WarmStrategyTracker,
    linear_drift,
    step_drift,
)
from repro.core import Scenario
from repro.core.optimizer import optimal_strategy
from repro.errors import ParameterError
from repro.obs import session
from repro.topology import ring_topology


def make_scenario(**overrides):
    params = dict(alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000)
    params.update(overrides)
    return Scenario(**params)


def make_simulation(controller, *, drift=None, seed=1):
    scenario = make_scenario()
    topology = ring_topology(scenario.n_routers)
    drift = drift or DriftingPopularity(linear_drift(0.6, 1.4, 10), 4_000)
    return AdaptiveSimulation(
        topology, scenario, drift, controller,
        requests_per_epoch=1_500, seed=seed,
    )


class TestSolveAgreement:
    """Tracker solves must match the scalar cold oracle."""

    @pytest.mark.parametrize("exponent", [0.3, 0.6, 0.9, 1.0, 1.3, 1.7])
    def test_first_solve_matches_scalar_oracle(self, exponent):
        scenario = make_scenario()
        tracker = WarmStrategyTracker(scenario)
        got = tracker.solve(exponent)
        want = optimal_strategy(
            scenario.replace(exponent=exponent).model(), check_conditions=False
        )
        assert got.level == pytest.approx(want.level, abs=1e-9)
        assert got.objective_value == pytest.approx(want.objective_value, abs=1e-9)

    def test_warm_trajectory_matches_scalar_oracle(self):
        scenario = make_scenario()
        tracker = WarmStrategyTracker(scenario)
        for exponent in np.linspace(0.5, 1.5, 21):
            got = tracker.solve(float(exponent))
            want = optimal_strategy(
                scenario.replace(exponent=float(exponent)).model(),
                check_conditions=False,
            )
            assert got.level == pytest.approx(want.level, abs=1e-9)
        assert tracker.cold_solves == 1
        assert tracker.warm_solves == 20

    def test_regime_change_across_capacity_boundary(self):
        # s = 0.5 saturates at full coordination; jumping to s = 1.4
        # re-seeds the warm solve from the at-capacity boundary, the
        # x = c singularity's worst case.
        scenario = make_scenario()
        tracker = WarmStrategyTracker(scenario)
        tracker.solve(0.5)
        got = tracker.solve(1.4)
        want = optimal_strategy(
            scenario.replace(exponent=1.4).model(), check_conditions=False
        )
        assert got.level == pytest.approx(want.level, abs=1e-9)


class TestCountingModel:
    def test_cold_exactly_once_then_warm(self):
        tracker = WarmStrategyTracker(make_scenario())
        for exponent in (0.7, 0.9, 1.1):
            tracker.solve(exponent)
        assert tracker.cold_solves == 1
        assert tracker.warm_solves == 2
        assert tracker.skipped == 0

    def test_repeated_exponent_is_deduplicated_at_zero_dead_band(self):
        tracker = WarmStrategyTracker(make_scenario())
        first = tracker.solve(0.8)
        second = tracker.solve(0.8)
        assert second is first
        assert tracker.cold_solves == 1
        assert tracker.warm_solves == 0
        assert tracker.skipped == 1

    def test_obs_counters_record_solve_kinds(self):
        tracker = WarmStrategyTracker(make_scenario(), dead_band=0.05)
        with session() as obs:
            tracker.solve(0.8)
            tracker.solve(0.81)  # inside band -> skipped
            tracker.solve(1.0)   # outside band -> warm
            metrics = obs.snapshot()
        counters = metrics["counters"]
        assert counters["adaptive.tracker.cold_solves"] == 1
        assert counters["adaptive.tracker.skipped"] == 1
        assert counters["adaptive.tracker.warm_solves"] == 1


class TestDeadBand:
    def test_negative_dead_band_rejected(self):
        with pytest.raises(ParameterError):
            WarmStrategyTracker(make_scenario(), dead_band=-0.1)

    def test_move_exactly_at_boundary_skips(self):
        # |Δs| == dead_band must skip: re-solves happen only strictly
        # past the band.
        tracker = WarmStrategyTracker(make_scenario(), dead_band=0.1)
        first = tracker.solve(0.8)
        again = tracker.solve(0.8 + 0.1)
        assert again is first
        assert tracker.skipped == 1
        assert tracker.solved_exponent == 0.8

    def test_move_strictly_past_boundary_resolves(self):
        tracker = WarmStrategyTracker(make_scenario(), dead_band=0.1)
        tracker.solve(0.8)
        moved = tracker.solve(0.8 + 0.1 + 1e-9)
        assert tracker.warm_solves == 1
        assert tracker.solved_exponent == pytest.approx(0.9, abs=1e-8)
        want = optimal_strategy(
            make_scenario().replace(exponent=0.9 + 1e-9).model(),
            check_conditions=False,
        )
        assert moved.level == pytest.approx(want.level, abs=1e-9)

    def test_band_is_anchored_to_last_solved_not_last_seen(self):
        # A drift of many sub-band steps must still re-solve once the
        # cumulative move passes the band: the anchor is the last
        # *solved* exponent.
        tracker = WarmStrategyTracker(make_scenario(), dead_band=0.05)
        tracker.solve(0.8)
        for exponent in (0.82, 0.84, 0.85):
            tracker.solve(exponent)
        assert tracker.warm_solves == 0
        tracker.solve(0.86)  # 0.06 past the 0.8 anchor
        assert tracker.warm_solves == 1
        assert tracker.solved_exponent == 0.86


class TestControllerEquivalence:
    """The warm controller must reproduce the legacy cold-solve trace."""

    def run_pair(self, drift, *, dead_band=0.0, epochs=10):
        scenario = make_scenario()
        warm = ModelBasedController(scenario, dead_band=dead_band, warm=True)
        cold = ModelBasedController(scenario, warm=False)
        trace_w = make_simulation(warm, drift=drift, seed=3).run(epochs)
        trace_c = make_simulation(cold, drift=drift, seed=3).run(epochs)
        return warm, cold, trace_w, trace_c

    def test_warm_trace_equals_cold_trace(self):
        drift = DriftingPopularity(linear_drift(0.6, 1.4, 10), 4_000)
        warm, cold, trace_w, trace_c = self.run_pair(drift)
        np.testing.assert_allclose(
            trace_w.levels(), trace_c.levels(), atol=1e-9
        )
        np.testing.assert_allclose(
            trace_w.oracle_levels(), trace_c.oracle_levels(), atol=1e-9
        )
        assert trace_w.mean_regret() == pytest.approx(
            trace_c.mean_regret(), abs=1e-6
        )
        assert trace_w.total_churn() == trace_c.total_churn()

    def test_warm_controller_uses_strictly_fewer_cold_solves(self):
        drift = DriftingPopularity(step_drift([0.6, 1.4], 5), 4_000)
        warm, cold, trace_w, trace_c = self.run_pair(drift)
        # Legacy path cold-solves optimal_strategy every epoch (10);
        # the warm path pays exactly one cold solve.
        assert warm.tracker.cold_solves == 1
        assert warm.tracker.cold_solves + warm.tracker.warm_solves <= 10
        assert warm.tracker.warm_solves >= 1

    def test_dead_band_skips_solves_without_breaking_tracking(self):
        drift = DriftingPopularity(linear_drift(0.9, 0.95, 10), 4_000)
        warm, cold, trace_w, trace_c = self.run_pair(drift, dead_band=0.04)
        assert warm.tracker.skipped >= 1
        solves = warm.tracker.cold_solves + warm.tracker.warm_solves
        assert solves < 10
        # Within the band the provisioned level may lag the cold trace
        # by at most the optimum's sensitivity over the band width.
        assert np.max(np.abs(trace_w.levels() - trace_c.levels())) < 0.05


class TestRunnerOracleTracker:
    def test_oracle_served_warm_across_epochs(self):
        controller = ModelBasedController(make_scenario())
        simulation = make_simulation(controller)
        trace = simulation.run(6)
        tracker = simulation._oracle_tracker
        assert tracker.cold_solves == 1
        assert tracker.cold_solves + tracker.warm_solves + tracker.skipped == 6
        for record in trace.records:
            want = optimal_strategy(
                make_scenario().replace(exponent=record.true_exponent).model(),
                check_conditions=False,
            )
            assert record.oracle_level == pytest.approx(want.level, abs=1e-9)
