"""Unit tests for repro.adaptive.controller — adaptive controllers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.controller import (
    EpochObservation,
    GradientController,
    ModelBasedController,
)
from repro.catalog import ZipfModel
from repro.core import Scenario
from repro.errors import ParameterError


def observation(level=0.5, objective=1.0, ranks=None) -> EpochObservation:
    return EpochObservation(
        level=level,
        measured_objective=objective,
        observed_ranks=ranks if ranks is not None else np.array([1, 2, 3]),
    )


class TestModelBasedController:
    def make(self, **kwargs) -> ModelBasedController:
        scenario = Scenario(alpha=0.7, capacity=50.0, catalog_size=5_000)
        defaults = dict(initial_level=0.0, memory=0.3)
        defaults.update(kwargs)
        return ModelBasedController(scenario, **defaults)

    def test_initial_proposal(self):
        assert self.make(initial_level=0.25).propose(0) == 0.25

    def test_moves_to_solved_level_after_feedback(self):
        controller = self.make()
        model = ZipfModel(0.8, 5_000)
        ranks = model.sample(20_000, np.random.default_rng(0))
        controller.feedback(0, observation(ranks=ranks))
        scenario = Scenario(alpha=0.7, capacity=50.0, catalog_size=5_000)
        expected = scenario.replace(
            exponent=controller.last_estimate
        ).solve(check_conditions=False).level
        assert controller.propose(1) == pytest.approx(expected, abs=1e-9)
        assert controller.last_estimate == pytest.approx(0.8, abs=0.05)

    def test_rate_limited_steps(self):
        controller = self.make(max_step=0.1)
        model = ZipfModel(0.8, 5_000)
        ranks = model.sample(20_000, np.random.default_rng(0))
        controller.feedback(0, observation(ranks=ranks))
        assert controller.propose(1) <= 0.1 + 1e-12

    def test_empty_traffic_keeps_level(self):
        controller = self.make(initial_level=0.4)
        controller.feedback(0, observation(ranks=np.array([], dtype=int)))
        assert controller.propose(1) == 0.4

    def test_validates(self):
        with pytest.raises(ParameterError):
            self.make(initial_level=1.5)
        with pytest.raises(ParameterError):
            self.make(max_step=0.0)


class TestGradientController:
    def test_probe_pattern(self):
        controller = GradientController(initial_level=0.5, probe_gain=0.1)
        assert controller.propose(0) == pytest.approx(0.6)
        assert controller.propose(1) == pytest.approx(0.4)

    def test_probe_width_decays(self):
        controller = GradientController(initial_level=0.5, probe_gain=0.1)
        first = controller.propose(0) - 0.5
        later = controller.propose(10) - 0.5
        assert later < first

    def test_descends_measured_slope(self):
        controller = GradientController(
            initial_level=0.5, step_gain=0.2, probe_gain=0.1
        )
        # Higher objective at l+delta than l-delta -> slope positive
        # -> level decreases.
        controller.feedback(0, observation(objective=2.0))
        controller.feedback(1, observation(objective=1.0))
        assert controller.level < 0.5

    def test_ascends_when_objective_favors_higher_level(self):
        controller = GradientController(
            initial_level=0.5, step_gain=0.2, probe_gain=0.1
        )
        controller.feedback(0, observation(objective=1.0))
        controller.feedback(1, observation(objective=2.0))
        assert controller.level > 0.5

    def test_level_clipped_to_unit_interval(self):
        controller = GradientController(
            initial_level=0.95, step_gain=50.0, probe_gain=0.05
        )
        controller.feedback(0, observation(objective=0.0))
        controller.feedback(1, observation(objective=10.0))
        assert 0.0 <= controller.level <= 1.0

    def test_odd_feedback_without_pair_raises(self):
        controller = GradientController()
        with pytest.raises(ParameterError):
            controller.feedback(1, observation())

    def test_converges_on_quadratic(self):
        """On a noiseless convex objective, KW converges to the optimum."""
        controller = GradientController(
            initial_level=0.1, step_gain=0.8, probe_gain=0.1
        )
        target = 0.7
        for epoch in range(400):
            level = controller.propose(epoch)
            controller.feedback(
                epoch, observation(level=level, objective=(level - target) ** 2)
            )
        assert controller.level == pytest.approx(target, abs=0.05)

    def test_validates(self):
        with pytest.raises(ParameterError):
            GradientController(initial_level=-0.1)
        with pytest.raises(ParameterError):
            GradientController(step_gain=0.0)
