"""Unit tests for repro.adaptive.estimator — online Zipf MLE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.estimator import ExponentEstimator, estimate_exponent
from repro.catalog import ZipfModel
from repro.errors import ParameterError


class TestBatchMLE:
    @pytest.mark.parametrize("true_s", [0.5, 0.8, 1.2, 1.6])
    def test_recovers_true_exponent(self, true_s):
        model = ZipfModel(true_s, 5_000)
        ranks = model.sample(30_000, np.random.default_rng(7))
        estimate = estimate_exponent(ranks, 5_000)
        assert estimate == pytest.approx(true_s, abs=0.05)

    def test_more_samples_tighter(self):
        model = ZipfModel(0.9, 2_000)
        rng = np.random.default_rng(1)
        small = abs(estimate_exponent(model.sample(500, rng), 2_000) - 0.9)
        rng = np.random.default_rng(1)
        large = abs(estimate_exponent(model.sample(50_000, rng), 2_000) - 0.9)
        assert large <= small + 0.02

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([]), 100)

    def test_rejects_out_of_catalog_ranks(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([1, 500]), 100)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([1, 2]), 100, bounds=(1.0, 0.5))


class TestWindowedEstimator:
    def test_single_batch_matches_batch_mle(self):
        model = ZipfModel(0.8, 2_000)
        ranks = model.sample(10_000, np.random.default_rng(3))
        estimator = ExponentEstimator(2_000, memory=0.5)
        estimator.observe(ranks)
        assert estimator.estimate() == pytest.approx(
            estimate_exponent(ranks, 2_000), abs=1e-9
        )

    def test_tracks_drift(self):
        """After a regime change, low memory forgets the old exponent."""
        old = ZipfModel(0.5, 2_000)
        new = ZipfModel(1.5, 2_000)
        rng = np.random.default_rng(5)
        estimator = ExponentEstimator(2_000, memory=0.2)
        estimator.observe(old.sample(5_000, rng))
        for _ in range(6):
            estimator.observe(new.sample(5_000, rng))
        assert estimator.estimate() == pytest.approx(1.5, abs=0.1)

    def test_high_memory_averages_regimes(self):
        old = ZipfModel(0.5, 2_000)
        new = ZipfModel(1.5, 2_000)
        rng = np.random.default_rng(5)
        sticky = ExponentEstimator(2_000, memory=0.95)
        sticky.observe(old.sample(20_000, rng))
        sticky.observe(new.sample(5_000, rng))
        estimate = sticky.estimate()
        assert 0.5 < estimate < 1.4  # still pulled toward the old regime

    def test_empty_observation_is_noop(self):
        estimator = ExponentEstimator(100)
        estimator.observe(np.array([], dtype=int))
        assert not estimator.has_observations

    def test_estimate_without_observations_raises(self):
        with pytest.raises(ParameterError):
            ExponentEstimator(100).estimate()

    def test_reset(self):
        estimator = ExponentEstimator(100)
        estimator.observe(np.array([1, 2, 3]))
        estimator.reset()
        assert not estimator.has_observations

    def test_validates_construction(self):
        with pytest.raises(ParameterError):
            ExponentEstimator(1)
        with pytest.raises(ParameterError):
            ExponentEstimator(100, memory=1.0)

    def test_validates_observed_ranks(self):
        estimator = ExponentEstimator(100)
        with pytest.raises(ParameterError):
            estimator.observe(np.array([0]))


class TestWarmNewtonMLE:
    """The warm Newton solve is pinned to the scalar MLE (satellite 1)."""

    @staticmethod
    def _brentq_reference(mean_log_rank: float, catalog: int) -> float:
        """Root of the score f'(s) = m − E_s[log j] by high-precision brentq."""
        from scipy import optimize

        log_ranks = np.log(np.arange(1, catalog + 1, dtype=np.float64))

        def score(s: float) -> float:
            weights = np.exp(-s * log_ranks)
            return mean_log_rank - float(weights @ log_ranks) / float(
                weights.sum()
            )

        return float(optimize.brentq(score, 0.05, 1.95, xtol=1e-13))

    @pytest.mark.parametrize("true_s", [0.3, 0.7, 1.1, 1.6, 1.9])
    def test_newton_pins_to_scalar_mle_within_1e9(self, true_s):
        from repro.adaptive.estimator import _solve_mle

        catalog = 50_000
        log_ranks = np.log(np.arange(1, catalog + 1, dtype=np.float64))
        weights = np.exp(-true_s * log_ranks)
        mean_log_rank = float(weights @ log_ranks) / float(weights.sum())
        got = _solve_mle(mean_log_rank, catalog, (0.05, 1.95))
        assert got == pytest.approx(
            self._brentq_reference(mean_log_rank, catalog), abs=1e-9
        )

    def test_newton_matches_legacy_bounded_minimization(self):
        """Agreement with the pre-incremental solver within its xatol."""
        from scipy import optimize
        import math

        from repro.adaptive.estimator import _solve_mle
        from repro.core.zipf import harmonic_number

        catalog = 20_000
        model = ZipfModel(1.1, catalog)
        ranks = model.sample(30_000, np.random.default_rng(11))
        mean_log_rank = float(np.mean(np.log(ranks.astype(np.float64))))
        legacy = optimize.minimize_scalar(
            lambda s: s * mean_log_rank
            + math.log(harmonic_number(catalog, s)),
            bounds=(0.05, 1.95),
            method="bounded",
            options={"xatol": 1e-8},
        )
        got = _solve_mle(mean_log_rank, catalog, (0.05, 1.95))
        assert got == pytest.approx(float(legacy.x), abs=5e-8)

    def test_non_convergence_falls_back_to_bounded_minimization(
        self, monkeypatch
    ):
        from repro.adaptive import estimator as est_mod

        monkeypatch.setattr(est_mod, "_NEWTON_MAX_ITERATIONS", 0)
        catalog = 5_000
        model = ZipfModel(0.9, catalog)
        ranks = model.sample(10_000, np.random.default_rng(13))
        fallback = estimate_exponent(ranks, catalog)
        monkeypatch.undo()
        newton = estimate_exponent(ranks, catalog)
        assert fallback == pytest.approx(newton, abs=5e-8)

    def test_huge_catalog_uses_bounded_minimization(self, monkeypatch):
        from repro.adaptive import estimator as est_mod

        monkeypatch.setattr(est_mod, "_MAX_EXACT_CATALOG", 100)
        catalog = 5_000
        model = ZipfModel(0.9, catalog)
        ranks = model.sample(10_000, np.random.default_rng(13))
        fallback = estimate_exponent(ranks, catalog)
        monkeypatch.undo()
        newton = estimate_exponent(ranks, catalog)
        assert fallback == pytest.approx(newton, abs=5e-8)

    def test_single_rank_stream_returns_upper_bound(self):
        """All-rank-1 traffic (mean log-rank 0) is maximally skewed."""
        estimator = ExponentEstimator(1_000)
        estimator.observe(np.ones(100, dtype=int))
        assert estimator.estimate() == pytest.approx(1.95)

    def test_near_uniform_stream_returns_lower_bound(self):
        """Traffic flatter than the lower bound clamps to it."""
        catalog = 1_000
        ranks = np.arange(1, catalog + 1)  # perfectly uniform sweep
        assert estimate_exponent(ranks, catalog) == pytest.approx(0.05)

    def test_warm_start_is_cached_and_reset_clears_it(self):
        estimator = ExponentEstimator(2_000, memory=0.5)
        estimator.observe(ZipfModel(0.8, 2_000).sample(5_000, np.random.default_rng(3)))
        first = estimator.estimate()
        assert estimator._last_estimate == pytest.approx(first)
        again = estimator.estimate()
        assert again == pytest.approx(first, abs=1e-12)
        estimator.reset()
        assert estimator._last_estimate is None
