"""Unit tests for repro.adaptive.estimator — online Zipf MLE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.estimator import ExponentEstimator, estimate_exponent
from repro.catalog import ZipfModel
from repro.errors import ParameterError


class TestBatchMLE:
    @pytest.mark.parametrize("true_s", [0.5, 0.8, 1.2, 1.6])
    def test_recovers_true_exponent(self, true_s):
        model = ZipfModel(true_s, 5_000)
        ranks = model.sample(30_000, np.random.default_rng(7))
        estimate = estimate_exponent(ranks, 5_000)
        assert estimate == pytest.approx(true_s, abs=0.05)

    def test_more_samples_tighter(self):
        model = ZipfModel(0.9, 2_000)
        rng = np.random.default_rng(1)
        small = abs(estimate_exponent(model.sample(500, rng), 2_000) - 0.9)
        rng = np.random.default_rng(1)
        large = abs(estimate_exponent(model.sample(50_000, rng), 2_000) - 0.9)
        assert large <= small + 0.02

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([]), 100)

    def test_rejects_out_of_catalog_ranks(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([1, 500]), 100)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ParameterError):
            estimate_exponent(np.array([1, 2]), 100, bounds=(1.0, 0.5))


class TestWindowedEstimator:
    def test_single_batch_matches_batch_mle(self):
        model = ZipfModel(0.8, 2_000)
        ranks = model.sample(10_000, np.random.default_rng(3))
        estimator = ExponentEstimator(2_000, memory=0.5)
        estimator.observe(ranks)
        assert estimator.estimate() == pytest.approx(
            estimate_exponent(ranks, 2_000), abs=1e-9
        )

    def test_tracks_drift(self):
        """After a regime change, low memory forgets the old exponent."""
        old = ZipfModel(0.5, 2_000)
        new = ZipfModel(1.5, 2_000)
        rng = np.random.default_rng(5)
        estimator = ExponentEstimator(2_000, memory=0.2)
        estimator.observe(old.sample(5_000, rng))
        for _ in range(6):
            estimator.observe(new.sample(5_000, rng))
        assert estimator.estimate() == pytest.approx(1.5, abs=0.1)

    def test_high_memory_averages_regimes(self):
        old = ZipfModel(0.5, 2_000)
        new = ZipfModel(1.5, 2_000)
        rng = np.random.default_rng(5)
        sticky = ExponentEstimator(2_000, memory=0.95)
        sticky.observe(old.sample(20_000, rng))
        sticky.observe(new.sample(5_000, rng))
        estimate = sticky.estimate()
        assert 0.5 < estimate < 1.4  # still pulled toward the old regime

    def test_empty_observation_is_noop(self):
        estimator = ExponentEstimator(100)
        estimator.observe(np.array([], dtype=int))
        assert not estimator.has_observations

    def test_estimate_without_observations_raises(self):
        with pytest.raises(ParameterError):
            ExponentEstimator(100).estimate()

    def test_reset(self):
        estimator = ExponentEstimator(100)
        estimator.observe(np.array([1, 2, 3]))
        estimator.reset()
        assert not estimator.has_observations

    def test_validates_construction(self):
        with pytest.raises(ParameterError):
            ExponentEstimator(1)
        with pytest.raises(ParameterError):
            ExponentEstimator(100, memory=1.0)

    def test_validates_observed_ranks(self):
        estimator = ExponentEstimator(100)
        with pytest.raises(ParameterError):
            estimator.observe(np.array([0]))
