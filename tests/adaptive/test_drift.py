"""Unit tests for repro.adaptive.drift — drifting workloads."""

from __future__ import annotations

import pytest

from repro.adaptive.drift import (
    DriftingPopularity,
    EpochWorkloadFactory,
    linear_drift,
    sinusoidal_drift,
    step_drift,
)
from repro.errors import ParameterError


class TestTrajectories:
    def test_linear_endpoints(self):
        traj = linear_drift(0.5, 1.5, 11)
        assert traj(0) == pytest.approx(0.5)
        assert traj(10) == pytest.approx(1.5)
        assert traj(5) == pytest.approx(1.0)

    def test_linear_clamps_outside_range(self):
        traj = linear_drift(0.5, 1.5, 11)
        assert traj(-5) == pytest.approx(0.5)
        assert traj(100) == pytest.approx(1.5)

    def test_linear_single_epoch(self):
        assert linear_drift(0.7, 1.2, 1)(0) == pytest.approx(0.7)

    def test_linear_validates(self):
        with pytest.raises(ParameterError):
            linear_drift(0.0, 1.0, 10)
        with pytest.raises(ParameterError):
            linear_drift(0.5, 1.5, 0)

    def test_sinusoidal_oscillates(self):
        traj = sinusoidal_drift(0.9, 0.3, 8)
        assert traj(0) == pytest.approx(0.9)
        assert traj(2) == pytest.approx(1.2)
        assert traj(6) == pytest.approx(0.6)

    def test_sinusoidal_validates_amplitude(self):
        with pytest.raises(ParameterError):
            sinusoidal_drift(0.9, 0.9, 8)  # would hit 0.0
        with pytest.raises(ParameterError):
            sinusoidal_drift(0.9, 0.3, 1)

    def test_step_holds_blocks(self):
        traj = step_drift([0.5, 1.3], epochs_per_step=3)
        assert [traj(e) for e in range(7)] == [0.5] * 3 + [1.3] * 4

    def test_step_validates(self):
        with pytest.raises(ParameterError):
            step_drift([], 3)
        with pytest.raises(ParameterError):
            step_drift([0.5], 0)
        with pytest.raises(ParameterError):
            step_drift([2.5], 1)


class TestDriftingPopularity:
    def test_guards_singularity(self):
        drift = DriftingPopularity(
            linear_drift(0.9, 1.1, 21), 1000, singularity_guard=0.01
        )
        for epoch in range(21):
            s = drift.exponent_at(epoch)
            assert abs(s - 1.0) >= 0.01 - 1e-12

    def test_model_at_uses_trajectory(self):
        drift = DriftingPopularity(linear_drift(0.5, 1.5, 11), 1000)
        assert drift.model_at(0).exponent == pytest.approx(0.5)
        assert drift.model_at(10).exponent == pytest.approx(1.5)

    def test_validates(self):
        with pytest.raises(ParameterError):
            DriftingPopularity(linear_drift(0.5, 1.5, 5), 1)
        with pytest.raises(ParameterError):
            DriftingPopularity(
                linear_drift(0.5, 1.5, 5), 100, singularity_guard=0.0
            )


class TestEpochWorkloadFactory:
    def test_deterministic_per_epoch(self):
        drift = DriftingPopularity(linear_drift(0.5, 1.5, 5), 500)
        factory = EpochWorkloadFactory(drift, ["A", "B"], seed=3)
        a = factory.workload_at(2).materialize(50)
        b = factory.workload_at(2).materialize(50)
        assert a == b

    def test_epochs_differ(self):
        drift = DriftingPopularity(linear_drift(0.5, 1.5, 5), 500)
        factory = EpochWorkloadFactory(drift, ["A", "B"], seed=3)
        assert factory.workload_at(0).materialize(50) != factory.workload_at(
            1
        ).materialize(50)

    def test_validates_clients(self):
        drift = DriftingPopularity(linear_drift(0.5, 1.5, 5), 500)
        with pytest.raises(ParameterError):
            EpochWorkloadFactory(drift, [])
