"""Integration tests for repro.adaptive.runner — the closed loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveSimulation,
    DriftingPopularity,
    GradientController,
    ModelBasedController,
    linear_drift,
    step_drift,
)
from repro.core import Scenario
from repro.errors import ParameterError
from repro.topology import load_topology, ring_topology


def make_simulation(controller, *, drift=None, n_routers=8, seed=1):
    topology = ring_topology(n_routers)
    scenario = Scenario(
        alpha=0.7, n_routers=n_routers, capacity=40.0, catalog_size=4_000
    )
    drift = drift or DriftingPopularity(linear_drift(0.8, 0.8, 10), 4_000)
    return AdaptiveSimulation(
        topology, scenario, drift, controller,
        requests_per_epoch=1_500, seed=seed,
    )


class TestTraceBookkeeping:
    def test_record_count_and_fields(self):
        controller = ModelBasedController(
            Scenario(alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000)
        )
        trace = make_simulation(controller).run(5)
        assert len(trace) == 5
        for record in trace.records:
            assert 0.0 <= record.deployed_level <= 1.0
            assert 0.0 <= record.oracle_level <= 1.0
            assert record.placement_churn >= 0
        assert trace.records[0].placement_churn == 0  # nothing to move yet

    def test_levels_arrays(self):
        controller = ModelBasedController(
            Scenario(alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000)
        )
        trace = make_simulation(controller).run(4)
        assert trace.levels().shape == (4,)
        assert trace.oracle_levels().shape == (4,)

    def test_validation(self):
        controller = GradientController()
        topology = ring_topology(8)
        scenario = Scenario(alpha=0.7, n_routers=5, capacity=40.0, catalog_size=4_000)
        drift = DriftingPopularity(linear_drift(0.8, 0.8, 5), 4_000)
        with pytest.raises(ParameterError):
            AdaptiveSimulation(topology, scenario, drift, controller)
        scenario8 = scenario.replace(n_routers=8)
        bad_drift = DriftingPopularity(linear_drift(0.8, 0.8, 5), 999)
        with pytest.raises(ParameterError):
            AdaptiveSimulation(topology, scenario8, bad_drift, controller)
        good = AdaptiveSimulation(topology, scenario8, drift, controller)
        with pytest.raises(ParameterError):
            good.run(0)


class TestModelBasedAdaptation:
    def test_tracks_static_oracle(self):
        scenario = Scenario(
            alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000
        )
        controller = ModelBasedController(scenario, memory=0.5)
        trace = make_simulation(controller).run(8)
        assert trace.tracking_error(tail=5) < 0.08

    def test_tracks_regime_change(self):
        scenario = Scenario(
            alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000
        )
        controller = ModelBasedController(scenario, memory=0.1)
        drift = DriftingPopularity(
            step_drift([0.5, 1.4], epochs_per_step=8), 4_000
        )
        trace = make_simulation(controller, drift=drift).run(16)
        # After the switch the deployed level must approach the new oracle.
        assert abs(
            trace.records[-1].deployed_level - trace.records[-1].oracle_level
        ) < 0.1

    def test_rate_limit_reduces_churn(self):
        scenario = Scenario(
            alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000
        )
        drift = DriftingPopularity(
            step_drift([0.5, 1.4], epochs_per_step=4), 4_000
        )
        free = make_simulation(
            ModelBasedController(scenario, memory=0.1), drift=drift
        ).run(8)
        limited = make_simulation(
            ModelBasedController(scenario, memory=0.1, max_step=0.05),
            drift=drift,
        ).run(8)
        assert limited.total_churn() <= free.total_churn()


class TestGradientAdaptation:
    def test_moves_toward_oracle_under_static_traffic(self):
        controller = GradientController(
            initial_level=0.1, step_gain=0.5, probe_gain=0.15
        )
        trace = make_simulation(controller).run(30)
        start_gap = abs(
            trace.records[0].deployed_level - trace.records[0].oracle_level
        )
        end_gap = trace.tracking_error(tail=6)
        assert end_gap < start_gap
        assert end_gap < 0.25
