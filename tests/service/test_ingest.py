"""Tests for repro.service.ingest — the measurement wire format."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.service import MeasurementBatch, parse_line, read_stream


class TestMeasurementBatch:
    def test_default_is_empty(self):
        batch = MeasurementBatch()
        assert batch.empty
        assert len(batch) == 0

    def test_holds_integer_ranks(self):
        batch = MeasurementBatch(ranks=np.array([3, 1, 2]))
        assert not batch.empty
        assert len(batch) == 3
        assert batch.ranks.dtype == np.int64

    def test_rejects_non_positive_ranks(self):
        with pytest.raises(ParameterError):
            MeasurementBatch(ranks=np.array([1, 0, 2]))

    def test_rejects_float_ranks(self):
        with pytest.raises(ParameterError):
            MeasurementBatch(ranks=np.array([1.5, 2.0]))

    def test_rejects_matrix_ranks(self):
        with pytest.raises(ParameterError):
            MeasurementBatch(ranks=np.ones((2, 2), dtype=np.int64))


class TestParseLine:
    def test_parses_whitespace_separated_ranks(self):
        batch = parse_line("5 1  12\t3")
        np.testing.assert_array_equal(batch.ranks, [5, 1, 12, 3])

    def test_blank_line_is_empty_batch(self):
        assert parse_line("").empty
        assert parse_line("   \n").empty

    def test_comment_only_line_is_empty_batch(self):
        assert parse_line("# a comment\n").empty

    def test_trailing_comment_is_stripped(self):
        batch = parse_line("4 2 # burst from cache tap\n")
        np.testing.assert_array_equal(batch.ranks, [4, 2])

    def test_non_integer_token_rejected(self):
        with pytest.raises(ParameterError):
            parse_line("3 four 5")


class TestReadStream:
    def test_yields_one_batch_per_line(self):
        stream = io.StringIO("1 2\n\n3\n")
        batches = list(read_stream(stream))
        assert [len(b) for b in batches] == [2, 0, 1]

    def test_accepts_plain_string_iterables(self):
        batches = list(read_stream(["7 7 7", "# idle"]))
        assert [len(b) for b in batches] == [3, 0]
