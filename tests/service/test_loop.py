"""Tests for repro.service.loop — the online control loop.

Covers the satellite edge cases: empty measurement windows, single-rank
streams, drift exactly at the dead-band boundary, and estimates outside
the solver envelope (clamped and counted).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Scenario
from repro.core.optimizer import optimal_strategy
from repro.errors import ParameterError
from repro.obs import session
from repro.service import DeadBandPolicy, MeasurementBatch, OptimizerService
from repro.service.policy import SOLVER_EXPONENT_CEILING


def make_scenario(**overrides):
    params = dict(alpha=0.7, n_routers=8, capacity=40.0, catalog_size=4_000)
    params.update(overrides)
    return Scenario(**params)


def zipf_batch(exponent, *, size=600, catalog=4_000, seed=0):
    rng = np.random.default_rng(seed)
    weights = np.arange(1, catalog + 1, dtype=np.float64) ** -exponent
    weights /= weights.sum()
    ranks = rng.choice(np.arange(1, catalog + 1), size=size, p=weights)
    return MeasurementBatch(ranks=ranks)


class TestTickLifecycle:
    def test_first_traffic_tick_is_cold_then_warm(self):
        service = OptimizerService(make_scenario())
        first = service.ingest(zipf_batch(0.8, seed=1))
        second = service.ingest(zipf_batch(1.2, seed=2))
        assert first.action == "cold"
        assert second.action == "warm"
        assert service.tracker.cold_solves == 1
        assert service.tracker.warm_solves == 1

    def test_tick_level_matches_scalar_oracle(self):
        scenario = make_scenario()
        service = OptimizerService(scenario)
        tick = service.ingest(zipf_batch(0.9, seed=3))
        want = optimal_strategy(
            scenario.replace(exponent=tick.estimate).model(),
            check_conditions=False,
        )
        assert tick.level == pytest.approx(want.level, abs=1e-9)

    def test_run_yields_a_tick_per_batch(self):
        service = OptimizerService(make_scenario())
        batches = [zipf_batch(0.8, seed=s) for s in range(4)]
        ticks = list(service.run(batches))
        assert [t.index for t in ticks] == [0, 1, 2, 3]
        assert service.ticks == 4

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ParameterError):
            OptimizerService(make_scenario(), bounds=(1.0, 0.5))


class TestEmptyWindow:
    def test_empty_stream_start_is_idle(self):
        service = OptimizerService(make_scenario())
        tick = service.ingest(MeasurementBatch())
        assert tick.action == "idle"
        assert tick.estimate is None
        assert tick.level is None
        assert tick.observed == 0
        assert service.tracker.cold_solves == 0

    def test_empty_window_after_traffic_keeps_last_estimate(self):
        service = OptimizerService(make_scenario())
        first = service.ingest(zipf_batch(0.8))
        empty = service.ingest(MeasurementBatch())
        # The window is unchanged, so the estimate repeats and the
        # dead-band (0 = exact dedup) absorbs it: no new solve.
        assert empty.action == "skipped"
        assert empty.estimate == pytest.approx(first.estimate)
        assert empty.level == first.level
        assert empty.staleness == 1
        assert service.tracker.warm_solves == 0

    def test_idle_ticks_accumulate_staleness_only_after_a_solve(self):
        service = OptimizerService(make_scenario())
        assert service.ingest(MeasurementBatch()).staleness == 0
        assert service.ingest(MeasurementBatch()).staleness == 0
        service.ingest(zipf_batch(0.8))
        assert service.ingest(MeasurementBatch()).staleness == 1
        assert service.ingest(MeasurementBatch()).staleness == 2


class TestSingleRankStream:
    def test_single_rank_stream_pins_to_upper_bound(self):
        # Every request for rank 1: the MLE runs to its upper search
        # bound (maximally skewed traffic), which sits exactly on the
        # solver envelope — representable, not clamped.
        service = OptimizerService(make_scenario())
        tick = service.ingest(
            MeasurementBatch(ranks=np.ones(500, dtype=np.int64))
        )
        assert tick.estimate == pytest.approx(SOLVER_EXPONENT_CEILING)
        assert not tick.clamped
        assert tick.action == "cold"
        assert 0.0 <= tick.level <= 1.0


class TestDeadBandBoundary:
    def test_drift_exactly_at_boundary_skips(self):
        scenario = make_scenario()
        service = OptimizerService(
            scenario, policy=DeadBandPolicy(dead_band=0.05)
        )
        service.tracker.solve(0.8)  # seed the anchor directly
        # |0.85 - 0.8| == dead_band must skip; strictly past re-solves.
        service.tracker.solve(0.85)
        assert service.tracker.skipped == 1
        assert service.tracker.solved_exponent == 0.8
        service.tracker.solve(0.85 + 1e-9)
        assert service.tracker.warm_solves == 1

    def test_dead_band_skip_reported_on_tick(self):
        service = OptimizerService(
            make_scenario(), policy=DeadBandPolicy(dead_band=0.5)
        )
        service.ingest(zipf_batch(0.8, seed=1))
        tick = service.ingest(zipf_batch(0.9, seed=2))
        assert tick.action == "skipped"
        assert tick.staleness == 1
        assert tick.tracking_error == pytest.approx(
            abs(tick.estimate - service.tracker.solved_exponent)
        )


class TestClamping:
    def test_estimate_outside_solver_envelope_is_clamped_and_counted(self):
        # Widened MLE bounds let a single-rank stream run past the
        # solver's eq. 6 envelope; the policy clamps it back and the
        # clamp lands on the obs counter.
        service = OptimizerService(make_scenario(), bounds=(0.05, 3.0))
        with session() as obs:
            tick = service.ingest(
                MeasurementBatch(ranks=np.ones(500, dtype=np.int64))
            )
            metrics = obs.snapshot()
        assert tick.clamped
        assert tick.estimate == pytest.approx(SOLVER_EXPONENT_CEILING)
        assert metrics["counters"]["service.estimate_clamped"] == 1
        assert tick.action == "cold"

    def test_policy_validation(self):
        with pytest.raises(ParameterError):
            DeadBandPolicy(dead_band=-0.01)
        with pytest.raises(ParameterError):
            DeadBandPolicy(floor=0.5, ceiling=0.4)
        with pytest.raises(ParameterError):
            DeadBandPolicy(ceiling=2.5)


class TestObservability:
    def test_gauges_and_counters_per_tick(self):
        service = OptimizerService(make_scenario())
        with session() as obs:
            service.ingest(zipf_batch(0.8, seed=1))
            service.ingest(zipf_batch(0.8, seed=1))
            metrics = obs.snapshot()
        counters = metrics["counters"]
        gauges = metrics["gauges"]
        assert counters["service.ticks"] == 2
        assert counters["adaptive.tracker.cold_solves"] == 1
        assert "service.solve_latency_s" in gauges
        assert "service.estimate_staleness" in gauges
        assert "service.tracking_error" in gauges
        assert "service.tick" in metrics["spans"]
        assert "service.solve" in metrics["spans"]
