"""Unit tests for repro.ccn.names — hierarchical CCN names."""

from __future__ import annotations

import pytest

from repro.ccn import Name
from repro.errors import ParameterError


class TestConstruction:
    def test_from_uri(self):
        name = Name("/a/b/c")
        assert name.components == ("a", "b", "c")
        assert str(name) == "/a/b/c"
        assert len(name) == 3

    def test_root(self):
        assert len(Name("/")) == 0
        assert str(Name("/")) == "/"

    def test_collapses_duplicate_slashes(self):
        assert Name("/a//b/").components == ("a", "b")

    def test_requires_leading_slash(self):
        with pytest.raises(ParameterError):
            Name("a/b")

    def test_from_components(self):
        assert Name.from_components(["x", "y"]) == Name("/x/y")

    def test_from_components_rejects_bad(self):
        with pytest.raises(ParameterError):
            Name.from_components(["a/b"])
        with pytest.raises(ParameterError):
            Name.from_components([""])

    def test_immutable(self):
        name = Name("/a")
        with pytest.raises(AttributeError):
            name.components = ()  # type: ignore[misc]

    def test_hash_and_equality(self):
        assert Name("/a/b") == Name("/a/b")
        assert hash(Name("/a/b")) == hash(Name("/a/b"))
        assert Name("/a/b") != Name("/a/c")
        assert Name("/a") != "not-a-name"

    def test_ordering(self):
        assert Name("/a") < Name("/a/b") < Name("/b")

    def test_repr(self):
        assert "'/a/b'" in repr(Name("/a/b"))


class TestPrefixOperations:
    def test_is_prefix_of(self):
        assert Name("/a").is_prefix_of(Name("/a/b"))
        assert Name("/a/b").is_prefix_of(Name("/a/b"))
        assert not Name("/a/b").is_prefix_of(Name("/a"))
        assert not Name("/x").is_prefix_of(Name("/a/b"))
        assert Name("/").is_prefix_of(Name("/anything"))

    def test_prefix(self):
        assert Name("/a/b/c").prefix(2) == Name("/a/b")
        assert Name("/a/b/c").prefix(0) == Name("/")

    def test_prefix_out_of_range(self):
        with pytest.raises(ParameterError):
            Name("/a").prefix(2)

    def test_prefixes_longest_first(self):
        prefixes = list(Name("/a/b").prefixes())
        assert prefixes == [Name("/a/b"), Name("/a"), Name("/")]

    def test_child(self):
        assert Name("/a").child("b") == Name("/a/b")
        with pytest.raises(ParameterError):
            Name("/a").child("x/y")
        with pytest.raises(ParameterError):
            Name("/a").child("")
