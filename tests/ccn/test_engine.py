"""Unit tests for repro.ccn.engine — the batched packet-level engine.

Scalar/batched equivalence lives in ``test_engine_equivalence.py``;
this module covers the engine's own surface: validation, outcome
codes, cohort aggregation, the finite-queue model and obs wiring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.ccn import (
    BatchedCCNEngine,
    BatchedCCNResult,
    CacheQueue,
    CCNMetrics,
)
from repro.ccn.engine import (
    N_OUTCOMES,
    OUT_AGGREGATED,
    OUT_FORWARDED,
    OUT_ORIGIN,
    OUT_QUEUED,
    OUT_REJECTED,
    OUT_SERVED_LOCAL,
)
from repro.core import ProvisioningStrategy
from repro.errors import ParameterError, SimulationError, TopologyError
from repro.obs import session as obs_session
from repro.simulation import LRUCache, StaticCache
from repro.topology import Topology, load_topology


@pytest.fixture
def triangle() -> Topology:
    return Topology.from_edges(
        [("R0", "R1"), ("R0", "R2"), ("R1", "R2")], link_latency_ms=5.0
    )


def make_engine(topology, **kwargs) -> BatchedCCNEngine:
    defaults = dict(origin_gateway=topology.nodes[0], origin_latency_ms=50.0)
    defaults.update(kwargs)
    return BatchedCCNEngine(topology, **defaults)


def provisioned_us_a(level: float = 0.5, **kwargs):
    topology = load_topology("us-a")
    engine = make_engine(topology, **kwargs)
    engine.install_strategy(
        ProvisioningStrategy(
            capacity=100, n_routers=topology.n_routers, level=level
        )
    )
    workload = IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=7)
    return engine, workload


class TestValidation:
    def test_rejects_unknown_gateway(self, triangle):
        with pytest.raises(TopologyError):
            BatchedCCNEngine(triangle, origin_gateway="Z")

    def test_rejects_negative_latency(self, triangle):
        with pytest.raises(ParameterError):
            make_engine(triangle, origin_latency_ms=-1.0)

    def test_rejects_nonpositive_pit_lifetime(self, triangle):
        with pytest.raises(ParameterError):
            make_engine(triangle, pit_lifetime_ms=0.0)

    def test_rejects_bad_cohort_size(self, triangle):
        with pytest.raises(ParameterError):
            make_engine(triangle, cohort_size=0)

    def test_rejects_unknown_store_router(self, triangle):
        with pytest.raises(SimulationError):
            make_engine(triangle, stores={"Z": StaticCache(0)})

    def test_rejects_dynamic_store(self, triangle):
        with pytest.raises(SimulationError, match="scalar CCNNetwork"):
            make_engine(triangle, stores={"R1": LRUCache(4)})

    def test_capacity_zero_policy_allowed(self, triangle):
        engine = make_engine(triangle, stores={"R1": LRUCache(0)})
        result = engine.run_schedule(["R1"], [1], [0.0])
        assert result.requests_completed == 1

    def test_rejects_mismatched_schedule(self, triangle):
        engine = make_engine(triangle)
        with pytest.raises(ParameterError):
            engine.run_schedule(["R0", "R1"], [1], [0.0])

    def test_rejects_unsorted_times(self, triangle):
        engine = make_engine(triangle)
        with pytest.raises(ParameterError):
            engine.run_schedule(["R0", "R1"], [1, 2], [5.0, 1.0])

    def test_rejects_bad_rank(self, triangle):
        engine = make_engine(triangle)
        with pytest.raises(ParameterError):
            engine.run_schedule(["R0"], [0], [0.0])

    def test_rejects_negative_interarrival(self, triangle):
        engine = make_engine(triangle)
        workload = IRMWorkload(ZipfModel(0.8, 100), triangle.nodes, seed=0)
        with pytest.raises(ParameterError):
            engine.run_workload(workload, 10, interarrival_ms=-1.0)

    def test_strategy_router_count_must_match(self, triangle):
        engine = make_engine(triangle)
        with pytest.raises(ParameterError):
            engine.install_strategy(
                ProvisioningStrategy(capacity=10, n_routers=5, level=0.5)
            )

    def test_signature_table_budget(self):
        engine, workload = provisioned_us_a(table_limit_bytes=1024)
        with pytest.raises(SimulationError, match="budget"):
            engine.run_workload(workload, 1000)


class TestCacheQueueValidation:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(ParameterError):
            CacheQueue(size=0)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ParameterError):
            CacheQueue(size=4, read_penalty_ms=-0.1)


class TestOutcomes:
    def test_outcome_code_values(self):
        codes = (
            OUT_SERVED_LOCAL,
            OUT_FORWARDED,
            OUT_AGGREGATED,
            OUT_ORIGIN,
            OUT_QUEUED,
            OUT_REJECTED,
        )
        assert sorted(codes) == list(range(N_OUTCOMES))

    def test_local_hit_outcome(self, triangle):
        engine = make_engine(
            triangle, stores={"R1": StaticCache(1, frozenset({1}))}
        )
        result = engine.run_schedule(["R1"], [1], [0.0])
        assert result.outcome_counts[1, OUT_SERVED_LOCAL] == 1
        assert result.cs_hits == 1
        assert list(result.interest_hops) == [0]

    def test_origin_outcome(self, triangle):
        engine = make_engine(triangle)
        result = engine.run_schedule(["R1"], [1], [0.0])
        assert result.outcome_counts[1, OUT_ORIGIN] == 1
        assert result.origin_productions == 1

    def test_forwarded_outcome(self, triangle):
        # Content on the default route (at the gateway router itself).
        engine = make_engine(
            triangle, stores={"R0": StaticCache(1, frozenset({1}))}
        )
        result = engine.run_schedule(["R1"], [1], [0.0])
        assert result.outcome_counts[1, OUT_FORWARDED] == 1
        assert result.cs_hits == 1
        assert result.origin_productions == 0

    def test_aggregated_outcome(self, triangle):
        # Two Interests for one name from distinct clients inside the
        # first's in-flight window: the second aggregates in the PIT.
        engine = make_engine(triangle)
        result = engine.run_schedule(["R1", "R2"], [1, 1], [0.0, 1.0])
        assert result.pit_aggregations == 1
        assert int(result.outcome_counts[:, OUT_AGGREGATED].sum()) == 1
        assert result.origin_productions == 1  # one upstream fetch

    def test_outcome_matrix_shape_and_total(self):
        engine, workload = provisioned_us_a()
        result = engine.run_workload(workload, 4000)
        assert result.outcome_counts.shape == (engine.n_nodes, N_OUTCOMES)
        assert int(result.outcome_counts.sum()) == 4000
        assert result.outcome_counts.dtype == np.int64


class TestCohorts:
    def test_cohort_size_invariance(self):
        engine_a, workload_a = provisioned_us_a(cohort_size=64)
        engine_b, workload_b = provisioned_us_a()
        a = engine_a.run_workload(workload_a, 3000)
        b = engine_b.run_workload(workload_b, 3000)
        assert a.cohorts == -(-3000 // 64) and b.cohorts == 1
        assert np.array_equal(a.outcome_counts, b.outcome_counts)
        assert np.array_equal(
            np.sort(a.latencies_ms), np.sort(b.latencies_ms)
        )
        assert a.to_metrics() == b.to_metrics()

    def test_empty_run(self, triangle):
        engine = make_engine(triangle)
        result = engine.run_schedule([], [], [])
        assert result.requests_issued == 0
        assert result.cohorts == 0
        assert int(result.outcome_counts.sum()) == 0


class TestToMetrics:
    def test_metrics_shape(self, triangle):
        engine = make_engine(triangle)
        result = engine.run_schedule(["R1", "R2"], [1, 2], [0.0, 10.0])
        metrics = result.to_metrics()
        assert isinstance(metrics, CCNMetrics)
        assert metrics.requests_issued == 2
        assert metrics.requests_completed == 2
        assert metrics.latencies_ms == [float(v) for v in result.latencies_ms]
        assert metrics.interest_hops == [int(v) for v in result.interest_hops]

    def test_derived_properties_empty(self):
        result = BatchedCCNResult()
        assert result.origin_load == 0.0
        assert result.mean_latency_ms == 0.0
        assert result.mean_interest_hops == 0.0


class TestQueueModel:
    def test_no_queue_has_no_queue_stats(self):
        engine, workload = provisioned_us_a()
        result = engine.run_workload(workload, 3000)
        assert result.queued_ops == 0
        assert result.rejected_ops == 0
        assert result.queue_wait_ms == 0.0

    def test_generous_queue_waits_raise_latency(self):
        base_engine, base_wl = provisioned_us_a()
        base = base_engine.run_workload(base_wl, 5000)
        queued_engine, queued_wl = provisioned_us_a(
            queue=CacheQueue(size=64, read_penalty_ms=0.5, write_penalty_ms=0.2)
        )
        queued = queued_engine.run_workload(queued_wl, 5000)
        assert queued.queued_ops > 0
        assert queued.rejected_ops == 0
        assert queued.queue_wait_ms > 0
        assert queued.mean_latency_ms > base.mean_latency_ms
        assert int(queued.outcome_counts[:, OUT_QUEUED].sum()) > 0
        # Queueing delays completions but loses none.
        assert queued.requests_completed == base.requests_completed == 5000

    def test_full_queue_rejects_and_escalates(self):
        base_engine, base_wl = provisioned_us_a()
        base = base_engine.run_workload(base_wl, 5000, interarrival_ms=0.05)
        engine, workload = provisioned_us_a(
            queue=CacheQueue(size=1, read_penalty_ms=2.0, write_penalty_ms=1.0)
        )
        result = engine.run_workload(workload, 5000, interarrival_ms=0.05)
        assert result.rejected_ops > 0
        rejected = int(result.outcome_counts[:, OUT_REJECTED].sum())
        assert rejected > 0
        # Rejected reads escalate upstream: strictly more hops and more
        # origin traffic than the no-queue run of the same stream.
        assert result.mean_interest_hops > base.mean_interest_hops
        assert result.origin_productions > base.origin_productions
        assert result.requests_completed == 5000

    def test_queue_outcomes_balance(self):
        engine, workload = provisioned_us_a(
            queue=CacheQueue(size=2, read_penalty_ms=1.0, write_penalty_ms=0.5)
        )
        result = engine.run_workload(workload, 5000, interarrival_ms=0.1)
        assert int(result.outcome_counts.sum()) == 5000
        assert result.queued_ops > 0 or result.rejected_ops > 0


class TestObsWiring:
    def test_counters_and_gauge(self):
        engine, workload = provisioned_us_a(
            queue=CacheQueue(size=8, read_penalty_ms=0.2)
        )
        with obs_session() as capture:
            result = engine.run_workload(workload, 3000, interarrival_ms=0.1)
        snapshot = capture.snapshot()
        counters = snapshot["counters"]
        assert counters["ccn.engine.requests"] == 3000
        assert counters["ccn.engine.cohorts"] == result.cohorts
        assert counters["ccn.engine.aggregations"] == result.pit_aggregations
        assert counters["ccn.engine.simulated"] == result.simulated_requests
        assert counters["ccn.engine.queued"] == result.queued_ops
        assert counters["ccn.engine.rejected"] == result.rejected_ops
        assert snapshot["gauges"]["ccn.engine.rps"] > 0
        assert snapshot["spans"]["ccn.engine"]["count"] == 1
