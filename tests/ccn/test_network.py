"""Integration tests for repro.ccn.network — the CCN data plane."""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, SequenceWorkload, ZipfModel
from repro.ccn import CCNNetwork, Name, NoCache, make_enroute_strategy
from repro.core import ProvisioningStrategy
from repro.errors import ParameterError, SimulationError, TopologyError
from repro.simulation import StaticCache
from repro.topology import Topology, load_topology


@pytest.fixture
def triangle() -> Topology:
    return Topology.from_edges(
        [("R0", "R1"), ("R0", "R2"), ("R1", "R2")], link_latency_ms=5.0
    )


def make_network(topology, **kwargs) -> CCNNetwork:
    defaults = dict(origin_gateway=topology.nodes[0], origin_latency_ms=50.0)
    defaults.update(kwargs)
    return CCNNetwork(topology, **defaults)


class TestBasics:
    def test_naming_roundtrip(self, triangle):
        net = make_network(triangle)
        name = net.rank_to_name(17)
        assert net.name_to_rank(name) == 17

    def test_naming_validation(self, triangle):
        net = make_network(triangle)
        with pytest.raises(ParameterError):
            net.rank_to_name(0)
        with pytest.raises(ParameterError):
            net.name_to_rank(Name("/foreign/1"))

    def test_rejects_unknown_gateway(self, triangle):
        with pytest.raises(TopologyError):
            CCNNetwork(triangle, origin_gateway="Z")

    def test_rejects_unknown_store_router(self, triangle):
        with pytest.raises(SimulationError):
            CCNNetwork(
                triangle, origin_gateway="R0", stores={"Z": StaticCache(0)}
            )

    def test_rejects_unknown_client(self, triangle):
        net = make_network(triangle)
        with pytest.raises(SimulationError):
            net.issue("Z", 1)


class TestForwarding:
    def test_local_hit_zero_hops(self, triangle):
        net = make_network(
            triangle,
            stores={"R1": StaticCache(1, frozenset({1}))},
            enroute=NoCache(),
        )
        net.issue("R1", 1)
        metrics = net.run()
        assert metrics.requests_completed == 1
        assert metrics.origin_productions == 0
        assert metrics.interest_hops == [0]

    def test_miss_goes_to_origin(self, triangle):
        net = make_network(triangle, enroute=NoCache())
        net.issue("R1", 1)
        metrics = net.run()
        assert metrics.requests_completed == 1
        assert metrics.origin_productions == 1
        # R1 -> R0 (1 hop) + origin leg (1) = 2 interest hops.
        assert metrics.interest_hops == [2]

    def test_latency_accounting(self, triangle):
        net = make_network(triangle, enroute=NoCache(), origin_latency_ms=50.0)
        net.issue("R1", 1)
        metrics = net.run()
        # R1->R0 5ms + 100ms origin RTT + R0->R1 5ms = 110 ms.
        assert metrics.latencies_ms == [pytest.approx(110.0)]

    def test_motivating_example_noncoordinated(self, triangle):
        """Both R1, R2 store 'a': b-requests (1/3) reach the origin."""
        net = make_network(
            triangle,
            stores={
                "R1": StaticCache(1, frozenset({1})),
                "R2": StaticCache(1, frozenset({1})),
            },
            enroute=NoCache(),
        )
        workload = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])
        metrics = net.run_workload(workload, 600, interarrival_ms=1_000.0)
        assert metrics.origin_load == pytest.approx(1 / 3)
        assert metrics.mean_interest_hops == pytest.approx(2 / 3)

    def test_motivating_example_needs_fib_coordination(self, triangle):
        """Splitting contents WITHOUT custodian routes does not help:
        Interests still follow the origin default route.  The placement
        only pays off once the coordination messages install routes."""
        net = make_network(
            triangle,
            stores={
                "R1": StaticCache(1, frozenset({1})),
                "R2": StaticCache(1, frozenset({2})),
            },
            enroute=NoCache(),
        )
        workload = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])
        metrics = net.run_workload(workload, 600, interarrival_ms=1_000.0)
        assert metrics.origin_load > 0.0  # placement alone is not enough

    def test_motivating_example_coordinated_with_routes(self, triangle):
        from repro.ccn import build_fibs

        net = make_network(
            triangle,
            stores={
                "R1": StaticCache(1, frozenset({1})),
                "R2": StaticCache(1, frozenset({2})),
            },
            enroute=NoCache(),
        )
        fibs = build_fibs(
            triangle,
            "R0",
            root_prefix=net.root_prefix,
            custodians={
                net.rank_to_name(1): "R1",
                net.rank_to_name(2): "R2",
            },
        )
        for node in triangle.nodes:
            net._nodes[node].fib = fibs[node]
        workload = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])
        metrics = net.run_workload(workload, 600, interarrival_ms=1_000.0)
        assert metrics.origin_load == 0.0
        assert metrics.mean_interest_hops == pytest.approx(0.5)


class TestPitAggregation:
    def test_concurrent_interests_aggregate(self, triangle):
        net = make_network(triangle, enroute=NoCache(), origin_latency_ms=500.0)
        # Two clients of the same router ask for the same content at
        # nearly the same time; only one Interest crosses to the origin.
        net.issue("R1", 7)
        net.issue("R1", 7)
        metrics = net.run()
        assert metrics.requests_issued == 2
        assert metrics.requests_completed == 2
        assert metrics.origin_productions == 1
        assert metrics.pit_aggregations >= 1

    def test_aggregation_across_routers(self, triangle):
        net = make_network(triangle, enroute=NoCache(), origin_latency_ms=500.0)
        # R1 and R2 both forward toward R0; R0 aggregates the second.
        net.issue("R1", 7)
        net.issue("R2", 7)
        metrics = net.run()
        assert metrics.origin_productions == 1
        assert metrics.requests_completed == 2


class TestEnRouteCaching:
    def test_lce_populates_path(self, triangle):
        net = make_network(triangle, default_capacity=5)  # LRU + LCE
        net.issue("R1", 3)
        net.run()
        # Data travelled origin -> R0 -> R1; both cached it.
        assert 3 in net.store_of("R0")
        assert 3 in net.store_of("R1")
        assert 3 not in net.store_of("R2")

    def test_second_request_hits_cache(self, triangle):
        net = make_network(triangle, default_capacity=5)
        net.issue("R1", 3)
        net.run()
        net.issue("R1", 3)
        metrics = net.run()
        assert metrics.origin_productions == 1  # only the first fetch
        assert metrics.cs_hits >= 1

    def test_lcd_caches_one_level(self, triangle):
        net = make_network(
            triangle,
            default_capacity=5,
            enroute=make_enroute_strategy("lcd"),
        )
        net.issue("R1", 3)
        net.run()
        # Origin produced; first hop below the producer is R0 only.
        assert 3 in net.store_of("R0")
        assert 3 not in net.store_of("R1")

    def test_edge_caches_at_consumer(self, triangle):
        net = make_network(
            triangle,
            default_capacity=5,
            enroute=make_enroute_strategy("edge"),
        )
        net.issue("R1", 3)
        net.run()
        assert 3 in net.store_of("R1")
        assert 3 not in net.store_of("R0")


class TestInstallStrategy:
    def test_matches_flow_level_simulation(self):
        """The packet-level origin load must track the flow-level
        nearest-replica simulation and the analytical model."""
        topology = load_topology("us-a")
        strategy = ProvisioningStrategy(capacity=50, n_routers=20, level=0.5)
        net = CCNNetwork(
            topology, origin_gateway=topology.nodes[0], enroute=NoCache()
        )
        net.install_strategy(strategy)
        workload = IRMWorkload(ZipfModel(0.8, 5_000), topology.nodes, seed=3)
        metrics = net.run_workload(workload, 5_000, interarrival_ms=1_000.0)
        # Analytical origin load at this level is ~0.433 (exact CDF).
        assert metrics.origin_load == pytest.approx(0.433, abs=0.03)

    def test_counts_directive_messages(self, triangle):
        net = make_network(triangle, enroute=NoCache())
        strategy = ProvisioningStrategy(capacity=4, n_routers=3, level=0.5)
        net.install_strategy(strategy)
        # n*x coordinated ranks, each installed at n-1 routers.
        assert net.directive_messages == (3 * 2) * 2

    def test_rejects_router_count_mismatch(self, triangle):
        net = make_network(triangle)
        with pytest.raises(ParameterError):
            net.install_strategy(
                ProvisioningStrategy(capacity=4, n_routers=5, level=0.5)
            )

    def test_coordination_reduces_origin_load_end_to_end(self, triangle):
        workload = IRMWorkload(ZipfModel(0.8, 200), triangle.nodes, seed=5)
        loads = {}
        for level in (0.0, 1.0):
            net = make_network(triangle, enroute=NoCache())
            net.install_strategy(
                ProvisioningStrategy(capacity=10, n_routers=3, level=level)
            )
            loads[level] = net.run_workload(
                workload, 3_000, interarrival_ms=1_000.0
            ).origin_load
        assert loads[1.0] < loads[0.0]
