"""Unit tests for repro.ccn.fib and repro.ccn.pit."""

from __future__ import annotations

import pytest

from repro.ccn import Fib, Name, Pit, build_fibs
from repro.errors import ParameterError, TopologyError
from repro.topology import Topology


class TestFib:
    def test_longest_prefix_match(self):
        fib = Fib()
        fib.add_route(Name("/a"), "X")
        fib.add_route(Name("/a/b"), "Y")
        assert fib.lookup(Name("/a/b/c")) == "Y"
        assert fib.lookup(Name("/a/z")) == "X"
        assert fib.lookup(Name("/other")) is None

    def test_default_route(self):
        fib = Fib()
        fib.add_route(Name("/"), "GW")
        assert fib.lookup(Name("/anything/at/all")) == "GW"

    def test_replace_route(self):
        fib = Fib()
        fib.add_route(Name("/a"), "X")
        fib.add_route(Name("/a"), "Y")
        assert fib.lookup(Name("/a")) == "Y"
        assert len(fib) == 1

    def test_remove_route(self):
        fib = Fib()
        fib.add_route(Name("/a"), "X")
        fib.remove_route(Name("/a"))
        assert Name("/a") not in fib
        with pytest.raises(ParameterError):
            fib.remove_route(Name("/a"))

    def test_routes_view_is_copy(self):
        fib = Fib()
        fib.add_route(Name("/a"), "X")
        view = fib.routes()
        view[Name("/b")] = "Y"  # type: ignore[index]
        assert Name("/b") not in fib


class TestLookupAll:
    def test_ranked_alternatives(self):
        fib = Fib()
        fib.add_route(Name("/a/b"), "custodian")
        fib.add_route(Name("/"), "gateway")
        assert fib.lookup_all(Name("/a/b")) == ("custodian", "gateway")
        assert fib.lookup_all(Name("/a/z")) == ("gateway",)

    def test_deduplicates(self):
        fib = Fib()
        fib.add_route(Name("/a"), "X")
        fib.add_route(Name("/"), "X")
        assert fib.lookup_all(Name("/a/b")) == ("X",)

    def test_empty(self):
        assert Fib().lookup_all(Name("/a")) == ()


class TestBuildFibs:
    @pytest.fixture
    def line(self) -> Topology:
        return Topology.from_edges(
            [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=1.0
        )

    def test_default_routes_point_to_gateway(self, line):
        fibs = build_fibs(line, "D", root_prefix=Name("/repro/content"))
        name = Name("/repro/content/7")
        assert fibs["A"].lookup(name) == "B"
        assert fibs["B"].lookup(name) == "C"
        assert fibs["C"].lookup(name) == "D"
        assert fibs["D"].lookup(name) is None  # gateway crosses to origin

    def test_custodian_overrides(self, line):
        name = Name("/repro/content/42")
        fibs = build_fibs(
            line, "D", root_prefix=Name("/repro/content"),
            custodians={name: "A"},
        )
        # Toward A for the coordinated name...
        assert fibs["C"].lookup(name) == "B"
        assert fibs["B"].lookup(name) == "A"
        # ...but toward the origin for everything else.
        assert fibs["B"].lookup(Name("/repro/content/1")) == "C"
        # The custodian itself keeps its default (origin) route.
        assert fibs["A"].lookup(name) == "B"

    def test_rejects_unknown_gateway(self, line):
        with pytest.raises(TopologyError):
            build_fibs(line, "Z", root_prefix=Name("/repro/content"))

    def test_rejects_foreign_custodian_name(self, line):
        with pytest.raises(ParameterError):
            build_fibs(
                line, "D", root_prefix=Name("/repro/content"),
                custodians={Name("/other/1"): "A"},
            )


class TestPit:
    def test_first_insert_forwards(self):
        pit = Pit()
        assert pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0) == "forward"

    def test_second_insert_aggregates(self):
        pit = Pit()
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        assert pit.insert(Name("/a/1"), "faceB", nonce=2, now=1.0) == "aggregated"
        assert pit.aggregated == 1

    def test_duplicate_nonce_classified(self):
        pit = Pit()
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        assert pit.insert(Name("/a/1"), "faceC", nonce=1, now=1.0) == "duplicate"
        assert pit.aggregated == 0

    def test_out_face_tracking(self):
        pit = Pit()
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        assert pit.tried_faces(Name("/a/1")) == frozenset()
        pit.mark_forwarded(Name("/a/1"), "up1")
        pit.mark_forwarded(Name("/a/1"), "up2")
        assert pit.tried_faces(Name("/a/1")) == frozenset({"up1", "up2"})

    def test_mark_forwarded_requires_entry(self):
        with pytest.raises(ParameterError):
            Pit().mark_forwarded(Name("/a/1"), "up1")

    def test_tried_faces_empty_without_entry(self):
        assert Pit().tried_faces(Name("/a/1")) == frozenset()

    def test_satisfy_returns_all_faces(self):
        pit = Pit()
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        pit.insert(Name("/a/1"), "faceB", nonce=2, now=0.0)
        faces = pit.satisfy(Name("/a/1"), now=1.0)
        assert faces == frozenset({"faceA", "faceB"})
        assert len(pit) == 0

    def test_unsolicited_data(self):
        assert Pit().satisfy(Name("/a/1"), now=0.0) is None

    def test_expiry(self):
        pit = Pit(lifetime=10.0)
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        assert pit.satisfy(Name("/a/1"), now=11.0) is None
        assert pit.expired == 1

    def test_expiry_refreshed_by_aggregation(self):
        pit = Pit(lifetime=10.0)
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        pit.insert(Name("/a/1"), "faceB", nonce=2, now=8.0)  # refresh
        assert pit.satisfy(Name("/a/1"), now=15.0) is not None

    def test_rejects_bad_lifetime(self):
        with pytest.raises(ParameterError):
            Pit(lifetime=0.0)


class _ScanProofDict(dict):
    """A dict that forbids whole-table iteration.

    Guards the lazy-expiry regression: `_purge_expired` must touch only
    heap records that are actually due, never walk `_entries`.
    """

    def _no_scan(self, *args, **kwargs):
        raise AssertionError("PIT purge scanned the whole entry table")

    __iter__ = _no_scan
    keys = _no_scan
    values = _no_scan
    items = _no_scan
    copy = _no_scan


class TestPitScaling:
    def test_purge_does_not_scan_live_table(self):
        # 10k live entries, then a thousand insert/satisfy operations:
        # with the old O(n)-scan-per-call purge this would iterate the
        # full table on every call; the scan-proof dict turns any such
        # iteration into a hard failure.
        pit = Pit(lifetime=1e9)
        for i in range(10_000):
            pit.insert(Name(f"/bulk/{i}"), "faceA", nonce=i, now=0.0)
        pit._entries = _ScanProofDict(pit._entries)
        for i in range(1000):
            name = Name(f"/hot/{i}")
            assert pit.insert(name, "faceA", nonce=100_000 + i, now=1.0) == "forward"
            assert pit.satisfy(name, now=2.0) == frozenset({"faceA"})
        assert len(pit) == 10_000
        assert pit.expired == 0

    def test_refresh_then_expiry_counts_once(self):
        # The refresh leaves a stale heap record behind; expiry must
        # fire once, at the refreshed deadline, not per stale record.
        pit = Pit(lifetime=10.0)
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        pit.insert(Name("/a/1"), "faceB", nonce=2, now=8.0)  # refresh
        pit._purge_expired(now=11.0)  # original deadline: stale, skipped
        assert pit.expired == 0
        assert Name("/a/1") in pit
        pit._purge_expired(now=19.0)  # refreshed deadline: fires
        assert pit.expired == 1
        pit._purge_expired(now=100.0)  # nothing left to double count
        assert pit.expired == 1

    def test_satisfied_entry_leaves_only_stale_records(self):
        pit = Pit(lifetime=10.0)
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        assert pit.satisfy(Name("/a/1"), now=1.0) == frozenset({"faceA"})
        pit._purge_expired(now=50.0)
        assert pit.expired == 0

    def test_reinserted_name_expires_at_new_deadline(self):
        # Expire, reinsert the same name: the stale record for the dead
        # generation must not expire the fresh entry early.
        pit = Pit(lifetime=10.0)
        pit.insert(Name("/a/1"), "faceA", nonce=1, now=0.0)
        pit._purge_expired(now=11.0)
        assert pit.expired == 1
        pit.insert(Name("/a/1"), "faceB", nonce=2, now=12.0)
        pit._purge_expired(now=13.0)
        assert Name("/a/1") in pit
        assert pit.expired == 1
        pit._purge_expired(now=23.0)
        assert pit.expired == 2
