"""Scalar CCNNetwork vs batched engine equivalence (DESIGN.md §16).

The contract: with ``queue=None`` every :class:`CCNMetrics` counter is
bit-identical, and the completed-request latency and hop multisets
match — exactly on dyadic link latencies, to float-sum tolerance on
measured geo latencies (the scalar accumulates latencies on the
absolute timeline, the engine on issue-relative offsets; IEEE addition
orders differ).

Includes the ISSUE's concurrency semantics triplet: aggregated
Interests satisfied by one in-flight Data, duplicate-nonce retry via
the alternate FIB next hop, and expiry-then-reissue.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.ccn import BatchedCCNEngine, CCNNetwork
from repro.core import ProvisioningStrategy
from repro.simulation import StaticCache
from repro.topology import Topology, load_topology

#: Relative tolerance for latency multisets on geo-latency topologies.
GEO_RTOL = 1e-9

COUNTERS = (
    "requests_issued",
    "requests_completed",
    "origin_productions",
    "cs_hits",
    "interest_transmissions",
    "data_transmissions",
    "pit_aggregations",
)


def assert_equivalent(metrics, result, *, exact_latency: bool = False):
    """Counters bit-identical; latency/hop multisets equal."""
    for name in COUNTERS:
        assert getattr(metrics, name) == getattr(result, name), name
    scalar_hops = np.sort(np.asarray(metrics.interest_hops))
    batched_hops = np.sort(result.interest_hops)
    assert np.array_equal(scalar_hops, batched_hops)
    scalar_lat = np.sort(np.asarray(metrics.latencies_ms))
    batched_lat = np.sort(result.latencies_ms)
    assert scalar_lat.shape == batched_lat.shape
    if exact_latency:
        assert np.array_equal(scalar_lat, batched_lat)
    else:
        assert np.allclose(scalar_lat, batched_lat, rtol=GEO_RTOL, atol=0.0)


def run_both_workload(
    topology,
    *,
    count,
    interarrival_ms=1.0,
    strategy=None,
    seed=7,
    catalog=10_000,
    exponent=0.8,
    **kwargs,
):
    """One workload stream through the scalar network and the engine."""
    gateway = topology.nodes[0]
    popularity = ZipfModel(exponent, catalog)
    net = CCNNetwork(topology, origin_gateway=gateway, **kwargs)
    engine = BatchedCCNEngine(topology, origin_gateway=gateway, **kwargs)
    if strategy is not None:
        net.install_strategy(strategy)
        engine.install_strategy(strategy)
    metrics = net.run_workload(
        IRMWorkload(popularity, topology.nodes, seed=seed),
        count,
        interarrival_ms=interarrival_ms,
    )
    result = engine.run_workload(
        IRMWorkload(popularity, topology.nodes, seed=seed),
        count,
        interarrival_ms=interarrival_ms,
    )
    assert net.directive_messages == engine.directive_messages
    return metrics, result


def run_both_schedule(topology, schedule, **kwargs):
    """An explicit (client, rank, time) schedule through both paths."""
    gateway = topology.nodes[0]
    net = CCNNetwork(topology, origin_gateway=gateway, **kwargs)
    engine = BatchedCCNEngine(topology, origin_gateway=gateway, **kwargs)
    for client, rank, time_ms in schedule:
        net.issue_at(client, rank, time_ms)
    metrics = net.run()
    result = engine.run_schedule(
        [s[0] for s in schedule],
        [s[1] for s in schedule],
        [s[2] for s in schedule],
    )
    return metrics, result


@pytest.fixture(scope="module")
def us_a():
    return load_topology("us-a")


@pytest.fixture
def line() -> Topology:
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
    )


class TestProvisionedUsA:
    @pytest.mark.parametrize("level", [0.0, 0.5, 1.0])
    def test_levels(self, us_a, level):
        strategy = ProvisioningStrategy(
            capacity=100, n_routers=us_a.n_routers, level=level
        )
        metrics, result = run_both_workload(
            us_a, count=4000, strategy=strategy
        )
        assert_equivalent(metrics, result)

    def test_high_contention(self, us_a):
        strategy = ProvisioningStrategy(
            capacity=100, n_routers=us_a.n_routers, level=0.5
        )
        metrics, result = run_both_workload(
            us_a, count=4000, interarrival_ms=0.1, strategy=strategy
        )
        assert metrics.pit_aggregations > 0
        assert_equivalent(metrics, result)

    def test_client_access_latency(self, us_a):
        strategy = ProvisioningStrategy(
            capacity=100, n_routers=us_a.n_routers, level=0.5
        )
        metrics, result = run_both_workload(
            us_a,
            count=3000,
            interarrival_ms=0.25,
            strategy=strategy,
            client_latency_ms=1.5,
        )
        assert_equivalent(metrics, result)

    def test_empty_stores_hot_catalog(self, us_a):
        # No stores at all: everything aggregates or crosses to origin.
        metrics, result = run_both_workload(
            us_a, count=3000, catalog=50, exponent=1.2
        )
        assert metrics.pit_aggregations > 0
        assert_equivalent(metrics, result)


class TestLineTopology:
    def test_dyadic_latencies_exact(self, line):
        strategy = ProvisioningStrategy(
            capacity=20, n_routers=line.n_routers, level=0.5
        )
        metrics, result = run_both_workload(
            line,
            count=3000,
            interarrival_ms=0.125,
            strategy=strategy,
            catalog=200,
        )
        assert_equivalent(metrics, result, exact_latency=True)

    def test_tiny_pit_lifetime(self, line):
        # PIT lifetime below the origin round trip: entries expire with
        # Data still in flight, requests fail and are completed by later
        # same-name deliveries (the scalar's pending-issue sweep).
        metrics, result = run_both_workload(
            line,
            count=2000,
            interarrival_ms=0.125,
            catalog=100,
            pit_lifetime_ms=4.0,
            origin_latency_ms=8.0,
        )
        assert metrics.requests_completed < metrics.requests_issued
        assert_equivalent(metrics, result, exact_latency=True)

    def test_tiny_pit_with_client_latency(self, line):
        metrics, result = run_both_workload(
            line,
            count=2000,
            interarrival_ms=0.125,
            catalog=100,
            pit_lifetime_ms=6.0,
            origin_latency_ms=8.0,
            client_latency_ms=1.0,
        )
        assert_equivalent(metrics, result, exact_latency=True)


class TestConcurrencySemantics:
    """The ISSUE's PIT aggregation triplet, pinned on crafted schedules."""

    def test_aggregated_interests_one_data(self, line):
        # Three clients ask for one name while the first Interest is in
        # flight: one origin production, one upstream Data satisfying
        # every aggregated face.
        schedule = [("A", 1, 0.0), ("B", 1, 1.0), ("A", 2, 2.0), ("C", 1, 3.0)]
        metrics, result = run_both_schedule(
            line, schedule, origin_latency_ms=8.0
        )
        # B joins A's pending entry at the gateway; C joins B's at B.
        assert metrics.pit_aggregations == 2
        assert metrics.origin_productions == 2  # ranks 1 and 2, once each
        assert metrics.requests_completed == 4
        assert_equivalent(metrics, result, exact_latency=True)

    def test_duplicate_nonce_retry_alternate_route(self, line):
        # Custodian route for rank 1 deliberately points at router A,
        # which does not hold the content: C's Interest dead-ends at A,
        # bounces back out its arrival face, loops at B (duplicate
        # nonce) and retries B's alternate FIB hop toward the origin.
        name = CCNNetwork(
            Topology.from_edges([("X", "Y")], link_latency_ms=1.0),
            origin_gateway="X",
        ).rank_to_name(1)
        custodians = {name: "A"}
        gateway = "D"
        net = CCNNetwork(
            Topology.from_edges(
                [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
            ),
            origin_gateway=gateway,
            custodians=custodians,
        )
        engine = BatchedCCNEngine(
            Topology.from_edges(
                [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
            ),
            origin_gateway=gateway,
            custodians=custodians,
        )
        net.issue_at("C", 1, 0.0)
        metrics = net.run()
        result = engine.run_schedule(["C"], [1], [0.0])
        assert metrics.requests_completed == 1
        # The walk visits more links than the direct C->D origin route.
        assert metrics.interest_transmissions > 2
        assert_equivalent(metrics, result, exact_latency=True)

    def test_expiry_then_reissue(self, line):
        # Same client, same name, second Interest issued after the PIT
        # entry expired: a fresh entry forwards again instead of
        # aggregating.
        schedule = [("B", 1, 0.0), ("B", 1, 30.0)]
        metrics, result = run_both_schedule(
            line,
            schedule,
            origin_latency_ms=8.0,
            pit_lifetime_ms=5.0,
        )
        assert metrics.pit_aggregations == 0
        assert metrics.origin_productions == 2
        assert_equivalent(metrics, result, exact_latency=True)

    def test_reissue_within_lifetime_aggregates(self, line):
        # Control for the expiry case: inside the lifetime the second
        # Interest is absorbed (same client and name dedupe via PIT,
        # not via nonce — fresh nonce per issue).
        schedule = [("B", 1, 0.0), ("B", 1, 3.0)]
        metrics, result = run_both_schedule(
            line,
            schedule,
            origin_latency_ms=8.0,
            pit_lifetime_ms=60_000.0,
        )
        assert metrics.pit_aggregations == 1
        assert metrics.origin_productions == 1
        assert_equivalent(metrics, result, exact_latency=True)

    def test_static_store_serves_aggregation_cluster(self, line):
        # Interacting requests served by a static store on the default
        # route (C and D both reach gateway A through B).
        stores = {"B": StaticCache(1, frozenset({1}))}
        schedule = [("C", 1, 0.0), ("D", 1, 0.5), ("C", 1, 1.0)]
        metrics, result = run_both_schedule(line, schedule, stores=stores)
        assert metrics.cs_hits >= 1
        assert metrics.origin_productions == 0
        assert_equivalent(metrics, result, exact_latency=True)
