"""Unit tests for repro.ccn.caching — en-route strategies."""

from __future__ import annotations

import pytest

from repro.ccn import (
    CacheEverywhere,
    EdgeCache,
    LeaveCopyDown,
    NoCache,
    ProbabilisticCache,
    make_enroute_strategy,
)
from repro.errors import ParameterError


class TestStrategies:
    def test_lce_always(self):
        strategy = CacheEverywhere()
        assert strategy.should_cache(hops_from_producer=1, at_consumer_edge=False)
        assert strategy.should_cache(hops_from_producer=5, at_consumer_edge=True)

    def test_lcd_only_first_hop(self):
        strategy = LeaveCopyDown()
        assert strategy.should_cache(hops_from_producer=1, at_consumer_edge=False)
        assert not strategy.should_cache(hops_from_producer=2, at_consumer_edge=True)

    def test_edge_only_consumer_edge(self):
        strategy = EdgeCache()
        assert strategy.should_cache(hops_from_producer=3, at_consumer_edge=True)
        assert not strategy.should_cache(hops_from_producer=1, at_consumer_edge=False)

    def test_none_never(self):
        strategy = NoCache()
        assert not strategy.should_cache(hops_from_producer=1, at_consumer_edge=True)

    def test_probabilistic_extremes(self):
        always = ProbabilisticCache(1.0, seed=0)
        never = ProbabilisticCache(0.0, seed=0)
        assert all(
            always.should_cache(hops_from_producer=1, at_consumer_edge=False)
            for _ in range(20)
        )
        assert not any(
            never.should_cache(hops_from_producer=1, at_consumer_edge=False)
            for _ in range(20)
        )

    def test_probabilistic_rate(self):
        strategy = ProbabilisticCache(0.3, seed=1)
        hits = sum(
            strategy.should_cache(hops_from_producer=1, at_consumer_edge=False)
            for _ in range(5000)
        )
        assert hits / 5000 == pytest.approx(0.3, abs=0.03)

    def test_probabilistic_validates(self):
        with pytest.raises(ParameterError):
            ProbabilisticCache(1.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lce", CacheEverywhere),
            ("lcd", LeaveCopyDown),
            ("edge", EdgeCache),
            ("none", NoCache),
            ("prob", ProbabilisticCache),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(make_enroute_strategy(name), cls)

    def test_prob_parameters(self):
        strategy = make_enroute_strategy("prob", probability=0.9, seed=3)
        assert strategy.probability == 0.9

    def test_unknown(self):
        with pytest.raises(ParameterError):
            make_enroute_strategy("mdc")
