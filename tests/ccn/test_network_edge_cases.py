"""Edge-case tests for the CCN forwarding engine."""

from __future__ import annotations

import pytest

from repro.catalog import TraceWorkload
from repro.catalog.workload import Request
from repro.ccn import CCNNetwork, NoCache
from repro.ccn.packets import Data, Interest
from repro.ccn.network import CLIENT_FACE, ORIGIN_FACE
from repro.errors import ParameterError
from repro.simulation import StaticCache
from repro.topology import Topology, ring_topology


@pytest.fixture
def line() -> Topology:
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
    )


class TestHopLimit:
    def test_exhausted_hop_limit_drops_interest(self, line):
        net = CCNNetwork(line, origin_gateway="D", enroute=NoCache())
        name = net.rank_to_name(1)
        net._pending_issues[("A", name)] = [0.0]
        net.metrics.requests_issued += 1
        # Inject an Interest with hop_limit 0 directly: it must be dropped
        # (no forwarding, no origin production, no completion).
        net._schedule(0.0, "interest", "A", Interest(name=name, hop_limit=0), CLIENT_FACE)
        metrics = net.run()
        assert metrics.requests_completed == 0
        assert metrics.origin_productions == 0


class TestMaxTime:
    def test_run_stops_at_deadline(self, line):
        net = CCNNetwork(
            line, origin_gateway="D", enroute=NoCache(), origin_latency_ms=500.0
        )
        net.issue("A", 5)
        metrics = net.run(max_time_ms=1.0)
        # The Interest needs >1000 ms round trip; nothing completes.
        assert metrics.requests_completed == 0
        assert metrics.requests_issued == 1


class TestUnsolicitedData:
    def test_dropped_without_pit_entry(self, line):
        net = CCNNetwork(line, origin_gateway="D", enroute=NoCache())
        name = net.rank_to_name(3)
        net._schedule(
            0.0, "data", "B", Data(name=name, producer="C", hops_from_producer=1), "C"
        )
        metrics = net.run()
        assert metrics.requests_completed == 0
        assert metrics.data_transmissions == 0


class TestClientLatency:
    def test_access_leg_added_twice(self, line):
        net = CCNNetwork(
            line,
            origin_gateway="A",
            stores={"A": StaticCache(1, frozenset({1}))},
            enroute=NoCache(),
            client_latency_ms=7.0,
        )
        net.issue("A", 1)
        metrics = net.run()
        # 7 ms in + 0 (local hit) + 7 ms out.
        assert metrics.latencies_ms == [pytest.approx(14.0)]


class TestPitExpiryPath:
    def test_expired_entry_triggers_refetch(self, line):
        net = CCNNetwork(
            line,
            origin_gateway="D",
            enroute=NoCache(),
            origin_latency_ms=5.0,
            pit_lifetime_ms=0.5,  # shorter than one link traversal
        )
        net.issue("A", 2)
        metrics = net.run()
        # The PIT entries expire before the Data returns, so the Data is
        # dropped along the way and the request never completes — the
        # timeout semantics the Pit models.
        assert metrics.requests_completed == 0
        assert metrics.origin_productions == 1


class TestDynamicCustodianMiss:
    def test_custodian_without_content_falls_through_to_origin(self, line):
        """A custodian route toward a router that lost the content must
        still resolve via the default origin route."""
        from repro.ccn import build_fibs

        net = CCNNetwork(line, origin_gateway="D", enroute=NoCache())
        name = net.rank_to_name(9)
        fibs = build_fibs(
            line, "D", root_prefix=net.root_prefix, custodians={name: "A"}
        )
        for node in line.nodes:
            net._nodes[node].fib = fibs[node]
        # A has no store: the Interest routes C -> B -> A, misses, and A's
        # default route sends it back up toward the origin gateway D.
        net.issue("C", 9)
        metrics = net.run()
        assert metrics.requests_completed == 1
        assert metrics.origin_productions == 1


class TestRunWorkloadValidation:
    def test_rejects_negative_interarrival(self, line):
        net = CCNNetwork(line, origin_gateway="D")
        workload = TraceWorkload([Request("A", 1)])
        with pytest.raises(ParameterError):
            net.run_workload(workload, 1, interarrival_ms=-1.0)


class TestFaceConstants:
    def test_pseudo_faces_distinct_from_routers(self):
        topology = ring_topology(4)
        assert CLIENT_FACE not in topology.nodes
        assert ORIGIN_FACE not in topology.nodes
