"""Unit tests for the Che/TTL characteristic-time fixed points."""

import math

import numpy as np
import pytest

from repro.approx import (
    CharacteristicTime,
    approx_memo_stats,
    characteristic_time,
    clear_approx_caches,
    hit_probabilities,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from repro.core.zipf import clear_zipf_caches, zipf_tables
from repro.errors import ParameterError


def zipf_rates(s: float = 0.8, n: int = 2000) -> np.ndarray:
    pmf, _ = zipf_tables(s, n)
    return pmf


class TestConvergence:
    @pytest.mark.parametrize("policy", ["lru", "random", "fifo"])
    @pytest.mark.parametrize("capacity", [1.0, 10.0, 100.0, 1999.0])
    def test_occupancy_is_conserved_at_the_root(self, policy, capacity):
        rates = zipf_rates()
        solved = solve_fixed_point(rates, capacity, policy=policy)
        occupancy = float(
            hit_probabilities(rates, solved.value, policy=policy).sum()
        )
        assert occupancy == pytest.approx(capacity, abs=1e-6)
        assert solved.residual <= 1e-9

    def test_returns_characteristic_time_telemetry(self):
        solved = solve_fixed_point(zipf_rates(), 50.0)
        assert isinstance(solved, CharacteristicTime)
        assert solved.policy == "lru"
        assert solved.capacity == 50.0
        assert solved.iterations >= 1
        assert math.isfinite(solved.value) and solved.value > 0.0

    def test_scale_invariance_in_the_rates(self):
        rates = zipf_rates()
        t1 = solve_fixed_point(rates, 64.0).value
        t2 = solve_fixed_point(rates * 1e6, 64.0).value
        assert t2 == pytest.approx(t1 / 1e6, rel=1e-6)


class TestMonotonicity:
    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_characteristic_time_grows_with_capacity(self, policy):
        rates = zipf_rates()
        times = [
            solve_fixed_point(rates, c, policy=policy).value
            for c in (5.0, 20.0, 80.0, 320.0, 1280.0)
        ]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_hit_probabilities_grow_with_capacity(self):
        rates = zipf_rates()
        h_small = hit_probabilities(rates, solve_fixed_point(rates, 10.0).value)
        h_large = hit_probabilities(rates, solve_fixed_point(rates, 100.0).value)
        assert np.all(h_large >= h_small)

    def test_lru_beats_random_on_the_head(self):
        # Che: LRU concentrates occupancy on popular contents harder than
        # Random, so the top-rank hit probability is strictly larger at
        # equal occupancy.
        rates = zipf_rates()
        h_lru = hit_probabilities(
            rates, solve_fixed_point(rates, 50.0, policy="lru").value, policy="lru"
        )
        h_rnd = hit_probabilities(
            rates,
            solve_fixed_point(rates, 50.0, policy="random").value,
            policy="random",
        )
        assert h_lru[0] > h_rnd[0]

    def test_fifo_aliases_random(self):
        rates = zipf_rates()
        t_fifo = solve_fixed_point(rates, 50.0, policy="fifo").value
        t_rnd = solve_fixed_point(rates, 50.0, policy="random").value
        assert t_fifo == pytest.approx(t_rnd, rel=1e-12)


class TestEdgeCases:
    def test_zero_capacity_gives_zero_time(self):
        solved = solve_fixed_point(zipf_rates(), 0.0)
        assert solved.value == 0.0
        assert solved.iterations == 0

    def test_full_support_gives_infinite_time(self):
        rates = zipf_rates(n=100)
        solved = solve_fixed_point(rates, 100.0)
        assert math.isinf(solved.value)
        h = hit_probabilities(rates, solved.value)
        assert np.all(h == 1.0)

    def test_zero_rate_contents_never_hit(self):
        rates = np.array([0.5, 0.0, 0.5])
        solved = solve_fixed_point(rates, 2.0)
        assert math.isinf(solved.value)  # support is 2, capacity 2
        assert list(hit_probabilities(rates, solved.value)) == [1.0, 0.0, 1.0]

    def test_perfect_lfu_is_rejected_by_the_timer_paths(self):
        with pytest.raises(ParameterError, match="perfect-lfu"):
            solve_fixed_point(zipf_rates(), 10.0, policy="perfect-lfu")
        with pytest.raises(ParameterError, match="perfect-lfu"):
            hit_probabilities(zipf_rates(), 1.0, policy="perfect-lfu")

    def test_in_cache_lfu_is_rejected(self):
        with pytest.raises(ParameterError, match="lfu"):
            solve_fixed_point(zipf_rates(), 10.0, policy="lfu")

    def test_negative_rates_are_rejected(self):
        with pytest.raises(ParameterError, match="non-negative"):
            solve_fixed_point(np.array([0.5, -0.1]), 1.0)


class TestBatchEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_batch_rows_match_scalar_solves(self, policy):
        rates_rows = np.stack(
            [zipf_rates(0.6, 500), zipf_rates(0.8, 500), zipf_rates(1.2, 500)]
        )
        capacities = np.array([10.0, 40.0, 160.0])
        t_batch, iterations, residuals = solve_fixed_point_batch(
            rates_rows, capacities, policy=policy
        )
        assert iterations >= 1
        assert np.all(residuals <= 1e-9)
        for row in range(3):
            scalar = solve_fixed_point(
                rates_rows[row], capacities[row], policy=policy
            )
            assert t_batch[row] == pytest.approx(scalar.value, rel=1e-7)

    def test_batch_degenerate_rows(self):
        rates_rows = np.stack([zipf_rates(0.8, 50)] * 3)
        t, _, _ = solve_fixed_point_batch(
            rates_rows, np.array([0.0, 10.0, 50.0])
        )
        assert t[0] == 0.0
        assert 0.0 < t[1] < math.inf
        assert math.isinf(t[2])

    def test_batch_weighted_matches_expanded(self):
        # Weights are multiplicities: [rate r, weight 3] == three unit
        # entries of rate r.
        rates = np.array([[0.6, 0.3, 0.1]])
        weights = np.array([[1.0, 3.0, 5.0]])
        expanded = np.array([[0.6, 0.3, 0.3, 0.3, 0.1, 0.1, 0.1, 0.1, 0.1]])
        t_w, _, _ = solve_fixed_point_batch(
            rates, np.array([4.0]), weights=weights
        )
        t_e, _, _ = solve_fixed_point_batch(expanded, np.array([4.0]))
        assert t_w[0] == pytest.approx(t_e[0], rel=1e-9)


class TestSingularityPath:
    def test_characteristic_time_is_continuous_through_s_equal_one(self):
        # The discrete zipf tables carry s = 1 exactly; the solved T_C
        # must sit between its close neighbours, no special-casing.
        times = {
            s: characteristic_time(s, 2000, 50.0) for s in (0.999, 1.0, 1.001)
        }
        lo, hi = sorted((times[0.999], times[1.001]))
        assert lo <= times[1.0] <= hi
        assert times[1.0] == pytest.approx(times[0.999], rel=1e-2)
        assert times[1.0] == pytest.approx(times[1.001], rel=1e-2)

    def test_exponent_domain_is_validated(self):
        with pytest.raises(ParameterError):
            characteristic_time(2.5, 1000, 10.0)


class TestMemoization:
    def test_memo_hits_and_clear(self):
        clear_zipf_caches()
        baseline = approx_memo_stats()
        assert baseline["entries"] == 0
        t1 = characteristic_time(0.8, 1500, 30.0)
        t2 = characteristic_time(0.8, 1500, 30.0)
        assert t1 == t2
        stats = approx_memo_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        clear_approx_caches()
        assert approx_memo_stats()["entries"] == 0

    def test_zipf_cache_clear_cascades_to_the_memo(self):
        characteristic_time(0.7, 1000, 20.0)
        assert approx_memo_stats()["entries"] >= 1
        clear_zipf_caches()
        assert approx_memo_stats()["entries"] == 0
