"""Tolerance-band equivalence: approximation layer vs the dynamic kernel.

The acceptance bands are deliberately wide multiples of the measured
errors (DESIGN.md §15 tabulates them): on Abilene with c=100, N=5000,
s=0.8 and 40k warmed requests the absolute aggregate-hit-rate error
stays below 0.01 for both LRU and Random across coordination levels
{0, 0.5, 1}.  The bands below (0.03 LRU / 0.05 Random) budget for the
simulated estimate's own O(1/sqrt(requests)) sampling noise at the
reduced request counts used here, while still catching any structural
regression of the approximation (a broken tier split shows up as
errors of 0.1+).
"""

import pytest

from repro.analysis import CrossValidation, cross_validate
from repro.approx import level_curve, solve_en_route
from repro.errors import ParameterError
from repro.topology import generate_hierarchy, load_topology

REQUESTS = 30_000
WARMUP = 30_000
CAPACITY = 100
CATALOG = 5_000
EXPONENT = 0.8
SEED = 7

#: Absolute aggregate-hit-rate tolerance per policy.  The Che LRU form
#: is tighter than the Gallo Random/FIFO form at these cache sizes.
BANDS = {"lru": 0.03, "random": 0.05}


def validate(policy: str, level: float, **overrides) -> CrossValidation:
    kwargs = dict(
        capacity=CAPACITY,
        coordination_level=level,
        policy=policy,
        exponent=EXPONENT,
        catalog_size=CATALOG,
        requests=REQUESTS,
        warmup=WARMUP,
        seed=SEED,
    )
    kwargs.update(overrides)
    topology = kwargs.pop("topology", None)
    if topology is None:
        topology = load_topology("abilene")
    return cross_validate(topology, **kwargs)


class TestToleranceBands:
    @pytest.mark.parametrize("policy", ["lru", "random"])
    @pytest.mark.parametrize("level", [0.0, 0.5, 1.0])
    def test_abilene_hit_rate_within_band(self, policy, level):
        result = validate(policy, level)
        band = BANDS[policy]
        assert result.within(band, latency_band=0.05), (
            f"policy={policy} level={level}: hit-rate error "
            f"{result.hit_rate_error:.4f} (band {band}), latency rel error "
            f"{result.latency_rel_error:.4f}"
        )

    def test_per_tier_fractions_track_the_simulator(self):
        result = validate("lru", 0.5)
        assert result.local_error <= 0.03
        assert result.peer_error <= 0.03
        assert result.origin_error == result.hit_rate_error

    def test_hierarchy_generator_instance(self):
        # A synthetic multi-tier ISP topology exercises non-uniform
        # distances and a generated gateway placement.
        topology = generate_hierarchy(3, routers=24, regions=3, tiers=2)
        result = validate(
            "lru",
            0.5,
            topology=topology,
            requests=20_000,
            warmup=20_000,
        )
        assert result.within(0.05, latency_band=0.10), (
            f"hierarchy: hit-rate error {result.hit_rate_error:.4f}, "
            f"latency rel error {result.latency_rel_error:.4f}"
        )

    def test_solution_telemetry_is_populated(self):
        result = validate("lru", 0.5)
        assert result.solution.mode == "custodian"
        assert result.solution.iterations >= 1
        assert result.solution.residual <= 1e-6
        assert len(result.solution.characteristic_times) >= 1


class TestValidationSurface:
    def test_band_must_be_non_negative(self):
        result = validate("lru", 0.0, requests=1_000, warmup=0)
        with pytest.raises(ParameterError, match="band"):
            result.within(-0.1)

    def test_request_counts_are_validated(self):
        topology = load_topology("abilene")
        with pytest.raises(ParameterError, match="request count"):
            cross_validate(topology, capacity=10, requests=0)
        with pytest.raises(ParameterError, match="warmup"):
            cross_validate(topology, capacity=10, warmup=-1)


class TestLevelCurve:
    def test_curve_is_consistent_with_point_solves(self):
        topology = load_topology("abilene")
        curve = level_curve(
            topology,
            (0.0, 0.5, 1.0),
            capacity=CAPACITY,
            catalog_size=CATALOG,
            exponent=EXPONENT,
        )
        assert curve.levels == (0.0, 0.5, 1.0)
        latencies = curve.latencies_ms()
        origins = curve.origin_loads()
        assert len(latencies) == len(origins) == 3
        # Coordination removes duplicate storage: the fully coordinated
        # fleet must beat the uncoordinated one on origin load.
        assert origins[2] < origins[0]

    def test_en_route_solver_produces_valid_fractions(self):
        topology = load_topology("abilene")
        solution = solve_en_route(
            topology, capacity=CAPACITY, catalog_size=CATALOG
        )
        local, peer, origin = solution.metrics.tier_fractions()
        assert local + peer + origin == pytest.approx(1.0, abs=1e-6)
        assert solution.mode == "en-route"
