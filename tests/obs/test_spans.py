"""Unit tests for span tracking (nesting, aggregates, worker absorb)."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import SpanTracker


class TestSpanLifecycle:
    def test_duration_measured_on_close(self):
        tracker = SpanTracker()
        with tracker.span("work") as span:
            assert span.duration_s == 0.0
        assert span.duration_s > 0.0

    def test_nesting_depths(self):
        tracker = SpanTracker()
        with tracker.span("outer") as outer:
            assert outer.depth == 0
            with tracker.span("inner") as inner:
                assert inner.depth == 1
                assert tracker.open_depth == 2
        assert tracker.open_depth == 0

    def test_out_of_order_close_rejected(self):
        tracker = SpanTracker()
        outer = tracker.span("outer")
        tracker.span("inner")
        with pytest.raises(ObservabilityError):
            tracker._close(outer)

    def test_invalid_name_rejected(self):
        with pytest.raises(ObservabilityError):
            SpanTracker().span("")

    def test_span_closes_on_exception(self):
        tracker = SpanTracker()
        with pytest.raises(RuntimeError):
            with tracker.span("work"):
                raise RuntimeError("boom")
        assert tracker.open_depth == 0
        assert tracker.aggregate()["work"]["count"] == 1


class TestAggregates:
    def test_per_name_count_and_total(self):
        tracker = SpanTracker()
        for _ in range(3):
            with tracker.span("point"):
                pass
        aggregate = tracker.aggregate()
        assert aggregate["point"]["count"] == 3
        assert aggregate["point"]["total_s"] > 0.0

    def test_phase_totals_are_depth_zero_only(self):
        tracker = SpanTracker()
        with tracker.span("phase"):
            with tracker.span("detail"):
                pass
        assert set(tracker.phase_totals()) == {"phase"}
        assert "detail" in tracker.aggregate()

    def test_absorb_folds_worker_aggregates(self):
        tracker = SpanTracker()
        with tracker.span("point"):
            pass
        tracker.absorb("point", 5, 1.25)
        aggregate = tracker.aggregate()["point"]
        assert aggregate["count"] == 6
        assert aggregate["total_s"] > 1.25

    def test_absorb_rejects_negative(self):
        tracker = SpanTracker()
        with pytest.raises(ObservabilityError):
            tracker.absorb("point", -1, 0.0)


class TestEmission:
    def test_span_events_emitted_at_close_in_order(self):
        events = []
        tracker = SpanTracker(emit=events.append)
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
        assert [e["name"] for e in events] == ["inner", "outer"]
        assert events[0] == {
            "type": "span",
            "name": "inner",
            "start_s": events[0]["start_s"],
            "duration_s": events[0]["duration_s"],
            "depth": 1,
        }

    def test_absorb_emits_span_merge(self):
        events = []
        tracker = SpanTracker(emit=events.append)
        tracker.absorb("point", 2, 0.5)
        assert events == [
            {"type": "span_merge", "name": "point", "count": 2, "total_s": 0.5}
        ]
