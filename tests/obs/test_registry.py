"""Unit tests for the metrics registry (counters, gauges, histograms)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests")
        assert counter.value == 0.0
        counter.add()
        counter.add(41)
        assert counter.value == 42.0

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("a").add(-1)

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("")


class TestGauge:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("rps")
        gauge.set(10.0)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_bucketing_with_inclusive_upper_edges(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 2.0, 10.0, 99.0, 1_000.0):
            histogram.observe(value)
        # <=1: {0.5, 1.0}; <=10: {2, 10}; <=100: {99}; overflow: {1000}
        assert histogram.bucket_counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.mean == pytest.approx(1112.5 / 6)

    def test_default_buckets(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").bounds == DEFAULT_BUCKETS

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=())

    def test_reregistration_with_other_bounds_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h", bounds=(1.0, 3.0))
        # Omitting bounds always returns the existing instrument.
        assert registry.histogram("h").bounds == (1.0, 2.0)


class TestSnapshotAndMerge:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("hits").add(3)
        registry.gauge("rps").set(100.0)
        registry.histogram("sizes", bounds=(10.0, 100.0)).observe(7)
        return registry

    def test_snapshot_is_json_stable(self):
        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"] == {"hits": 3.0}
        assert snapshot["gauges"] == {"rps": 100.0}
        assert snapshot["histograms"]["sizes"]["bucket_counts"] == [1, 0, 0]

    def test_merge_adds_counters_and_histograms(self):
        parent = self._populated()
        worker = self._populated()
        worker.gauge("rps").set(50.0)
        parent.merge(worker.snapshot())
        assert parent.counter("hits").value == 6.0
        assert parent.gauge("rps").value == 50.0  # gauge: merged value wins
        histogram = parent.histogram("sizes")
        assert histogram.count == 2
        assert histogram.bucket_counts == [2, 0, 0]

    def test_merge_into_empty_registry_creates_metrics(self):
        parent = MetricsRegistry()
        parent.merge(self._populated().snapshot())
        assert parent.counter("hits").value == 3.0
        assert parent.histogram("sizes").bounds == (10.0, 100.0)

    def test_merge_bucket_mismatch_rejected(self):
        parent = MetricsRegistry()
        parent.histogram("sizes", bounds=(10.0, 100.0))
        bad = {
            "histograms": {
                "sizes": {
                    "bounds": [10.0, 100.0],
                    "bucket_counts": [1],
                    "count": 1,
                    "total": 5.0,
                }
            }
        }
        with pytest.raises(ObservabilityError):
            parent.merge(bad)

    def test_merge_order_determinism(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        parent = MetricsRegistry()
        parent.merge(a.snapshot())
        parent.merge(b.snapshot())
        assert parent.gauge("g").value == 2.0
