"""Overhead guard: permanent instrumentation must stay within noise.

The whole design bet of ``repro.obs`` is that the simulators can stay
instrumented forever because the ambient null session makes every
record a shared no-op.  This guard runs the batched steady-state
throughput path (the same configuration as ``benchmarks/run_bench.py``)
with and without an active no-op capture session and fails if the
session costs more than the issue's 2% budget.
"""

from __future__ import annotations

import time

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import ProvisioningStrategy
from repro.obs import session
from repro.simulation import SteadyStateSimulator
from repro.topology import load_topology

REQUESTS = 200_000
REPS = 3
BUDGET = 1.02


def _run_once() -> float:
    topology = load_topology("us-a")
    strategy = ProvisioningStrategy(
        capacity=100, n_routers=topology.n_routers, level=0.5
    )
    simulator = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )
    workload = IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=0)
    start = time.perf_counter()
    metrics = simulator.run(workload, REQUESTS, batched=True)
    elapsed = time.perf_counter() - start
    assert metrics.requests == REQUESTS
    return elapsed


def _measure() -> tuple[float, float]:
    """Min-of-REPS timings, interleaved to damp thermal/cache drift."""
    bare: list[float] = []
    observed: list[float] = []
    _run_once()  # warm the Zipf memo + kernel caches for both arms
    for _ in range(REPS):
        bare.append(_run_once())
        with session():  # NullSink capture session
            observed.append(_run_once())
    return min(bare), min(observed)


def test_noop_session_overhead_under_two_percent():
    bare, observed = _measure()
    ratio = observed / bare
    if ratio >= BUDGET:  # one retry: absorb a scheduler hiccup, not a trend
        bare, observed = _measure()
        ratio = observed / bare
    assert ratio < BUDGET, (
        f"active no-op obs session cost {100 * (ratio - 1):.2f}% on the "
        f"batched steady-state path (bare {bare:.4f}s, observed {observed:.4f}s)"
    )
