"""Unit tests for the event sinks (null, JSONL, text summary)."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import JsonlSink, NullSink, TextSummarySink


class TestNullSink:
    def test_drops_everything(self):
        sink = NullSink()
        sink.emit({"type": "span", "name": "x"})
        sink.close()


class TestJsonlSink:
    def test_writes_one_compact_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit({"type": "counter", "name": "hits", "value": 3})
        sink.emit({"type": "gauge", "name": "rps", "value": 1.5})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"type": "counter", "name": "hits", "value": 3}
        assert sink.events_written == 2

    def test_gzip_path_compresses_transparently(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        sink = JsonlSink(path)
        sink.emit({"type": "counter", "name": "hits", "value": 1})
        sink.close()
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        with gzip.open(path, "rt") as handle:
            assert json.loads(handle.readline())["name"] == "hits"

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ObservabilityError):
            sink.emit({"type": "span"})

    def test_unopenable_path_raises_obs_error(self, tmp_path):
        with pytest.raises(ObservabilityError):
            JsonlSink(tmp_path / "missing-dir" / "events.jsonl")

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        sink.close()


class TestTextSummarySink:
    def test_writes_rendered_summary_on_close(self, tmp_path):
        path = tmp_path / "summary.txt"
        sink = TextSummarySink(path)
        sink.emit({"type": "span", "name": "phase", "start_s": 0.0, "duration_s": 1.5, "depth": 0})
        sink.emit({"type": "counter", "name": "hits", "value": 7})
        sink.close()
        text = path.read_text()
        assert "phases (top-level spans, wall time):" in text
        assert "phase" in text
        assert "hits" in text
