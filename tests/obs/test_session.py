"""Session semantics: ambient install, providers, worker-snapshot merge."""

from __future__ import annotations

import pytest

from repro.analysis.defaults import BASE_SCENARIO
from repro.analysis.sweep import sweep
from repro.core import clear_zipf_caches
from repro.errors import ObservabilityError
from repro.obs import (
    NULL_SESSION,
    ObsSession,
    get_session,
    register_provider,
    registered_providers,
    session,
)


class TestAmbientSession:
    def test_default_is_the_null_session(self):
        assert get_session() is NULL_SESSION
        assert not NULL_SESSION.enabled

    def test_null_session_operations_are_shared_noops(self):
        null = get_session()
        assert null.counter("a") is null.counter("b")
        null.counter("a").add(5)
        assert null.counter("a").value == 0.0
        with null.span("x") as span:
            assert span.duration_s == 0.0
        assert null.snapshot()["counters"] == {}

    def test_session_installs_and_restores(self):
        with session() as active:
            assert get_session() is active
            assert active.enabled
            with session() as inner:  # sessions nest; inner shadows outer
                assert get_session() is inner
            assert get_session() is active
        assert get_session() is NULL_SESSION

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with session():
                raise RuntimeError("boom")
        assert get_session() is NULL_SESSION

    def test_finalize_is_idempotent_and_closes_sink(self):
        closed = []

        class Probe:
            def emit(self, event):
                pass

            def close(self):
                closed.append(True)

        active = ObsSession(Probe())
        active.finalize()
        active.finalize()
        assert closed == [True]


class TestProviders:
    def test_zipf_provider_registered_on_import(self):
        assert "zipf" in registered_providers()

    def test_provider_validation(self):
        with pytest.raises(ObservabilityError):
            register_provider("", lambda: {})
        with pytest.raises(ObservabilityError):
            register_provider("x", None)  # type: ignore[arg-type]

    def test_session_records_provider_delta_only(self):
        state = {"calls": 0}
        register_provider("test.delta", lambda: {"test.delta.n": state["calls"]})
        try:
            state["calls"] = 10  # activity before the session: not counted
            with session() as active:
                state["calls"] = 17
            assert active.registry.counter("test.delta.n").value == 7.0
        finally:
            import sys

            sys.modules["repro.obs.session"]._PROVIDERS.pop("test.delta", None)

    def test_zipf_cache_counters_flow_into_session(self):
        from repro.core import ZipfPopularity

        clear_zipf_caches()
        with session() as active:
            ZipfPopularity(0.8, 500).cdf(500)
            ZipfPopularity(0.8, 500).cdf(500)  # memo hit
        counters = active.snapshot()["counters"]
        assert counters.get("zipf.cache.misses", 0) >= 1
        assert counters.get("zipf.cache.hits", 0) >= 1


class TestSnapshotMerge:
    def test_merge_snapshot_folds_spans_and_metrics(self):
        worker = ObsSession()
        with worker.span("sweep.point"):
            pass
        worker.counter("solved").add(1)
        parent = ObsSession()
        parent.merge_snapshot(worker.snapshot())
        parent.merge_snapshot(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["solved"] == 2.0
        assert snap["spans"]["sweep.point"]["count"] == 2

    def test_snapshot_has_manifest_with_phases(self):
        active = ObsSession(annotations={"run": "test"})
        with active.span("phase"):
            pass
        manifest = active.snapshot()["manifest"]
        assert manifest["annotations"] == {"run": "test"}
        assert "phase" in manifest["phases"]
        assert manifest["provenance"]["python"]


class TestParallelSweepMerge:
    """The acceptance-critical path: worker capture sessions merge back."""

    def _sweep(self, parallel):
        return sweep(
            BASE_SCENARIO,
            x_field="alpha",
            x_values=(0.2, 0.4, 0.6, 0.8),
            quantity="level",
            parallel=parallel,
        )

    def test_parallel_sweep_merges_worker_spans(self):
        with session() as active:
            parallel_series = self._sweep(2)
        snap = active.snapshot()
        # Every grid point produced exactly one sweep.point span, whether
        # measured in a worker (absorbed) or the parent (serial fallback).
        assert snap["spans"]["sweep.point"]["count"] == 4
        assert snap["counters"]["sweep.grid_points"] == 4.0
        assert snap["spans"]["sweep.grid"]["count"] == 1
        # Observed solving changed nothing about the numbers.
        assert parallel_series == self._sweep(None)

    def test_serial_sweep_records_same_shape(self):
        with session() as active:
            self._sweep(None)
        snap = active.snapshot()
        assert snap["spans"]["sweep.point"]["count"] == 4
        assert "sweep.worker_snapshots" not in snap["counters"]
