"""Event-file parsing and summary rendering."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    JsonlSink,
    read_events,
    render_summary,
    session,
    summarize_events,
)


def _write_events(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


class TestReadEvents:
    def test_roundtrip_through_jsonl_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with session(JsonlSink(path)) as active:
            with active.span("phase"):
                pass
            active.counter("hits").add(3)
        events = read_events(path)
        kinds = [e["type"] for e in events]
        assert kinds[0] == "span"
        assert "counter" in kinds
        assert kinds[-1] == "manifest"

    def test_gzip_events_file(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"type": "counter", "name": "a", "value": 1}) + "\n")
        assert read_events(path) == [{"type": "counter", "name": "a", "value": 1}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_events(tmp_path / "nope.jsonl")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ObservabilityError):
            read_events(path)

    def test_untyped_event_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n')
        with pytest.raises(ObservabilityError):
            read_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('\n{"type": "counter", "name": "a", "value": 1}\n\n')
        assert len(read_events(path)) == 1


class TestSummarizeEvents:
    def test_spans_aggregate_and_phases_track_depth_zero(self):
        summary = summarize_events(
            [
                {"type": "span", "name": "p", "start_s": 0, "duration_s": 1.0, "depth": 0},
                {"type": "span", "name": "p", "start_s": 1, "duration_s": 2.0, "depth": 0},
                {"type": "span", "name": "inner", "start_s": 0, "duration_s": 0.5, "depth": 1},
                {"type": "span_merge", "name": "p", "count": 3, "total_s": 4.0},
            ]
        )
        assert summary["spans"]["p"] == {"count": 5, "total_s": 7.0}
        assert summary["phases"] == {"p": 3.0}
        assert "inner" not in summary["phases"]

    def test_unknown_event_types_ignored(self):
        summary = summarize_events([{"type": "from-the-future", "x": 1}])
        assert summary["spans"] == {}

    def test_manifest_passes_through(self):
        summary = summarize_events(
            [{"type": "manifest", "provenance": {"python": "3.11.7"}, "annotations": {}}]
        )
        assert summary["manifest"]["provenance"]["python"] == "3.11.7"


class TestRenderSummary:
    def test_renders_derived_zipf_hit_rate_and_tiers(self):
        summary = summarize_events(
            [
                {"type": "counter", "name": "zipf.cache.hits", "value": 3},
                {"type": "counter", "name": "zipf.cache.misses", "value": 1},
                {"type": "counter", "name": "sim.steady.local_hits", "value": 70},
                {"type": "counter", "name": "sim.steady.peer_hits", "value": 20},
                {"type": "counter", "name": "sim.steady.origin_hits", "value": 10},
                {"type": "gauge", "name": "sim.steady.rps", "value": 250000.0},
            ]
        )
        text = render_summary(summary)
        assert "zipf memo hit rate" in text
        assert "75.00%" in text
        assert "per-tier hits (steady)" in text
        assert "local 70 (70.0%)" in text
        assert "steady-state requests/s" in text
        assert "250,000" in text

    def test_renders_histograms_with_occupied_buckets_only(self):
        summary = summarize_events(
            [
                {
                    "type": "histogram",
                    "name": "sim.steady.batch_size",
                    "bounds": [10.0, 100.0],
                    "bucket_counts": [0, 2, 0],
                    "count": 2,
                    "total": 60.0,
                }
            ]
        )
        text = render_summary(summary)
        assert "sim.steady.batch_size: n=2 mean=30.0" in text
        assert "<=100" in text
        assert "<=10\n" not in text

    def test_empty_stream_renders_placeholder(self):
        assert render_summary(summarize_events([])) == "(no events)"
