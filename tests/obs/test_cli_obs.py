"""CLI integration: --obs recording, obs summarize, --parallel smoke."""

from __future__ import annotations

import io
import json

from repro.cli import main
from repro.obs import read_events


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRunWithObs:
    def test_run_records_events_file(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        code, text = run_cli("run", "table1", "--obs", str(events_path))
        assert code == 0
        assert "Table I" in text  # output unchanged by recording
        events = read_events(events_path)
        kinds = {e["type"] for e in events}
        assert {"span", "counter", "manifest"} <= kinds
        spans = [e["name"] for e in events if e["type"] == "span"]
        assert "experiment.table1" in spans
        manifest = [e for e in events if e["type"] == "manifest"][-1]
        assert manifest["annotations"] == {
            "command": "run",
            "experiment": "table1",
        }
        assert "experiment.table1" in manifest["phases"]

    def test_run_parallel_smoke(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        code, text = run_cli(
            "run", "figure4", "--parallel", "2", "--obs", str(events_path)
        )
        assert code == 0
        assert "Figure 4" in text
        events = read_events(events_path)
        counters = {
            e["name"]: e["value"] for e in events if e["type"] == "counter"
        }
        assert counters["sweep.grid_points"] > 0
        # Worker spans were merged back (live or via serial fallback).
        spans = [
            e for e in events if e["type"] in ("span", "span_merge")
            and e["name"] == "sweep.point"
        ]
        assert spans

    def test_run_parallel_without_obs(self):
        code, text = run_cli("run", "figure4", "--parallel", "2")
        assert code == 0
        assert "Figure 4" in text

    def test_parallel_output_identical_to_serial(self):
        _, serial = run_cli("run", "figure4")
        _, parallel = run_cli("run", "figure4", "--parallel", "2")
        assert serial == parallel

    def test_unwritable_obs_path_is_exit_2(self, tmp_path):
        code, _ = run_cli(
            "run", "table1", "--obs", str(tmp_path / "no-dir" / "e.jsonl")
        )
        assert code == 2


class TestSolveWithObs:
    def test_solve_records_fingerprint(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        code, text = run_cli("solve", "--alpha", "0.7", "--obs", str(events_path))
        assert code == 0
        assert "optimal level" in text
        manifest = [e for e in read_events(events_path) if e["type"] == "manifest"][-1]
        assert manifest["annotations"]["command"] == "solve"
        assert len(manifest["annotations"]["scenario_fingerprint"]) == 16
        assert "solve.scenario" in manifest["phases"]


class TestObsSummarize:
    def test_summarize_rendered_output(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        run_cli("run", "table1", "--obs", str(events_path))
        code, text = run_cli("obs", "summarize", str(events_path))
        assert code == 0
        assert "phases (top-level spans, wall time):" in text
        assert "experiment.table1" in text
        assert "manifest:" in text

    def test_summarize_missing_file_is_exit_2(self, tmp_path):
        code, _ = run_cli("obs", "summarize", str(tmp_path / "nope.jsonl"))
        assert code == 2

    def test_summarize_gzip_events(self, tmp_path):
        events_path = tmp_path / "events.jsonl.gz"
        run_cli("solve", "--obs", str(events_path))
        assert events_path.read_bytes()[:2] == b"\x1f\x8b"
        code, text = run_cli("obs", "summarize", str(events_path))
        assert code == 0
        assert "solve.scenario" in text


class TestBenchHarnessObs:
    def test_quick_bench_payload_embeds_obs_and_provenance(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        out_path = tmp_path / "BENCH_test.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(repo_root / "benchmarks" / "run_bench.py"),
                "--quick",
                "--label",
                "test",
                "--out",
                str(out_path),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out_path.read_text())
        assert payload["provenance"]["python"]
        assert payload["obs"]["counters"]["sim.steady.requests"] > 0
        assert "sweep.point" in payload["obs"]["spans"]
        assert payload["obs"]["manifest"]["annotations"]["bench_label"] == "test"
