"""Unit tests for repro.hetero.model — heterogeneous capacities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoordinationCostModel, LatencyModel, Scenario, ZipfPopularity
from repro.errors import ParameterError
from repro.hetero import HeterogeneousModel


def make(
    capacities=(100.0,) * 10,
    alpha=0.6,
    exponent=0.8,
    catalog=100_000,
    unit_cost=1e-4,
) -> HeterogeneousModel:
    return HeterogeneousModel(
        ZipfPopularity(exponent, catalog),
        LatencyModel(1.0, 3.0, 13.0),
        capacities,
        CoordinationCostModel(unit_cost=unit_cost),
        alpha,
    )


class TestHomogeneousConsistency:
    def test_reduces_to_paper_objective(self):
        """With c_i = c, x_i = x the objective equals eq. 4 exactly."""
        scenario = Scenario(alpha=0.6)
        hetero = HeterogeneousModel(
            scenario.popularity(),
            scenario.latency(),
            [scenario.capacity] * scenario.n_routers,
            scenario.cost_model(),
            scenario.alpha,
        )
        homogeneous = scenario.model()
        for x in (0.0, 250.0, 700.0, 1000.0):
            assert hetero.objective([x] * 20) == pytest.approx(
                float(homogeneous.objective(x)), rel=1e-12
            )

    def test_origin_load_matches(self):
        scenario = Scenario(alpha=0.6)
        hetero = HeterogeneousModel(
            scenario.popularity(),
            scenario.latency(),
            [scenario.capacity] * scenario.n_routers,
            scenario.cost_model(),
            scenario.alpha,
        )
        perf = scenario.performance_model()
        for x in (0.0, 400.0):
            assert hetero.origin_load([x] * 20) == pytest.approx(
                float(perf.origin_load(x)), rel=1e-9
            )


class TestMeanLatency:
    def test_bounded_by_tiers(self):
        model = make()
        for level in (0.0, 0.5, 1.0):
            t = model.mean_latency(model.uniform_shares(level))
            assert 1.0 <= t <= 13.0

    def test_big_router_coordination_helps_more(self):
        """Moving coordination onto the big router lowers latency more
        than the same slots on the small one (it frees more local head)."""
        model = make(capacities=(50.0, 500.0), alpha=1.0, catalog=10_000)
        small_only = model.mean_latency([25.0, 0.0])
        big_only = model.mean_latency([0.0, 25.0])
        # Both coordinate 25 slots; pool start differs: with the big
        # router untouched, L = 500 stays; coordinating on the big one
        # keeps L = 50... either way latency must be finite and valid.
        assert small_only > 0 and big_only > 0

    def test_no_coordination_no_peer_pool_beyond_local(self):
        model = make(capacities=(50.0, 500.0), catalog=10_000)
        # With x = 0 the pool is empty: origin load = 1 - F(max c_i).
        expected = 1.0 - float(
            ZipfPopularity(0.8, 10_000).cdf_continuous(500.0)
        )
        assert model.origin_load([0.0, 0.0]) == pytest.approx(expected, rel=1e-9)


class TestValidation:
    def test_rejects_empty_capacities(self):
        with pytest.raises(ParameterError):
            make(capacities=())

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ParameterError):
            make(capacities=(100.0, 0.0))

    def test_rejects_capacity_above_catalog(self):
        with pytest.raises(ParameterError):
            make(capacities=(200_000.0,), catalog=100_000)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            make(alpha=1.5)

    def test_rejects_share_shape_mismatch(self):
        with pytest.raises(ParameterError):
            make().objective([1.0, 2.0])

    def test_rejects_share_above_capacity(self):
        model = make(capacities=(100.0, 100.0))
        with pytest.raises(ParameterError):
            model.objective([150.0, 0.0])

    def test_rejects_bad_uniform_level(self):
        with pytest.raises(ParameterError):
            make().uniform_shares(1.2)


class TestHelpers:
    def test_uniform_shares(self):
        model = make(capacities=(100.0, 200.0))
        assert np.allclose(model.uniform_shares(0.5), [50.0, 100.0])

    def test_levels_of(self):
        model = make(capacities=(100.0, 200.0))
        assert np.allclose(model.levels_of([50.0, 100.0]), [0.5, 0.5])

    def test_totals(self):
        model = make(capacities=(100.0, 200.0))
        assert model.n_routers == 2
        assert model.total_capacity == 300.0
