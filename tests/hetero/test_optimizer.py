"""Unit tests for repro.hetero.optimizer — per-router provisioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CoordinationCostModel, LatencyModel, Scenario, ZipfPopularity
from repro.errors import ParameterError
from repro.hetero import (
    HeterogeneousModel,
    optimize_shares,
    optimize_uniform_level,
)


def make(capacities, alpha=0.6):
    scenario = Scenario(alpha=alpha)
    return HeterogeneousModel(
        scenario.popularity(),
        scenario.latency(),
        capacities,
        scenario.cost_model(),
        alpha,
    )


class TestFreeOptimization:
    def test_homogeneous_matches_scalar_optimum(self):
        """With equal capacities, per-router SLSQP must land where the
        paper's scalar optimizer does."""
        scenario = Scenario(alpha=0.6)
        model = make([1000.0] * 20, alpha=0.6)
        strategy = optimize_shares(model)
        scalar = scenario.solve(check_conditions=False)
        assert strategy.objective_value == pytest.approx(
            scalar.objective_value, rel=1e-4
        )
        assert strategy.mean_level == pytest.approx(scalar.level, abs=0.05)

    def test_beats_uniform_on_dispersed_capacities(self):
        caps = list(np.linspace(200, 1800, 20))
        model = make(caps, alpha=0.6)
        free = optimize_shares(model)
        uniform = optimize_uniform_level(model)
        assert free.objective_value <= uniform.objective_value + 1e-9

    def test_shares_within_bounds(self):
        caps = [100.0, 400.0, 900.0]
        model = make(caps, alpha=0.7)
        strategy = optimize_shares(model)
        for share, cap in zip(strategy.shares, caps):
            assert -1e-9 <= share <= cap + 1e-9

    def test_levels_consistent_with_shares(self):
        caps = [100.0, 400.0]
        strategy = optimize_shares(make(caps, alpha=0.7))
        for level, share, cap in zip(strategy.levels, strategy.shares, caps):
            assert level == pytest.approx(share / cap, abs=1e-9)

    def test_alpha_zero_coordinates_nothing(self):
        strategy = optimize_shares(make([100.0, 200.0], alpha=0.0))
        assert strategy.total_coordinated == pytest.approx(0.0, abs=1e-6)

    def test_rejects_bad_restarts(self):
        with pytest.raises(ParameterError):
            optimize_shares(make([100.0]), restarts=0)


class TestUniformLevel:
    def test_matches_grid_of_scalar_objective(self):
        model = make([1000.0] * 20, alpha=0.6)
        strategy = optimize_uniform_level(model)
        scenario = Scenario(alpha=0.6)
        scalar = scenario.solve(check_conditions=False)
        assert strategy.levels[0] == pytest.approx(scalar.level, abs=1e-3)

    def test_all_levels_equal(self):
        strategy = optimize_uniform_level(make([100.0, 700.0], alpha=0.6))
        assert strategy.levels[0] == pytest.approx(strategy.levels[1], abs=1e-12)
        assert strategy.method == "uniform-level"

    def test_rejects_bad_resolution(self):
        with pytest.raises(ParameterError):
            optimize_uniform_level(make([100.0]), resolution=1)
