"""Unit tests for repro.core.strategy — materialized provisioning plans."""

from __future__ import annotations

import pytest

from repro.core.strategy import ProvisioningStrategy
from repro.errors import ParameterError


def make(level: float = 0.5, capacity: int = 10, n: int = 4, assignment="round-robin"):
    return ProvisioningStrategy(
        capacity=capacity, n_routers=n, level=level, assignment=assignment
    )


class TestPartitions:
    def test_slot_split(self):
        s = make(level=0.3, capacity=10)
        assert s.coordinated_slots == 3
        assert s.local_slots == 7

    def test_level_zero_all_local(self):
        s = make(level=0.0)
        assert s.coordinated_slots == 0
        assert list(s.local_ranks) == list(range(1, 11))
        assert len(s.coordinated_ranks) == 0

    def test_level_one_all_coordinated(self):
        s = make(level=1.0, capacity=10, n=4)
        assert s.local_slots == 0
        assert list(s.coordinated_ranks) == list(range(1, 41))

    def test_rank_ranges_paper_layout(self):
        """Local: 1..c-x; coordinated: c-x+1..c-x+n*x (paper §III-B)."""
        s = make(level=0.5, capacity=10, n=4)  # x=5, c-x=5
        assert list(s.local_ranks) == [1, 2, 3, 4, 5]
        assert list(s.coordinated_ranks) == list(range(6, 26))

    def test_unique_contents(self):
        s = make(level=0.5, capacity=10, n=4)
        assert s.unique_contents == 5 + 4 * 5

    def test_rounding_of_fractional_slots(self):
        s = make(level=0.25, capacity=10)
        assert s.coordinated_slots == 2  # round(2.5) banker's = 2
        s2 = make(level=0.35, capacity=10)
        assert s2.coordinated_slots == 4  # round(3.5) banker's = 4


class TestOwnership:
    def test_round_robin_assignment(self):
        s = make(level=0.5, capacity=10, n=4)
        start = s.coordinated_ranks.start
        assert s.owner_of_rank(start) == 0
        assert s.owner_of_rank(start + 1) == 1
        assert s.owner_of_rank(start + 4) == 0

    def test_contiguous_assignment(self):
        s = make(level=0.5, capacity=10, n=4, assignment="contiguous")
        start = s.coordinated_ranks.start  # 6, x=5
        assert s.owner_of_rank(start) == 0
        assert s.owner_of_rank(start + 4) == 0
        assert s.owner_of_rank(start + 5) == 1
        assert s.owner_of_rank(start + 19) == 3

    def test_every_coordinated_rank_has_exactly_one_owner(self):
        for assignment in ("round-robin", "contiguous"):
            s = make(level=0.7, capacity=10, n=3, assignment=assignment)
            owners = dict(s.iter_assignments())
            assert set(owners) == set(s.coordinated_ranks)
            assert all(0 <= o < 3 for o in owners.values())

    def test_balanced_load_across_routers(self):
        for assignment in ("round-robin", "contiguous"):
            s = make(level=0.5, capacity=10, n=4, assignment=assignment)
            counts = [0] * 4
            for _, owner in s.iter_assignments():
                counts[owner] += 1
            assert all(c == s.coordinated_slots for c in counts)

    def test_owner_rejects_non_coordinated_rank(self):
        s = make(level=0.5, capacity=10, n=4)
        with pytest.raises(ParameterError):
            s.owner_of_rank(1)  # local rank
        with pytest.raises(ParameterError):
            s.owner_of_rank(10_000)  # origin-only rank


class TestRouterContents:
    def test_capacity_respected(self):
        for assignment in ("round-robin", "contiguous"):
            s = make(level=0.5, capacity=10, n=4, assignment=assignment)
            for router in range(4):
                assert len(s.contents_of_router(router)) == 10

    def test_local_ranks_on_every_router(self):
        s = make(level=0.3, capacity=10, n=4)
        for router in range(4):
            contents = set(s.contents_of_router(router))
            assert set(s.local_ranks) <= contents

    def test_coordinated_ranks_partitioned(self):
        s = make(level=0.5, capacity=10, n=4)
        coordinated_union = set()
        for router in range(4):
            mine = set(s.contents_of_router(router)) - set(s.local_ranks)
            assert not (mine & coordinated_union), "rank stored twice"
            coordinated_union |= mine
        assert coordinated_union == set(s.coordinated_ranks)

    def test_contents_match_owner_function(self):
        for assignment in ("round-robin", "contiguous"):
            s = make(level=0.5, capacity=10, n=4, assignment=assignment)
            for router in range(4):
                mine = set(s.contents_of_router(router)) - set(s.local_ranks)
                for rank in mine:
                    assert s.owner_of_rank(rank) == router

    def test_rejects_bad_router_index(self):
        s = make()
        with pytest.raises(ParameterError):
            s.contents_of_router(-1)
        with pytest.raises(ParameterError):
            s.contents_of_router(4)


class TestMessagesAndChurn:
    def test_coordination_messages_linear_in_x(self):
        assert make(level=0.0).coordination_messages() == 0
        assert make(level=0.5, capacity=10, n=4).coordination_messages() == 20
        assert make(level=1.0, capacity=10, n=4).coordination_messages() == 40

    def test_churn_zero_for_identical(self):
        a = make(level=0.5)
        b = make(level=0.5)
        assert a.reassignment_churn(b) == 0

    def test_churn_counts_added_ranks(self):
        a = make(level=0.0, capacity=10, n=4)
        b = make(level=0.5, capacity=10, n=4)
        assert a.reassignment_churn(b) == len(b.coordinated_ranks)

    def test_contiguous_less_churn_than_round_robin_for_small_change(self):
        rr_a = make(level=0.5, capacity=100, n=4, assignment="round-robin")
        rr_b = make(level=0.52, capacity=100, n=4, assignment="round-robin")
        ct_a = make(level=0.5, capacity=100, n=4, assignment="contiguous")
        ct_b = make(level=0.52, capacity=100, n=4, assignment="contiguous")
        assert ct_a.reassignment_churn(ct_b) <= rr_a.reassignment_churn(rr_b)

    def test_churn_rejects_mismatched_shapes(self):
        with pytest.raises(ParameterError):
            make(capacity=10).reassignment_churn(make(capacity=20))


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ParameterError):
            ProvisioningStrategy(capacity=0, n_routers=2, level=0.5)

    def test_rejects_bad_router_count(self):
        with pytest.raises(ParameterError):
            ProvisioningStrategy(capacity=10, n_routers=0, level=0.5)

    def test_rejects_bad_level(self):
        with pytest.raises(ParameterError):
            ProvisioningStrategy(capacity=10, n_routers=2, level=1.5)
        with pytest.raises(ParameterError):
            ProvisioningStrategy(capacity=10, n_routers=2, level=-0.1)
        with pytest.raises(ParameterError):
            ProvisioningStrategy(capacity=10, n_routers=2, level=float("nan"))

    def test_rejects_unknown_assignment(self):
        with pytest.raises(ParameterError):
            ProvisioningStrategy(
                capacity=10, n_routers=2, level=0.5, assignment="hash"
            )
