"""Equivalence tests for the warm incremental re-solver vs the cold solve.

The contract under test (:func:`repro.core.batch_solver.resolve_incremental`
docstring): perturbed points agree with a cold :func:`solve_batch` of the
same grid within 1e-9 per point in level, unchanged points carry the
previous :class:`BatchStrategy` columns bitwise, and the warm path needs
far fewer whole-grid sweeps than the cold bisection ladder.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_solver import (
    BatchStrategy,
    ScenarioGrid,
    resolve_incremental,
    solve_batch,
)
from repro.core.scenario import Scenario
from repro.errors import ExistenceConditionError, ParameterError
from repro.obs import session

BASE = Scenario()  # Table IV base point

LEVEL_TOL = 1e-9


def reference_grid() -> ScenarioGrid:
    """A 1000-point grid spanning α, both sides of s = 1, and γ."""
    return ScenarioGrid.from_product(
        BASE,
        alpha=np.linspace(0.05, 1.0, 10),
        exponent=np.linspace(0.3, 1.9, 10),
        gamma=np.linspace(0.5, 15.0, 10),
    )


def perturb(
    grid: ScenarioGrid,
    column: str,
    *,
    seed: int,
    fraction: float = 0.05,
    scale: float = 1.03,
) -> tuple[ScenarioGrid, np.ndarray]:
    """Scale ``column`` on a random ``fraction`` of points; returns mask."""
    rng = np.random.default_rng(seed)
    idx = rng.choice(grid.size, size=max(1, int(grid.size * fraction)), replace=False)
    columns = {name: getattr(grid, name) for name in grid._COLUMNS}
    values = np.array(columns[column])
    values[idx] *= scale
    if column == "exponent":
        values[idx] = np.clip(values[idx], 0.3, 1.9)
    elif column == "alpha":
        values[idx] = np.clip(values[idx], 0.0, 1.0)
    columns[column] = values
    mask = np.zeros(grid.size, dtype=bool)
    mask[idx] = True
    return ScenarioGrid(**columns), mask


class TestAgreesWithColdSolve:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("column", ["gamma", "exponent", "alpha"])
    def test_perturbed_points_match_cold(self, column, seed):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, column, seed=seed)
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        cold = solve_batch(perturbed, check_conditions=False)
        np.testing.assert_allclose(
            warm.level, cold.level, atol=LEVEL_TOL, rtol=0.0
        )
        np.testing.assert_allclose(
            warm.objective_value, cold.objective_value, rtol=1e-9
        )

    def test_large_perturbation_exercises_fallback(self):
        """A 10% γ shock moves many previously clipped boundary optima."""
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=3, scale=1.10)
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        cold = solve_batch(perturbed, check_conditions=False)
        methods = set(np.array(warm.method)[mask].tolist())
        assert "first-order" in methods  # fallback path ran
        np.testing.assert_allclose(
            warm.level, cold.level, atol=LEVEL_TOL, rtol=0.0
        )

    def test_all_points_warm_when_mask_omitted(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, _ = perturb(grid, "gamma", seed=4)
        warm = resolve_incremental(perturbed, prev, check_conditions=False)
        cold = solve_batch(perturbed, check_conditions=False)
        np.testing.assert_allclose(
            warm.level, cold.level, atol=LEVEL_TOL, rtol=0.0
        )
        assert "carried" not in set(np.array(warm.method).tolist())

    def test_warm_needs_far_fewer_sweeps_than_cold(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=5)
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        cold = solve_batch(perturbed, check_conditions=False)
        assert warm.iterations <= cold.iterations // 2


class TestCarriedPoints:
    def test_unchanged_points_are_bitwise_identical(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=6)
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        unchanged = ~mask
        assert np.array_equal(
            np.array(warm.level)[unchanged], np.array(prev.level)[unchanged]
        )
        assert np.array_equal(
            np.array(warm.storage)[unchanged], np.array(prev.storage)[unchanged]
        )
        assert np.array_equal(
            np.array(warm.objective_value)[unchanged],
            np.array(prev.objective_value)[unchanged],
        )
        assert np.array_equal(
            np.array(warm.method)[unchanged], np.array(prev.method)[unchanged]
        )

    def test_existence_verdicts_carry_from_previous_strategy(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=7)
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        unchanged = ~mask
        assert np.array_equal(
            np.array(warm.existence_ok)[unchanged],
            np.array(prev.existence_ok)[unchanged],
        )

    def test_raw_level_column_seeds_the_warm_solve(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=8)
        warm = resolve_incremental(
            perturbed, np.array(prev.level), mask, check_conditions=False
        )
        cold = solve_batch(perturbed, check_conditions=False)
        np.testing.assert_allclose(
            warm.level, cold.level, atol=LEVEL_TOL, rtol=0.0
        )
        carried = np.array(warm.method)[~mask]
        assert set(carried.tolist()) == {"carried"}


class TestValidation:
    def test_previous_strategy_length_mismatch_raises(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        small = grid.subset(np.arange(10))
        with pytest.raises(ParameterError, match="previous strategy"):
            resolve_incremental(small, prev, check_conditions=False)

    def test_non_boolean_mask_raises(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        with pytest.raises(ParameterError, match="boolean column"):
            resolve_incremental(
                grid, prev, np.zeros(grid.size), check_conditions=False
            )

    def test_wrong_length_mask_raises(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        with pytest.raises(ParameterError, match="boolean column"):
            resolve_incremental(
                grid, prev, np.zeros(5, dtype=bool), check_conditions=False
            )

    def test_out_of_range_levels_raise(self):
        grid = reference_grid()
        with pytest.raises(ParameterError, match=r"\[0, 1\]"):
            resolve_incremental(
                grid, np.full(grid.size, 1.5), check_conditions=False
            )

    def test_max_newton_below_one_raises(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        with pytest.raises(ParameterError, match="max_newton"):
            resolve_incremental(grid, prev, max_newton=0, check_conditions=False)

    def test_existence_violation_raises_when_checked(self):
        grid = ScenarioGrid.from_product(
            BASE.replace(catalog_size=100_000),
            capacity=np.array([10.0, 30_000.0]),  # n·c > N on the second
        )
        prev_levels = np.zeros(grid.size)
        with pytest.raises(ExistenceConditionError):
            resolve_incremental(grid, prev_levels)
        warm = resolve_incremental(grid, prev_levels, check_conditions=False)
        assert bool(warm.existence_ok[0]) and not bool(warm.existence_ok[1])


class TestSubset:
    def test_subset_round_trips_points(self):
        grid = reference_grid()
        idx = np.array([3, 17, 512])
        sub = grid.subset(idx)
        for j, i in enumerate(idx):
            assert sub.scenario_at(j) == grid.scenario_at(int(i))

    def test_boolean_mask_selects_points(self):
        grid = reference_grid()
        mask = np.zeros(grid.size, dtype=bool)
        mask[[1, 5]] = True
        assert grid.subset(mask).size == 2

    def test_empty_selection_raises(self):
        grid = reference_grid()
        with pytest.raises(ParameterError, match="at least one"):
            grid.subset(np.zeros(grid.size, dtype=bool))

    def test_out_of_range_indices_raise(self):
        grid = reference_grid()
        with pytest.raises(ParameterError, match="out of range"):
            grid.subset(np.array([grid.size]))

    def test_wrong_length_boolean_mask_raises(self):
        grid = reference_grid()
        with pytest.raises(ParameterError, match="boolean subset mask"):
            grid.subset(np.zeros(3, dtype=bool))


class TestObservability:
    def test_resolve_reports_span_and_counters(self):
        grid = reference_grid()
        prev = solve_batch(grid, check_conditions=False)
        perturbed, mask = perturb(grid, "gamma", seed=9)
        with session() as obs:
            resolve_incremental(perturbed, prev, mask, check_conditions=False)
            metrics = obs.snapshot()
        assert metrics["counters"]["solver.resolve.grids"] == 1
        assert metrics["counters"]["solver.resolve.points"] == grid.size
        assert metrics["counters"]["solver.resolve.changed"] == int(mask.sum())
        assert "solver.resolve.iterations" in metrics["gauges"]
        assert "solver.resolve" in metrics["spans"]
