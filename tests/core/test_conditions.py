"""Unit tests for repro.core.conditions — Lemma 1 existence checks."""

from __future__ import annotations

import pytest

from repro.core.conditions import check_existence
from repro.core.latency import LatencyModel
from repro.errors import ExistenceConditionError


def check(**overrides):
    params = dict(
        capacity=100.0,
        catalog_size=1_000_000,
        n_routers=10,
        exponent=0.8,
        latency=LatencyModel(1.0, 3.0, 13.0),
    )
    params.update(overrides)
    return check_existence(**params)


class TestAllConditionsHold:
    def test_paper_base_point(self):
        result = check()
        assert result.all_ok
        assert result.violations == ()
        result.raise_if_violated()  # must not raise

    def test_individual_flags_set(self):
        result = check()
        assert result.capacity_ok
        assert result.catalog_ok
        assert result.routers_ok
        assert result.exponent_ok
        assert result.latency_ok


class TestViolations:
    def test_nonpositive_capacity(self):
        result = check(capacity=0.0)
        assert not result.capacity_ok
        assert not result.all_ok
        assert any("c > 0" in v for v in result.violations)

    def test_small_catalog(self):
        result = check(catalog_size=10)
        assert not result.catalog_ok

    def test_aggregate_storage_exceeds_catalog(self):
        result = check(capacity=100.0, catalog_size=500, n_routers=10)
        assert not result.catalog_ok
        assert any("aggregate" in v for v in result.violations)

    def test_single_router(self):
        result = check(n_routers=1)
        assert not result.routers_ok

    def test_exponent_at_singularity(self):
        result = check(exponent=1.0)
        assert not result.exponent_ok

    def test_exponent_out_of_range(self):
        assert not check(exponent=0.0).exponent_ok
        assert not check(exponent=2.5).exponent_ok

    def test_raise_if_violated(self):
        result = check(n_routers=1)
        with pytest.raises(ExistenceConditionError) as excinfo:
            result.raise_if_violated()
        assert "n > 1" in str(excinfo.value)
        assert excinfo.value.violations

    def test_multiple_violations_all_reported(self):
        result = check(capacity=-1.0, n_routers=1, exponent=3.0)
        assert len(result.violations) >= 3
