"""Unit tests for repro.core.cost — coordination cost models (eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import CoordinationCostModel, PiecewiseLinearCostModel
from repro.errors import ParameterError


class TestLinearCost:
    def test_formula(self):
        m = CoordinationCostModel(unit_cost=2.0, fixed_cost=5.0)
        # W(x) = w*n*x + w_hat
        assert m.cost(10.0, n_routers=3) == pytest.approx(2.0 * 3 * 10.0 + 5.0)

    def test_zero_storage_gives_fixed_cost(self):
        m = CoordinationCostModel(unit_cost=2.0, fixed_cost=7.0)
        assert m.cost(0.0, n_routers=5) == pytest.approx(7.0)

    def test_marginal(self):
        m = CoordinationCostModel(unit_cost=3.0)
        assert m.marginal_cost(n_routers=4) == pytest.approx(12.0)

    def test_vectorized(self):
        m = CoordinationCostModel(unit_cost=1.0)
        xs = np.array([0.0, 1.0, 2.0])
        values = m.cost(xs, n_routers=2)
        assert np.allclose(values, [0.0, 2.0, 4.0])

    def test_with_unit_cost_copy(self):
        m = CoordinationCostModel(unit_cost=1.0, fixed_cost=3.0)
        m2 = m.with_unit_cost(9.0)
        assert m2.unit_cost == 9.0
        assert m2.fixed_cost == 3.0
        assert m.unit_cost == 1.0  # original untouched

    def test_rejects_nonpositive_unit_cost(self):
        with pytest.raises(ParameterError):
            CoordinationCostModel(unit_cost=0.0)
        with pytest.raises(ParameterError):
            CoordinationCostModel(unit_cost=-1.0)

    def test_rejects_negative_fixed_cost(self):
        with pytest.raises(ParameterError):
            CoordinationCostModel(unit_cost=1.0, fixed_cost=-1.0)

    def test_rejects_negative_storage(self):
        m = CoordinationCostModel(unit_cost=1.0)
        with pytest.raises(ParameterError):
            m.cost(-1.0, n_routers=2)

    def test_rejects_bad_router_count(self):
        m = CoordinationCostModel(unit_cost=1.0)
        with pytest.raises(ParameterError):
            m.cost(1.0, n_routers=0)
        with pytest.raises(ParameterError):
            m.marginal_cost(0)


class TestPiecewiseLinearCost:
    def make(self) -> PiecewiseLinearCostModel:
        # slope 1 on [0,10], 2 on [10,20], 4 beyond
        return PiecewiseLinearCostModel(
            breakpoints=[10.0, 20.0], slopes=[1.0, 2.0, 4.0], fixed_cost=1.0
        )

    def test_segment_values(self):
        m = self.make()
        n = 1
        assert m.cost(0.0, n) == pytest.approx(1.0)
        assert m.cost(5.0, n) == pytest.approx(1.0 + 5.0)
        assert m.cost(10.0, n) == pytest.approx(1.0 + 10.0)
        assert m.cost(15.0, n) == pytest.approx(1.0 + 10.0 + 2 * 5.0)
        assert m.cost(25.0, n) == pytest.approx(1.0 + 10.0 + 20.0 + 4 * 5.0)

    def test_scales_with_routers(self):
        m = self.make()
        assert m.cost(5.0, 3) == pytest.approx(3 * 5.0 + 1.0)

    def test_continuity_at_breakpoints(self):
        m = self.make()
        for bp in (10.0, 20.0):
            below = m.cost(bp - 1e-9, 2)
            above = m.cost(bp + 1e-9, 2)
            assert above == pytest.approx(below, abs=1e-6)

    def test_convexity_numeric(self):
        m = self.make()
        xs = np.linspace(0, 30, 301)
        values = np.asarray(m.cost(xs, 1))
        second_diff = np.diff(values, 2)
        assert np.all(second_diff >= -1e-9)

    def test_marginal_cost_at(self):
        m = self.make()
        assert m.marginal_cost_at(5.0, 1) == pytest.approx(1.0)
        assert m.marginal_cost_at(15.0, 1) == pytest.approx(2.0)
        assert m.marginal_cost_at(100.0, 1) == pytest.approx(4.0)
        assert m.marginal_cost_at(10.0, 1) == pytest.approx(2.0)  # right derivative

    def test_marginal_rejects_bad_inputs(self):
        m = self.make()
        with pytest.raises(ParameterError):
            m.marginal_cost_at(-1.0, 1)
        with pytest.raises(ParameterError):
            m.marginal_cost_at(1.0, 0)

    def test_rejects_slope_count_mismatch(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(breakpoints=[1.0], slopes=[1.0])

    def test_rejects_decreasing_slopes(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(breakpoints=[1.0], slopes=[2.0, 1.0])

    def test_rejects_unsorted_breakpoints(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(breakpoints=[5.0, 2.0], slopes=[1.0, 2.0, 3.0])

    def test_rejects_nonpositive_breakpoints(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(breakpoints=[0.0], slopes=[1.0, 2.0])

    def test_rejects_nonpositive_slopes(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(breakpoints=[1.0], slopes=[0.0, 1.0])

    def test_rejects_negative_fixed(self):
        with pytest.raises(ParameterError):
            PiecewiseLinearCostModel(
                breakpoints=[1.0], slopes=[1.0, 2.0], fixed_cost=-1.0
            )

    def test_rejects_negative_storage(self):
        with pytest.raises(ParameterError):
            self.make().cost(-0.5, 1)

    def test_single_segment_matches_linear(self):
        piecewise = PiecewiseLinearCostModel(breakpoints=[], slopes=[3.0])
        linear = CoordinationCostModel(unit_cost=3.0)
        for x in (0.0, 1.0, 7.5):
            assert piecewise.cost(x, 4) == pytest.approx(linear.cost(x, 4))
