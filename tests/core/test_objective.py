"""Unit tests for repro.core.objective — T_w of eq. 4."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost import CoordinationCostModel
from repro.core.latency import LatencyModel
from repro.core.objective import PerformanceCostModel
from repro.core.performance import RoutingPerformanceModel
from repro.core.zipf import ZipfPopularity
from repro.errors import ParameterError


def make_model(alpha: float = 0.7, unit_cost: float = 1e-4) -> PerformanceCostModel:
    return PerformanceCostModel(
        performance=RoutingPerformanceModel(
            popularity=ZipfPopularity(0.8, 100_000),
            latency=LatencyModel(1.0, 3.0, 13.0),
            capacity=100.0,
            n_routers=10,
        ),
        cost=CoordinationCostModel(unit_cost=unit_cost),
        alpha=alpha,
    )


class TestObjective:
    def test_is_convex_combination(self):
        model = make_model(alpha=0.3)
        x = 40.0
        t = model.performance.mean_latency(x)
        w = model.cost.cost(x, model.n_routers)
        assert model.objective(x) == pytest.approx(0.3 * t + 0.7 * w, rel=1e-12)

    def test_alpha_one_is_pure_latency(self):
        model = make_model(alpha=1.0)
        assert model.objective(50.0) == pytest.approx(
            model.performance.mean_latency(50.0), rel=1e-12
        )

    def test_alpha_zero_is_pure_cost(self):
        model = make_model(alpha=0.0)
        assert model.objective(50.0) == pytest.approx(
            model.cost.cost(50.0, 10), rel=1e-12
        )

    def test_vectorized_matches_scalar(self):
        model = make_model()
        xs = np.array([0.0, 25.0, 75.0])
        vec = model.objective(xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(model.objective(float(x)), rel=1e-12)


class TestDerivatives:
    def test_first_derivative_numeric(self):
        model = make_model()
        eps = 1e-4
        for x in (10.0, 50.0, 90.0):
            numeric = (model.objective(x + eps) - model.objective(x - eps)) / (2 * eps)
            assert model.derivative(x) == pytest.approx(numeric, rel=1e-5)

    def test_second_derivative_excludes_linear_cost(self):
        model = make_model(alpha=0.5)
        assert model.second_derivative(50.0) == pytest.approx(
            0.5 * model.performance.second_derivative(50.0), rel=1e-12
        )

    def test_derivative_vectorized(self):
        model = make_model()
        xs = np.array([10.0, 50.0])
        vec = model.derivative(xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(model.derivative(float(x)), rel=1e-12)


class TestConvexity:
    def test_certificate_holds_lemma1(self):
        """Lemma 1: T_w is convex on [0, c] under the paper's conditions."""
        for alpha in (0.0, 0.3, 0.7, 1.0):
            assert make_model(alpha=alpha).is_convex()

    def test_certificate_holds_for_s_above_one(self):
        model = PerformanceCostModel(
            performance=RoutingPerformanceModel(
                popularity=ZipfPopularity(1.5, 100_000),
                latency=LatencyModel(1.0, 3.0, 13.0),
                capacity=100.0,
                n_routers=10,
            ),
            cost=CoordinationCostModel(unit_cost=1e-4),
            alpha=0.6,
        )
        assert model.is_convex()

    def test_certificate_rejects_tiny_sample_count(self):
        with pytest.raises(ParameterError):
            make_model().is_convex(num_samples=2)


class TestLevelMapping:
    def test_roundtrip(self):
        model = make_model()
        for level in (0.0, 0.25, 1.0):
            x = model.storage_for_level(level)
            assert model.coordination_level(x) == pytest.approx(level)

    def test_capacity_delegation(self):
        model = make_model()
        assert model.capacity == 100.0
        assert model.n_routers == 10

    def test_rejects_invalid_level(self):
        with pytest.raises(ParameterError):
            make_model().storage_for_level(1.5)

    def test_vectorized_levels(self):
        model = make_model()
        levels = np.array([0.0, 0.5, 1.0])
        xs = model.storage_for_level(levels)
        assert np.allclose(xs, [0.0, 50.0, 100.0])
        assert np.allclose(model.coordination_level(xs), levels)


class TestValidation:
    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ParameterError):
            make_model(alpha=-0.1)
        with pytest.raises(ParameterError):
            make_model(alpha=1.1)

    def test_rejects_nonfinite_alpha(self):
        with pytest.raises(ParameterError):
            make_model(alpha=float("nan"))
