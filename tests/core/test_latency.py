"""Unit tests for repro.core.latency — the three-tier latency model."""

from __future__ import annotations

import pytest

from repro.core.latency import LatencyModel
from repro.errors import ParameterError


class TestConstruction:
    def test_valid_model(self):
        m = LatencyModel(d0=1.0, d1=3.0, d2=13.0)
        assert m.as_tuple() == (1.0, 3.0, 13.0)

    def test_d1_equal_d2_allowed(self):
        """The paper requires d0 < d1 <= d2 — equality at the top is legal."""
        m = LatencyModel(d0=1.0, d1=5.0, d2=5.0)
        assert m.gamma == 0.0

    def test_rejects_d0_ge_d1(self):
        with pytest.raises(ParameterError):
            LatencyModel(d0=3.0, d1=3.0, d2=5.0)
        with pytest.raises(ParameterError):
            LatencyModel(d0=4.0, d1=3.0, d2=5.0)

    def test_rejects_d2_below_d1(self):
        with pytest.raises(ParameterError):
            LatencyModel(d0=1.0, d1=3.0, d2=2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            LatencyModel(d0=0.0, d1=1.0, d2=2.0)
        with pytest.raises(ParameterError):
            LatencyModel(d0=-1.0, d1=1.0, d2=2.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ParameterError):
            LatencyModel(d0=1.0, d1=float("inf"), d2=float("inf"))
        with pytest.raises(ParameterError):
            LatencyModel(d0=float("nan"), d1=1.0, d2=2.0)

    def test_frozen(self):
        m = LatencyModel(1.0, 2.0, 3.0)
        with pytest.raises(Exception):
            m.d0 = 5.0  # type: ignore[misc]


class TestDerivedRatios:
    def test_tier_ratios(self):
        m = LatencyModel(d0=2.0, d1=6.0, d2=18.0)
        assert m.first_tier_ratio == pytest.approx(3.0)
        assert m.second_tier_ratio == pytest.approx(3.0)

    def test_gamma_definition(self):
        m = LatencyModel(d0=1.0, d1=3.0, d2=13.0)
        assert m.gamma == pytest.approx((13.0 - 3.0) / (3.0 - 1.0))

    def test_deltas(self):
        m = LatencyModel(d0=1.0, d1=3.5, d2=13.0)
        assert m.peer_delta == pytest.approx(2.5)
        assert m.origin_delta == pytest.approx(9.5)


class TestFromGamma:
    def test_realizes_requested_gamma(self):
        for gamma in (0.5, 1.0, 5.0, 42.0):
            m = LatencyModel.from_gamma(gamma)
            assert m.gamma == pytest.approx(gamma)

    def test_respects_d0_and_delta(self):
        m = LatencyModel.from_gamma(4.0, d0=2.0, peer_delta=3.0)
        assert m.d0 == 2.0
        assert m.peer_delta == pytest.approx(3.0)
        assert m.origin_delta == pytest.approx(12.0)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ParameterError):
            LatencyModel.from_gamma(0.0)
        with pytest.raises(ParameterError):
            LatencyModel.from_gamma(-2.0)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ParameterError):
            LatencyModel.from_gamma(5.0, peer_delta=0.0)


class TestFromHops:
    def test_hop_construction(self):
        m = LatencyModel.from_hops(peer_hops=2.4, origin_hops=10.0)
        assert m.d0 == 1.0
        assert m.peer_delta == pytest.approx(2.4)
        assert m.origin_delta == pytest.approx(10.0)
        assert m.gamma == pytest.approx(10.0 / 2.4)

    def test_rejects_nonpositive_hops(self):
        with pytest.raises(ParameterError):
            LatencyModel.from_hops(0.0, 5.0)
        with pytest.raises(ParameterError):
            LatencyModel.from_hops(2.0, -1.0)


class TestTransforms:
    def test_scaled_preserves_gamma(self):
        """The scale-free property: gamma is invariant to uniform scaling."""
        m = LatencyModel(1.0, 3.0, 13.0)
        for factor in (0.1, 2.0, 100.0):
            assert m.scaled(factor).gamma == pytest.approx(m.gamma)

    def test_scaled_values(self):
        m = LatencyModel(1.0, 3.0, 13.0).scaled(2.0)
        assert m.as_tuple() == (2.0, 6.0, 26.0)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            LatencyModel(1.0, 2.0, 3.0).scaled(0.0)

    def test_shifted_preserves_deltas(self):
        m = LatencyModel(1.0, 3.0, 13.0)
        shifted = m.shifted(10.0)
        assert shifted.peer_delta == pytest.approx(m.peer_delta)
        assert shifted.origin_delta == pytest.approx(m.origin_delta)
        assert shifted.gamma == pytest.approx(m.gamma)

    def test_shifted_rejects_nonpositive_d0(self):
        with pytest.raises(ParameterError):
            LatencyModel(1.0, 2.0, 3.0).shifted(-1.0)

    def test_negative_shift_within_bounds(self):
        m = LatencyModel(2.0, 4.0, 6.0).shifted(-1.0)
        assert m.as_tuple() == (1.0, 3.0, 5.0)
