"""Unit tests for repro.core.performance — T(x) of eq. 2 and Appendix A."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import LatencyModel
from repro.core.performance import RoutingPerformanceModel, tier_fractions
from repro.core.zipf import ZipfPopularity
from repro.errors import ParameterError


@pytest.fixture
def perf() -> RoutingPerformanceModel:
    return RoutingPerformanceModel(
        popularity=ZipfPopularity(0.8, 100_000),
        latency=LatencyModel(1.0, 3.0, 13.0),
        capacity=100.0,
        n_routers=10,
    )


class TestTierFractions:
    def test_sum_to_one(self, perf):
        for x in (0.0, 25.0, 50.0, 100.0):
            local, peer, origin = tier_fractions(
                x, perf.capacity, perf.n_routers, perf.popularity
            )
            assert local + peer + origin == pytest.approx(1.0, abs=1e-12)

    def test_no_coordination_means_no_peer_tier(self, perf):
        _, peer, _ = tier_fractions(0.0, 100.0, 10, perf.popularity)
        assert peer == pytest.approx(0.0, abs=1e-12)

    def test_full_coordination_empties_local_tier(self, perf):
        local, peer, origin = tier_fractions(100.0, 100.0, 10, perf.popularity)
        assert local == pytest.approx(0.0, abs=1e-12)
        assert peer > 0

    def test_coordination_grows_peer_and_shrinks_origin(self, perf):
        _, peer_low, origin_low = tier_fractions(10.0, 100.0, 10, perf.popularity)
        _, peer_high, origin_high = tier_fractions(90.0, 100.0, 10, perf.popularity)
        assert peer_high > peer_low
        assert origin_high < origin_low

    def test_exact_variant_sums_to_one(self, perf):
        local, peer, origin = tier_fractions(
            40.0, 100.0, 10, perf.popularity, exact=True
        )
        assert local + peer + origin == pytest.approx(1.0, abs=1e-12)

    def test_vectorized(self, perf):
        xs = np.array([0.0, 50.0, 100.0])
        local, peer, origin = tier_fractions(xs, 100.0, 10, perf.popularity)
        assert local.shape == peer.shape == origin.shape == (3,)
        assert np.allclose(local + peer + origin, 1.0)

    def test_rejects_out_of_range_x(self, perf):
        with pytest.raises(ParameterError):
            tier_fractions(-1.0, 100.0, 10, perf.popularity)
        with pytest.raises(ParameterError):
            tier_fractions(101.0, 100.0, 10, perf.popularity)

    def test_rejects_bad_capacity_and_routers(self, perf):
        with pytest.raises(ParameterError):
            tier_fractions(0.0, 0.0, 10, perf.popularity)
        with pytest.raises(ParameterError):
            tier_fractions(0.0, 100.0, 0, perf.popularity)


class TestMeanLatency:
    def test_noncoordinated_endpoint_formula(self, perf):
        """T(0) matches the paper's §IV-E.2 closed form."""
        s, n_cat = 0.8, 100_000.0
        c = 100.0
        d0, d2 = 1.0, 13.0
        expected = (
            (n_cat ** (1 - s) - c ** (1 - s)) * d2 + (c ** (1 - s) - 1) * d0
        ) / (n_cat ** (1 - s) - 1)
        assert perf.mean_latency_noncoordinated() == pytest.approx(expected, rel=1e-12)

    def test_bounded_by_latency_tiers(self, perf):
        for x in np.linspace(0, 100, 11):
            t = perf.mean_latency(float(x))
            assert 1.0 <= t <= 13.0

    def test_coordination_reduces_latency_in_performance_regime(self, perf):
        """With many routers and gamma > 1, some coordination always helps."""
        assert perf.mean_latency(50.0) < perf.mean_latency(0.0)

    def test_exact_close_to_continuous(self, perf):
        err = perf.approximation_error(50.0)
        assert err < 0.05 * perf.mean_latency(50.0)

    def test_vectorized_matches_scalar(self, perf):
        xs = np.array([0.0, 30.0, 60.0])
        vec = perf.mean_latency(xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(perf.mean_latency(float(x)), rel=1e-12)

    def test_fully_coordinated_endpoint(self, perf):
        t = perf.mean_latency_fully_coordinated()
        assert t == pytest.approx(perf.mean_latency(100.0), rel=1e-12)


class TestDerivatives:
    def test_first_derivative_matches_numeric(self, perf):
        eps = 1e-4
        for x in (10.0, 50.0, 90.0):
            numeric = (
                perf.mean_latency(x + eps) - perf.mean_latency(x - eps)
            ) / (2 * eps)
            assert perf.derivative(x) == pytest.approx(numeric, rel=1e-5)

    def test_second_derivative_matches_numeric(self, perf):
        eps = 1e-3
        for x in (20.0, 50.0, 80.0):
            numeric = (
                perf.mean_latency(x + eps)
                - 2 * perf.mean_latency(x)
                + perf.mean_latency(x - eps)
            ) / eps**2
            assert perf.second_derivative(x) == pytest.approx(numeric, rel=1e-3)

    def test_second_derivative_positive_lemma1(self, perf):
        """Lemma 1: T is convex under the stated conditions."""
        xs = np.linspace(1.0, 99.0, 33)
        assert np.all(np.asarray(perf.second_derivative(xs)) > 0)

    def test_convexity_for_s_above_one(self):
        perf = RoutingPerformanceModel(
            popularity=ZipfPopularity(1.5, 100_000),
            latency=LatencyModel(1.0, 3.0, 13.0),
            capacity=100.0,
            n_routers=10,
        )
        xs = np.linspace(1.0, 99.0, 33)
        assert np.all(np.asarray(perf.second_derivative(xs)) > 0)

    def test_derivatives_finite_at_singular_exponent(self):
        """s = 1 takes the 1/ln N limit of the eq. 6 prefactor."""
        perf = RoutingPerformanceModel(
            popularity=ZipfPopularity(1.0, 100_000),
            latency=LatencyModel(1.0, 3.0, 13.0),
            capacity=100.0,
            n_routers=10,
        )
        eps = 1e-4
        for x in (10.0, 50.0, 90.0):
            numeric = (
                perf.mean_latency(x + eps) - perf.mean_latency(x - eps)
            ) / (2 * eps)
            assert np.isfinite(perf.derivative(x))
            assert perf.derivative(x) == pytest.approx(numeric, rel=1e-5)
        assert np.all(
            np.asarray(perf.second_derivative(np.linspace(1.0, 99.0, 33))) > 0
        )

    def test_derivative_diverges_near_capacity(self, perf):
        assert perf.derivative(100.0 - 1e-9) > perf.derivative(99.0) > 0 or (
            perf.derivative(100.0 - 1e-9) > 0
        )


class TestOriginLoad:
    def test_decreasing_in_x(self, perf):
        loads = [float(perf.origin_load(x)) for x in (0.0, 25.0, 50.0, 100.0)]
        assert loads == sorted(loads, reverse=True)

    def test_range(self, perf):
        for x in (0.0, 50.0, 100.0):
            assert 0.0 <= float(perf.origin_load(x)) <= 1.0


class TestUniqueContents:
    def test_formula(self, perf):
        assert perf.unique_contents_stored(0.0) == pytest.approx(100.0)
        assert perf.unique_contents_stored(100.0) == pytest.approx(1000.0)
        assert perf.unique_contents_stored(40.0) == pytest.approx(60 + 400)

    def test_vectorized(self, perf):
        xs = np.array([0.0, 100.0])
        assert np.allclose(perf.unique_contents_stored(xs), [100.0, 1000.0])


class TestValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ParameterError):
            RoutingPerformanceModel(
                popularity=ZipfPopularity(0.8, 1000),
                latency=LatencyModel(1.0, 2.0, 3.0),
                capacity=0.0,
                n_routers=5,
            )

    def test_rejects_capacity_above_catalog(self):
        with pytest.raises(ParameterError):
            RoutingPerformanceModel(
                popularity=ZipfPopularity(0.8, 100),
                latency=LatencyModel(1.0, 2.0, 3.0),
                capacity=200.0,
                n_routers=5,
            )

    def test_allows_aggregate_beyond_catalog(self):
        """c·n > N is the full-coverage regime; CDF saturates at 1."""
        perf = RoutingPerformanceModel(
            popularity=ZipfPopularity(0.8, 500),
            latency=LatencyModel(1.0, 2.0, 3.0),
            capacity=100.0,
            n_routers=10,
        )
        assert float(perf.origin_load(100.0)) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_router_count(self):
        with pytest.raises(ParameterError):
            RoutingPerformanceModel(
                popularity=ZipfPopularity(0.8, 1000),
                latency=LatencyModel(1.0, 2.0, 3.0),
                capacity=10.0,
                n_routers=0,
            )

    def test_rejects_x_out_of_range(self, perf):
        with pytest.raises(ParameterError):
            perf.mean_latency(-1.0)
        with pytest.raises(ParameterError):
            perf.derivative(101.0)
