"""Unit tests for repro.core.optimizer — Lemma 2, Theorems 1-2, solvers."""

from __future__ import annotations

import pytest

from repro.core.optimizer import (
    Lemma2Coefficients,
    closed_form_alpha1,
    lemma2_coefficients,
    minimize_objective,
    optimal_strategy,
    solve_first_order,
    solve_lemma2,
)
from repro.core.scenario import Scenario
from repro.errors import ExistenceConditionError, ParameterError


BASE = Scenario()  # Table IV base point


class TestLemma2Coefficients:
    def test_a_formula(self):
        """a = gamma * n^{1-s} (Lemma 2)."""
        scenario = BASE.replace(alpha=0.5, gamma=5.0, exponent=0.8, n_routers=20)
        coeffs = lemma2_coefficients(scenario.model())
        assert coeffs.a == pytest.approx(5.0 * 20 ** (1 - 0.8), rel=1e-12)

    def test_b_positive_for_alpha_below_one(self):
        coeffs = lemma2_coefficients(BASE.replace(alpha=0.5).model())
        assert coeffs.b > 0

    def test_b_zero_at_alpha_one(self):
        coeffs = lemma2_coefficients(BASE.replace(alpha=1.0).model())
        assert coeffs.b == 0.0

    def test_b_positive_for_s_above_one(self):
        """The Zipf factor (N^{1-s}-1)/(1-s) stays positive for s in (1,2)."""
        coeffs = lemma2_coefficients(BASE.replace(exponent=1.5, alpha=0.5).model())
        assert coeffs.b > 0

    def test_b_grows_as_alpha_shrinks(self):
        b_high = lemma2_coefficients(BASE.replace(alpha=0.9).model()).b
        b_low = lemma2_coefficients(BASE.replace(alpha=0.2).model()).b
        assert b_low > b_high

    def test_rejects_alpha_zero(self):
        with pytest.raises(ParameterError):
            lemma2_coefficients(BASE.replace(alpha=0.0).model())

    def test_residual_sign_change(self):
        """The residual of eq. 7 changes sign across the root (Theorem 1)."""
        coeffs = lemma2_coefficients(BASE.replace(alpha=0.7).model())
        root = solve_lemma2(coeffs)
        assert coeffs.residual(max(root / 2, 1e-6)) > 0
        assert coeffs.residual(min((1 + root) / 2, 1 - 1e-6)) < 0

    def test_residual_rejects_boundary(self):
        coeffs = Lemma2Coefficients(a=1.0, b=0.0, exponent=0.8)
        with pytest.raises(ParameterError):
            coeffs.residual(0.0)
        with pytest.raises(ParameterError):
            coeffs.residual(1.0)


class TestSolveLemma2:
    def test_root_in_open_interval(self):
        for alpha in (0.3, 0.6, 0.9, 1.0):
            coeffs = lemma2_coefficients(BASE.replace(alpha=alpha).model())
            root = solve_lemma2(coeffs)
            assert 0.0 < root < 1.0

    def test_residual_nearly_zero_at_root(self):
        coeffs = lemma2_coefficients(BASE.replace(alpha=0.7).model())
        root = solve_lemma2(coeffs)
        # The residual is steep; check the bracketing rather than magnitude.
        assert coeffs.residual(root - 1e-9) * coeffs.residual(root + 1e-9) <= 0

    def test_closed_form_agreement_at_alpha_one(self):
        """With b = 0, the Lemma 2 root equals Theorem 2's closed form."""
        scenario = BASE.replace(alpha=1.0)
        coeffs = lemma2_coefficients(scenario.model())
        root = solve_lemma2(coeffs)
        closed = closed_form_alpha1(
            scenario.gamma, scenario.n_routers, scenario.exponent
        )
        assert root == pytest.approx(closed, rel=1e-9)

    def test_huge_b_clamps_to_zero_boundary(self):
        root = solve_lemma2(Lemma2Coefficients(a=1.0, b=1e18, exponent=0.8))
        assert root == pytest.approx(0.0, abs=1e-9)

    def test_huge_a_clamps_to_one_boundary(self):
        root = solve_lemma2(Lemma2Coefficients(a=1e18, b=0.0, exponent=0.8))
        assert root == pytest.approx(1.0, abs=1e-9)

    def test_rejects_bad_coefficients(self):
        with pytest.raises(ParameterError):
            solve_lemma2(Lemma2Coefficients(a=0.0, b=1.0, exponent=0.8))
        with pytest.raises(ParameterError):
            solve_lemma2(Lemma2Coefficients(a=1.0, b=-1.0, exponent=0.8))


class TestClosedFormAlpha1:
    def test_paper_figure5_value_at_s2_boundary(self):
        """Figure 5 reports l* ~ 0.35 at s -> 2 with gamma=5, n=20."""
        assert closed_form_alpha1(5.0, 20, 1.9999999) == pytest.approx(1 / 3, abs=0.01)

    def test_increasing_in_gamma(self):
        """Figure 4: a higher gamma leads to a higher coordination level."""
        values = [closed_form_alpha1(g, 20, 0.8) for g in (1, 2, 5, 10, 50)]
        assert values == sorted(values)

    def test_limit_n_to_infinity_s_below_one(self):
        """Theorem 2 discussion: s in (0,1) drives l* -> 1 as n grows."""
        small = closed_form_alpha1(5.0, 10, 0.6)
        large = closed_form_alpha1(5.0, 100_000, 0.6)
        assert large > small
        assert large > 0.99

    def test_limit_n_to_infinity_s_above_one(self):
        """Theorem 2 discussion: s in (1,2) drives l* -> 0 as n grows."""
        small = closed_form_alpha1(5.0, 10, 1.4)
        large = closed_form_alpha1(5.0, 100_000, 1.4)
        assert large < small
        assert large < 0.15
        assert closed_form_alpha1(5.0, 10**9, 1.4) < 0.02

    def test_always_in_unit_interval(self):
        for gamma in (0.1, 1.0, 100.0):
            for n in (2, 20, 500):
                for s in (0.1, 0.9, 1.1, 1.9):
                    level = closed_form_alpha1(gamma, n, s)
                    # The formula can saturate to 1.0 in floating point
                    # for extreme parameters; it never exceeds 1.
                    assert 0.0 < level <= 1.0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ParameterError):
            closed_form_alpha1(0.0, 20, 0.8)
        with pytest.raises(ParameterError):
            closed_form_alpha1(5.0, 0, 0.8)
        with pytest.raises(ParameterError):
            closed_form_alpha1(5.0, 20, 1.0)


class TestSolverAgreement:
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8, 0.95])
    def test_first_order_vs_scalar_min(self, alpha):
        model = BASE.replace(alpha=alpha).model()
        x_fo = solve_first_order(model)
        x_sm = minimize_objective(model)
        assert x_fo == pytest.approx(x_sm, abs=1e-4 * model.capacity + 1e-9)

    @pytest.mark.parametrize("alpha", [0.4, 0.7, 1.0])
    def test_lemma2_close_to_exact(self, alpha):
        """Lemma 2 uses n-1 ~ n and 1+(n-1)l ~ nl approximations.

        For n = 20 those cost up to ~0.08 in level in the sensitive
        alpha range (measured); the two solvers must stay within 0.1.
        """
        scenario = BASE.replace(alpha=alpha)
        exact = optimal_strategy(scenario.model(), method="first-order").level
        approx = optimal_strategy(scenario.model(), method="lemma2").level
        assert approx == pytest.approx(exact, abs=0.1)

    def test_lemma2_approximation_vanishes_for_large_n(self):
        """The n-1 ~ n approximation error shrinks as n grows."""
        wide = BASE.replace(alpha=0.5, n_routers=500, catalog_size=10**7)
        exact = optimal_strategy(wide.model(), method="first-order").level
        approx = optimal_strategy(wide.model(), method="lemma2").level
        assert approx == pytest.approx(exact, abs=0.02)

    def test_exact_first_order_is_a_stationary_point(self):
        model = BASE.replace(alpha=0.6).model()
        x = solve_first_order(model)
        if 0 < x < model.capacity:
            # Derivative changes sign across the solution.
            assert float(model.derivative(x * (1 - 1e-6))) <= 0
            assert float(model.derivative(min(x * (1 + 1e-6), model.capacity * (1 - 1e-12)))) >= 0


class TestOptimalStrategy:
    def test_alpha_zero_is_non_coordinated(self):
        strategy = optimal_strategy(BASE.replace(alpha=0.0).model())
        assert strategy.level == 0.0
        assert strategy.method == "boundary"
        assert strategy.is_non_coordinated
        assert not strategy.is_fully_coordinated

    def test_alpha_one_auto_uses_exact_solver(self):
        strategy = optimal_strategy(BASE.replace(alpha=1.0).model())
        assert strategy.method == "first-order"
        assert 0.0 < strategy.level < 1.0

    def test_explicit_closed_form_method(self):
        strategy = optimal_strategy(
            BASE.replace(alpha=1.0).model(), method="closed-form"
        )
        assert strategy.method == "closed-form"
        exact = optimal_strategy(BASE.replace(alpha=1.0).model()).level
        assert strategy.level == pytest.approx(exact, abs=0.05)

    def test_closed_form_method_rejects_alpha_below_one(self):
        with pytest.raises(ParameterError):
            optimal_strategy(BASE.replace(alpha=0.5).model(), method="closed-form")

    def test_monotone_in_alpha(self):
        """Figure 4's headline observation: l* grows monotonically with alpha."""
        levels = [
            optimal_strategy(BASE.replace(alpha=a).model()).level
            for a in (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
        ]
        assert levels == sorted(levels)

    def test_monotone_in_gamma(self):
        """Figure 4: higher gamma -> higher coordination level."""
        levels = [
            optimal_strategy(BASE.replace(alpha=0.5, gamma=g).model()).level
            for g in (2.0, 4.0, 6.0, 8.0, 10.0)
        ]
        assert levels == sorted(levels)

    def test_decreasing_in_unit_cost(self):
        """Figure 7: for small alpha, l* drops as w grows."""
        levels = [
            optimal_strategy(BASE.replace(alpha=0.3, unit_cost=w).model()).level
            for w in (10.0, 30.0, 60.0, 100.0)
        ]
        assert levels == sorted(levels, reverse=True)

    def test_storage_and_level_consistent(self):
        strategy = optimal_strategy(BASE.replace(alpha=0.8).model())
        assert strategy.storage == pytest.approx(
            strategy.level * BASE.capacity, rel=1e-9
        )

    def test_objective_value_is_objective_at_solution(self):
        model = BASE.replace(alpha=0.8).model()
        strategy = optimal_strategy(model)
        assert strategy.objective_value == pytest.approx(
            float(model.objective(strategy.storage)), rel=1e-12
        )

    def test_optimum_beats_fixed_levels(self):
        model = BASE.replace(alpha=0.65).model()
        best = optimal_strategy(model).objective_value
        for level in (0.0, 0.1, 0.5, 0.9, 1.0):
            assert best <= float(model.objective(level * model.capacity)) + 1e-9

    def test_scale_free_property(self):
        """Theorem 2: l* depends on latency only through gamma.

        Scaling d0, d1, d2 by a common factor leaves the alpha=1
        optimum unchanged.
        """
        base = BASE.replace(alpha=1.0, access_latency=1.0, peer_delta=2.2842)
        scaled = BASE.replace(alpha=1.0, access_latency=10.0, peer_delta=22.842)
        level_base = optimal_strategy(base.model()).level
        level_scaled = optimal_strategy(scaled.model()).level
        assert level_scaled == pytest.approx(level_base, rel=1e-9)

    def test_condition_check_raises(self):
        scenario = BASE.replace(n_routers=1)
        with pytest.raises(ExistenceConditionError):
            optimal_strategy(scenario.model(), check_conditions=True)

    def test_condition_check_can_be_disabled(self):
        scenario = BASE.replace(n_routers=1)
        strategy = optimal_strategy(scenario.model(), check_conditions=False)
        assert 0.0 <= strategy.level <= 1.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            optimal_strategy(BASE.model(), method="genetic")

    @pytest.mark.parametrize("method", ["lemma2", "first-order", "scalar-min"])
    def test_all_methods_return_valid_levels(self, method):
        strategy = optimal_strategy(BASE.replace(alpha=0.7).model(), method=method)
        assert 0.0 <= strategy.level <= 1.0
        assert strategy.method == method or strategy.method == "boundary"


class TestMinimizeObjectiveSnap:
    """The boundary snap evaluates each candidate's objective once."""

    class _CountingModel:
        def __init__(self, model):
            self._model = model
            self.calls: list[float] = []

        @property
        def capacity(self):
            return self._model.capacity

        def objective(self, x):
            self.calls.append(float(x))
            return self._model.objective(x)

    def test_snap_makes_exactly_three_objective_calls(self, monkeypatch):
        from types import SimpleNamespace

        import repro.core.optimizer as optimizer_module

        counting = self._CountingModel(BASE.replace(alpha=0.5).model())

        def fake_minimize_scalar(fun, *, bounds, method, options):
            # Stand-in for bounded Brent that never touches the
            # objective, isolating the snap loop's own evaluations.
            return SimpleNamespace(success=True, x=0.5 * bounds[1], message="")

        monkeypatch.setattr(
            optimizer_module._scipy_optimize, "minimize_scalar", fake_minimize_scalar
        )
        minimize_objective(counting)
        assert counting.calls == [0.5 * counting.capacity, 0.0, counting.capacity]

    def test_snap_prefers_boundary_when_it_ties_or_wins(self, monkeypatch):
        from types import SimpleNamespace

        import repro.core.optimizer as optimizer_module

        # Cost-dominant regime: x = 0 beats any interior candidate.
        model = BASE.replace(alpha=0.01, unit_cost=500.0).model()

        def fake_minimize_scalar(fun, *, bounds, method, options):
            return SimpleNamespace(success=True, x=0.5 * bounds[1], message="")

        monkeypatch.setattr(
            optimizer_module._scipy_optimize, "minimize_scalar", fake_minimize_scalar
        )
        assert minimize_objective(model) == 0.0

    def test_matches_first_order_solver(self):
        model = BASE.replace(alpha=0.6).model()
        x_min = minimize_objective(model)
        x_fo = solve_first_order(model)
        assert x_min == pytest.approx(x_fo, abs=1e-6 * model.capacity)
