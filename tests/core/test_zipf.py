"""Unit tests for repro.core.zipf — Zipf primitives (paper eq. 1 and 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.zipf import (
    ZipfPopularity,
    continuous_cdf,
    continuous_cdf_limit,
    continuous_pdf,
    harmonic_number,
    harmonic_numbers,
    inverse_continuous_cdf,
    top_k_mass,
    validate_exponent,
    zipf_cdf,
    zipf_pmf,
)
from repro.errors import CatalogError, ParameterError, SingularExponentError


class TestValidateExponent:
    def test_accepts_valid_range(self):
        for s in (0.1, 0.5, 0.99, 1.01, 1.5, 1.9):
            assert validate_exponent(s) == s

    def test_rejects_zero_and_two(self):
        with pytest.raises(ParameterError):
            validate_exponent(0.0)
        with pytest.raises(ParameterError):
            validate_exponent(2.0)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            validate_exponent(-0.5)

    def test_rejects_one_by_default(self):
        with pytest.raises(SingularExponentError):
            validate_exponent(1.0)

    def test_allow_one_flag(self):
        assert validate_exponent(1.0, allow_one=True) == 1.0

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ParameterError):
            validate_exponent(float("nan"))
        with pytest.raises(ParameterError):
            validate_exponent(float("inf"))


class TestHarmonicNumber:
    def test_matches_naive_sum(self):
        for s in (0.5, 1.0, 1.5):
            for k in (1, 2, 10, 100):
                naive = sum(j**-s for j in range(1, k + 1))
                assert harmonic_number(k, s) == pytest.approx(naive, rel=1e-12)

    def test_zero_order_is_zero(self):
        assert harmonic_number(0, 0.8) == 0.0

    def test_rejects_negative_order(self):
        with pytest.raises(ParameterError):
            harmonic_number(-1, 0.8)

    def test_monotone_in_k(self):
        values = [harmonic_number(k, 0.7) for k in (1, 10, 100, 1000)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_s1_is_classic_harmonic(self):
        # H_{10,1} = 1 + 1/2 + ... + 1/10
        assert harmonic_number(10, 1.0) == pytest.approx(7381 / 2520, rel=1e-12)

    def test_asymptotic_branch_continuity(self):
        """The Euler–Maclaurin branch must agree with exact summation."""
        import repro.core.zipf as zipf_mod

        k = 200_000
        exact = harmonic_number(k, 0.8)
        original = zipf_mod._ASYMPTOTIC_THRESHOLD
        zipf_mod._ASYMPTOTIC_THRESHOLD = 100_000
        try:
            approx = harmonic_number(k, 0.8)
        finally:
            zipf_mod._ASYMPTOTIC_THRESHOLD = original
        assert approx == pytest.approx(exact, rel=1e-10)

    def test_vector_version_matches_scalar(self):
        table = harmonic_numbers(50, 1.2)
        assert table[0] == 0.0
        for k in (1, 7, 50):
            assert table[k] == pytest.approx(harmonic_number(k, 1.2), rel=1e-12)

    def test_vector_rejects_negative(self):
        with pytest.raises(ParameterError):
            harmonic_numbers(-1, 0.8)


class TestZipfPmf:
    def test_sums_to_one(self):
        n = 500
        total = sum(zipf_pmf(i, 0.8, n) for i in range(1, n + 1))
        assert total == pytest.approx(1.0, rel=1e-12)

    def test_rank_one_most_popular(self):
        probs = [zipf_pmf(i, 0.8, 100) for i in range(1, 101)]
        assert probs == sorted(probs, reverse=True)

    def test_out_of_range_is_zero(self):
        assert zipf_pmf(0, 0.8, 100) == 0.0
        assert zipf_pmf(101, 0.8, 100) == 0.0

    def test_matches_formula(self):
        n, s = 100, 1.3
        h = harmonic_number(n, s)
        assert zipf_pmf(5, s, n) == pytest.approx(5**-s / h, rel=1e-12)

    def test_array_input(self):
        result = zipf_pmf(np.array([1, 2, 200]), 0.8, 100)
        assert result.shape == (3,)
        assert result[2] == 0.0
        assert result[0] > result[1] > 0

    def test_rejects_bad_catalog(self):
        with pytest.raises(CatalogError):
            zipf_pmf(1, 0.8, 0)


class TestZipfCdf:
    def test_endpoints(self):
        assert zipf_cdf(0, 0.8, 100) == 0.0
        assert zipf_cdf(100, 0.8, 100) == pytest.approx(1.0, rel=1e-12)

    def test_clipping_beyond_catalog(self):
        assert zipf_cdf(1000, 0.8, 100) == pytest.approx(1.0, rel=1e-12)

    def test_matches_pmf_cumsum(self):
        n, s = 200, 0.6
        cumulative = 0.0
        for k in range(1, 21):
            cumulative += zipf_pmf(k, s, n)
            assert zipf_cdf(k, s, n) == pytest.approx(cumulative, rel=1e-12)

    def test_array_matches_scalar(self):
        ks = np.array([0, 1, 10, 50, 100])
        vec = zipf_cdf(ks, 0.8, 100)
        for k, v in zip(ks, vec):
            assert v == pytest.approx(zipf_cdf(int(k), 0.8, 100), rel=1e-12)


class TestContinuousCdf:
    def test_endpoints(self):
        assert continuous_cdf(1.0, 0.8, 1e6) == 0.0
        assert continuous_cdf(1e6, 0.8, 1e6) == pytest.approx(1.0, rel=1e-12)

    def test_clips_below_one_and_above_n(self):
        assert continuous_cdf(0.5, 0.8, 100) == 0.0
        assert continuous_cdf(200, 0.8, 100) == pytest.approx(1.0)

    def test_close_to_exact_for_large_n(self):
        """Eq. 6 approximates the discrete CDF well when N is large."""
        n, s = 100_000, 0.8
        for k in (100, 1000, 10_000):
            exact = zipf_cdf(k, s, n)
            approx = continuous_cdf(float(k), s, n)
            assert approx == pytest.approx(exact, abs=0.03)

    def test_works_for_s_above_one(self):
        value = continuous_cdf(100.0, 1.5, 1e6)
        assert 0.0 < value < 1.0

    def test_monotone(self):
        xs = np.linspace(1, 1e4, 50)
        values = continuous_cdf(xs, 1.3, 1e4)
        assert np.all(np.diff(values) >= 0)

    def test_rejects_s_equal_one(self):
        with pytest.raises(SingularExponentError):
            continuous_cdf(10.0, 1.0, 100)

    def test_rejects_tiny_catalog(self):
        with pytest.raises(CatalogError):
            continuous_cdf(1.0, 0.8, 1.0)


class TestContinuousCdfLimit:
    def test_log_form(self):
        assert continuous_cdf_limit(10.0, 100.0) == pytest.approx(0.5, rel=1e-12)

    def test_endpoints(self):
        assert continuous_cdf_limit(1.0, 100.0) == 0.0
        assert continuous_cdf_limit(100.0, 100.0) == pytest.approx(1.0)

    def test_is_limit_of_general_form(self):
        """F(x; s→1, N) converges to ln x / ln N."""
        x, n = 50.0, 1e5
        limit = continuous_cdf_limit(x, n)
        for s in (0.999, 1.001):
            assert continuous_cdf(x, s, n) == pytest.approx(limit, rel=1e-2)


class TestContinuousPdf:
    def test_is_derivative_of_cdf(self):
        x, s, n = 500.0, 0.8, 1e6
        eps = 1e-3
        numeric = (continuous_cdf(x + eps, s, n) - continuous_cdf(x - eps, s, n)) / (
            2 * eps
        )
        assert continuous_pdf(x, s, n) == pytest.approx(numeric, rel=1e-6)

    def test_positive_everywhere(self):
        xs = np.linspace(1, 1e5, 20)
        for s in (0.5, 1.5):
            assert np.all(np.asarray(continuous_pdf(xs, s, 1e6)) > 0)

    def test_rejects_nonpositive_x(self):
        with pytest.raises(ParameterError):
            continuous_pdf(0.0, 0.8, 1e6)


class TestInverseContinuousCdf:
    def test_roundtrip(self):
        s, n = 0.8, 1e6
        for p in (0.0, 0.1, 0.5, 0.9, 1.0):
            x = inverse_continuous_cdf(p, s, n)
            assert continuous_cdf(x, s, n) == pytest.approx(p, abs=1e-9)

    def test_roundtrip_s_above_one(self):
        s, n = 1.4, 1e6
        for p in (0.2, 0.7):
            x = inverse_continuous_cdf(p, s, n)
            assert continuous_cdf(x, s, n) == pytest.approx(p, abs=1e-9)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ParameterError):
            inverse_continuous_cdf(1.5, 0.8, 1e6)
        with pytest.raises(ParameterError):
            inverse_continuous_cdf(-0.1, 0.8, 1e6)


class TestTopKMass:
    def test_exact_and_continuous_agree_roughly(self):
        exact = top_k_mass(1000, 0.8, 100_000, exact=True)
        approx = top_k_mass(1000, 0.8, 100_000, exact=False)
        assert approx == pytest.approx(exact, abs=0.03)

    def test_exact_uses_discrete(self):
        assert top_k_mass(100, 0.8, 100, exact=True) == pytest.approx(1.0)


class TestZipfPopularity:
    def test_repr_and_equality(self):
        a = ZipfPopularity(0.8, 1000)
        b = ZipfPopularity(0.8, 1000)
        c = ZipfPopularity(0.9, 1000)
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert "0.8" in repr(a)

    def test_equality_with_other_type(self):
        assert ZipfPopularity(0.8, 10) != "zipf"

    def test_singular_detection(self):
        assert ZipfPopularity(1.0, 100).is_singular
        assert not ZipfPopularity(0.8, 100).is_singular

    def test_singular_cdf_continuous_uses_limit(self):
        pop = ZipfPopularity(1.0, 100)
        assert pop.cdf_continuous(10.0) == pytest.approx(0.5)

    def test_interval_mass(self):
        pop = ZipfPopularity(0.8, 10_000)
        full = pop.interval_mass(1, 10_000)
        assert full == pytest.approx(1.0, abs=1e-9)
        head = pop.interval_mass(1, 100)
        tail = pop.interval_mass(100, 10_000)
        assert head + tail == pytest.approx(full, abs=1e-9)

    def test_interval_mass_exact(self):
        pop = ZipfPopularity(0.8, 1000)
        mass = pop.interval_mass(10, 20, exact=True)
        expected = float(pop.cdf(20)) - float(pop.cdf(10))
        assert mass == pytest.approx(expected, rel=1e-12)

    def test_interval_mass_rejects_reversed(self):
        with pytest.raises(ParameterError):
            ZipfPopularity(0.8, 100).interval_mass(20, 10)

    def test_sampling_is_seed_deterministic(self):
        pop = ZipfPopularity(0.8, 1000)
        a = pop.sample(100, np.random.default_rng(42))
        b = pop.sample(100, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_sampling_range(self):
        pop = ZipfPopularity(0.8, 50)
        draws = pop.sample(5000, np.random.default_rng(0))
        assert draws.min() >= 1
        assert draws.max() <= 50

    def test_sampling_frequency_matches_pmf(self):
        pop = ZipfPopularity(0.8, 100)
        draws = pop.sample(200_000, np.random.default_rng(1))
        freq_rank1 = float(np.mean(draws == 1))
        assert freq_rank1 == pytest.approx(float(pop.pmf(1)), abs=0.01)

    def test_sample_rejects_negative_size(self):
        with pytest.raises(ParameterError):
            ZipfPopularity(0.8, 100).sample(-1)

    def test_expected_rank_bounds(self):
        pop = ZipfPopularity(0.8, 100)
        mean = pop.expected_rank()
        assert 1.0 < mean < 100.0

    def test_higher_exponent_concentrates_head(self):
        flat = ZipfPopularity(0.3, 1000)
        steep = ZipfPopularity(1.7, 1000)
        assert float(steep.cdf(10)) > float(flat.cdf(10))
