"""Unit tests for repro.core.scenario — the Table IV parameter bundle."""

from __future__ import annotations

import pytest

from repro.core.scenario import BALANCED_COST_SCALE, Scenario
from repro.errors import ParameterError


class TestDefaults:
    def test_table_iv_base_point(self):
        s = Scenario()
        assert s.exponent == 0.8
        assert s.n_routers == 20
        assert s.catalog_size == 10**6
        assert s.capacity == 10**3
        assert s.unit_cost == 26.7
        assert s.peer_delta == 2.2842

    def test_balanced_cost_scale_value(self):
        assert BALANCED_COST_SCALE == pytest.approx(1.0 / (26.7 * 20 * 1000.0))


class TestReplace:
    def test_replace_single_field(self):
        s = Scenario().replace(alpha=0.9)
        assert s.alpha == 0.9
        assert s.gamma == 5.0  # untouched

    def test_replace_returns_new_object(self):
        base = Scenario()
        changed = base.replace(gamma=7.0)
        assert base.gamma == 5.0
        assert changed.gamma == 7.0

    def test_replace_validates(self):
        with pytest.raises(ParameterError):
            Scenario().replace(alpha=2.0)


class TestModelWiring:
    def test_latency_realizes_gamma(self):
        s = Scenario(gamma=7.0)
        assert s.latency().gamma == pytest.approx(7.0)

    def test_latency_uses_access_and_delta(self):
        s = Scenario(access_latency=2.0, peer_delta=3.0)
        lat = s.latency()
        assert lat.d0 == 2.0
        assert lat.peer_delta == pytest.approx(3.0)

    def test_popularity_parameters(self):
        s = Scenario(exponent=1.3, catalog_size=5000)
        pop = s.popularity()
        assert pop.exponent == 1.3
        assert pop.catalog_size == 5000

    def test_cost_model_applies_scale(self):
        s = Scenario(unit_cost=26.7, cost_scale=0.5)
        assert s.cost_model().unit_cost == pytest.approx(13.35)

    def test_cost_scale_literal(self):
        s = Scenario(cost_scale=1.0)
        assert s.cost_model().unit_cost == pytest.approx(26.7)

    def test_cost_scale_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            Scenario(cost_scale=0.0).cost_model()

    def test_model_alpha_propagates(self):
        s = Scenario(alpha=0.37)
        assert s.model().alpha == 0.37

    def test_performance_model_shape(self):
        s = Scenario()
        perf = s.performance_model()
        assert perf.capacity == s.capacity
        assert perf.n_routers == s.n_routers


class TestSolve:
    def test_solve_returns_valid_strategy(self):
        strategy = Scenario(alpha=0.7).solve()
        assert 0.0 <= strategy.level <= 1.0
        assert strategy.alpha == 0.7

    def test_solve_with_gains_consistent(self):
        scenario = Scenario(alpha=0.7)
        strategy, gains = scenario.solve_with_gains()
        assert gains.origin_load_optimal <= gains.origin_load_baseline
        strategy2 = scenario.solve()
        assert strategy.level == pytest.approx(strategy2.level, rel=1e-12)

    def test_solve_method_passthrough(self):
        strategy = Scenario(alpha=0.7).solve(method="scalar-min")
        assert strategy.method == "scalar-min"

    def test_literal_cost_scale_pins_level_to_zero(self):
        """With the paper's literal (unnormalized) units, the cost term
        dominates and any alpha < 1 collapses to no coordination —
        the degeneracy documented in EXPERIMENTS.md."""
        strategy = Scenario(alpha=0.9, cost_scale=1.0).solve()
        assert strategy.level == pytest.approx(0.0, abs=1e-6)


class TestValidation:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ParameterError):
            Scenario(alpha=-0.1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ParameterError):
            Scenario(gamma=0.0)

    def test_rejects_bad_access_latency(self):
        with pytest.raises(ParameterError):
            Scenario(access_latency=0.0)

    def test_rejects_bad_peer_delta(self):
        with pytest.raises(ParameterError):
            Scenario(peer_delta=-1.0)
