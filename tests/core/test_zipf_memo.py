"""Memoized Zipf tables: cache hits must be bitwise-identical to misses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.zipf import (
    ZipfPopularity,
    clear_zipf_caches,
    harmonic_number,
    harmonic_numbers,
    zipf_table_stats,
)


@pytest.fixture(autouse=True)
def clean_caches():
    """Every test starts and ends with empty caches."""
    clear_zipf_caches()
    yield
    clear_zipf_caches()


def unmemoized_harmonic(k: int, s: float) -> float:
    """Direct reference sum, bypassing the module's caches."""
    j = np.arange(1, k + 1, dtype=np.float64)
    return float(np.sum(j**-s))


class TestHarmonicMemoization:
    @pytest.mark.parametrize("s", [0.5, 0.8, 1.3, 1.9])
    @pytest.mark.parametrize("k", [1, 10, 1_000, 50_000])
    def test_cached_equals_reference(self, k, s):
        first = harmonic_number(k, s)
        second = harmonic_number(k, s)  # cache hit
        assert first == second  # bitwise
        assert first == pytest.approx(unmemoized_harmonic(k, s), rel=1e-12)

    def test_stats_count_hits_and_misses(self):
        harmonic_number(100, 0.8)
        harmonic_number(100, 0.8)
        harmonic_number(200, 0.8)
        stats = zipf_table_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 2
        assert stats["harmonic_entries"] == 2

    def test_clear_resets(self):
        harmonic_number(100, 0.8)
        clear_zipf_caches()
        stats = zipf_table_stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "harmonic_entries": 0,
            "prefix_entries": 0,
            "popularity_entries": 0,
        }

    def test_distinct_keys_are_separate(self):
        assert harmonic_number(100, 0.8) != harmonic_number(100, 0.9)
        assert harmonic_number(100, 0.8) != harmonic_number(101, 0.8)


class TestPrefixTableMemoization:
    def test_values_match_scalar_function(self):
        table = harmonic_numbers(500, 0.7)
        assert table[0] == 0.0
        for k in (1, 2, 17, 499, 500):
            assert table[k] == pytest.approx(harmonic_number(k, 0.7), rel=1e-12)

    def test_tables_are_read_only(self):
        table = harmonic_numbers(100, 0.8)
        with pytest.raises(ValueError):
            table[0] = 1.0

    def test_prefix_served_from_longer_table(self):
        long = harmonic_numbers(1_000, 0.8)
        before = zipf_table_stats()
        short = harmonic_numbers(100, 0.8)
        after = zipf_table_stats()
        # Served as a view of the long table: a hit, no new entry.
        assert after["hits"] == before["hits"] + 1
        assert after["prefix_entries"] == before["prefix_entries"]
        assert np.shares_memory(short, long)
        assert np.array_equal(short, long[:101])

    def test_repeated_call_hits(self):
        a = harmonic_numbers(200, 0.8)
        b = harmonic_numbers(200, 0.8)
        assert a is b


class TestPopularityTableSharing:
    def test_instances_share_tables(self):
        first = ZipfPopularity(0.8, 1_000)
        second = ZipfPopularity(0.8, 1_000)
        rng = np.random.default_rng(0)
        first.sample(10, rng)
        second.sample(10, rng)
        assert np.shares_memory(first._tables()[0], second._tables()[0])
        assert zipf_table_stats()["popularity_entries"] == 1

    def test_tables_are_read_only(self):
        popularity = ZipfPopularity(0.8, 100)
        pmf, cdf = popularity._tables()
        with pytest.raises(ValueError):
            pmf[0] = 1.0
        with pytest.raises(ValueError):
            cdf[0] = 1.0

    def test_sampling_stream_unchanged_by_sharing(self):
        """Cache hits must not perturb sampled streams."""
        draws_cold = ZipfPopularity(0.8, 500).sample(
            100, np.random.default_rng(42)
        )
        draws_warm = ZipfPopularity(0.8, 500).sample(
            100, np.random.default_rng(42)
        )
        assert np.array_equal(draws_cold, draws_warm)

    def test_distinct_parameters_distinct_tables(self):
        a = ZipfPopularity(0.8, 100)
        b = ZipfPopularity(0.9, 100)
        a.sample(1, np.random.default_rng(0))
        b.sample(1, np.random.default_rng(0))
        assert not np.shares_memory(a._tables()[0], b._tables()[0])
        assert zipf_table_stats()["popularity_entries"] == 2


class TestCacheEviction:
    def test_prefix_cache_is_bounded(self):
        for i in range(10):
            harmonic_numbers(100 + i, 0.1 * (i + 1))
        assert zipf_table_stats()["prefix_entries"] <= 4

    def test_popularity_cache_is_bounded(self):
        for i in range(10):
            ZipfPopularity(0.5 + 0.1 * i, 50).sample(
                1, np.random.default_rng(0)
            )
        assert zipf_table_stats()["popularity_entries"] <= 4
