"""Unit tests for repro.core.gains — G_O and G_R (paper §IV-E)."""

from __future__ import annotations

import pytest

from repro.core.gains import (
    evaluate_gains,
    origin_load_reduction,
    routing_improvement,
)
from repro.core.optimizer import optimal_strategy
from repro.core.scenario import Scenario
from repro.errors import ParameterError

BASE = Scenario()


class TestOriginLoadReduction:
    def test_zero_at_zero_storage(self):
        assert origin_load_reduction(BASE.model(), 0.0) == pytest.approx(0.0)

    def test_matches_paper_closed_form(self):
        """G_O = ((c+(n-1)x)^{1-s} - c^{1-s}) / (N^{1-s} - c^{1-s})."""
        scenario = BASE
        model = scenario.model()
        x = 400.0
        s = scenario.exponent
        c = scenario.capacity
        n = scenario.n_routers
        n_cat = float(scenario.catalog_size)
        expected = ((c + (n - 1) * x) ** (1 - s) - c ** (1 - s)) / (
            n_cat ** (1 - s) - c ** (1 - s)
        )
        assert origin_load_reduction(model, x) == pytest.approx(expected, rel=1e-9)

    def test_closed_form_for_s_above_one(self):
        scenario = BASE.replace(exponent=1.5)
        model = scenario.model()
        x = 250.0
        s, c, n = 1.5, scenario.capacity, scenario.n_routers
        n_cat = float(scenario.catalog_size)
        expected = ((c + (n - 1) * x) ** (1 - s) - c ** (1 - s)) / (
            n_cat ** (1 - s) - c ** (1 - s)
        )
        assert origin_load_reduction(model, x) == pytest.approx(expected, rel=1e-9)

    def test_monotone_in_storage(self):
        model = BASE.model()
        gains = [origin_load_reduction(model, x) for x in (0.0, 100.0, 500.0, 1000.0)]
        assert gains == sorted(gains)

    def test_in_unit_interval(self):
        model = BASE.model()
        for x in (0.0, 500.0, 1000.0):
            assert 0.0 <= origin_load_reduction(model, x) <= 1.0

    def test_full_coverage_reaches_one(self):
        """When aggregate storage covers the catalog, G_O hits 1."""
        scenario = BASE.replace(catalog_size=10_000, capacity=1000.0)
        model = scenario.model()
        # c + (n-1)x = 1000 + 19*1000 = 20000 > N = 10000.
        assert origin_load_reduction(model, 1000.0) == pytest.approx(1.0)

    def test_rejects_out_of_range_storage(self):
        with pytest.raises(ParameterError):
            origin_load_reduction(BASE.model(), -1.0)
        with pytest.raises(ParameterError):
            origin_load_reduction(BASE.model(), 1e9)


class TestRoutingImprovement:
    def test_zero_at_zero_storage(self):
        assert routing_improvement(BASE.model(), 0.0) == pytest.approx(0.0)

    def test_positive_at_interior_optimum(self):
        model = BASE.replace(alpha=0.8).model()
        strategy = optimal_strategy(model)
        assert routing_improvement(model, strategy.storage) > 0.0

    def test_definition(self):
        model = BASE.model()
        x = 600.0
        perf = model.performance
        expected = 1.0 - float(perf.mean_latency(x)) / perf.mean_latency_noncoordinated()
        assert routing_improvement(model, x) == pytest.approx(expected, rel=1e-12)

    def test_below_one(self):
        model = BASE.model()
        for x in (0.0, 500.0, 1000.0):
            assert routing_improvement(model, x) < 1.0

    def test_rejects_out_of_range_storage(self):
        with pytest.raises(ParameterError):
            routing_improvement(BASE.model(), 2000.0)


class TestEvaluateGains:
    def test_bundles_consistent_values(self):
        model = BASE.replace(alpha=0.8).model()
        strategy = optimal_strategy(model)
        gains = evaluate_gains(model, strategy)
        assert gains.origin_load_reduction == pytest.approx(
            origin_load_reduction(model, strategy.storage), rel=1e-12
        )
        assert gains.routing_improvement == pytest.approx(
            routing_improvement(model, strategy.storage), rel=1e-12
        )
        assert gains.latency_baseline == pytest.approx(
            model.performance.mean_latency_noncoordinated(), rel=1e-12
        )
        assert gains.origin_load_optimal <= gains.origin_load_baseline
        assert gains.latency_optimal <= gains.latency_baseline

    def test_gain_relationships(self):
        """G_O = 1 - load_opt/load_base; G_R = 1 - T_opt/T_base."""
        model = BASE.replace(alpha=0.9).model()
        gains = evaluate_gains(model, optimal_strategy(model))
        assert gains.origin_load_reduction == pytest.approx(
            1 - gains.origin_load_optimal / gains.origin_load_baseline, rel=1e-9
        )
        assert gains.routing_improvement == pytest.approx(
            1 - gains.latency_optimal / gains.latency_baseline, rel=1e-9
        )

    def test_higher_gamma_higher_gains(self):
        """Figures 8 and 12: larger gamma raises both gains."""
        gains_by_gamma = []
        for gamma in (2.0, 6.0, 10.0):
            scenario = BASE.replace(alpha=0.8, gamma=gamma)
            model = scenario.model()
            gains_by_gamma.append(evaluate_gains(model, optimal_strategy(model)))
        origin = [g.origin_load_reduction for g in gains_by_gamma]
        routing = [g.routing_improvement for g in gains_by_gamma]
        assert origin == sorted(origin)
        assert routing == sorted(routing)
