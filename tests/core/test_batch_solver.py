"""Equivalence tests for repro.core.batch_solver vs the scalar oracle.

The contract under test (batch_solver module docstring): with
``warm_start=False`` the batched first-order path is bit-identical to
:func:`repro.core.optimizer.optimal_strategy`; with warm starts it
agrees within the solver tolerance — per point ``level`` within 1e-9,
``storage`` within ``1e-9·max(1, c)``, ``objective``/``G_O``/``G_R``
within 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_solver import (
    BatchStrategy,
    ScenarioGrid,
    closed_form_alpha1_batch,
    evaluate_gains_batch,
    existence_mask,
    lemma2_coefficients_batch,
    solve_batch,
    solve_lemma2_batch,
)
from repro.core.conditions import check_existence
from repro.core.gains import evaluate_gains
from repro.core.optimizer import (
    closed_form_alpha1,
    lemma2_coefficients,
    optimal_strategy,
    solve_lemma2,
)
from repro.core.scenario import Scenario
from repro.errors import (
    ExistenceConditionError,
    ParameterError,
    SingularExponentError,
)
from repro.obs import session

BASE = Scenario()  # Table IV base point

LEVEL_TOL = 1e-9
VALUE_TOL = 1e-9


def random_scenarios(seed: int, count: int) -> list[Scenario]:
    """Fixed-seed scenario soup covering the solver's regimes.

    Exponents span both sides of the s = 1 singularity (kept at least
    0.02 away so the scalar model stack accepts them); α covers the
    boundary 0, interior values and the closed-form regime at 1.
    """
    rng = np.random.default_rng(seed)
    scenarios = []
    for i in range(count):
        if i % 7 == 0:
            alpha = 0.0
        elif i % 7 == 1:
            alpha = 1.0
        elif i % 7 == 2:
            alpha = float(rng.uniform(0.9, 1.0))  # warm-start regime
        else:
            alpha = float(rng.uniform(0.01, 0.99))
        exponent = float(rng.uniform(0.3, 1.95))
        if abs(exponent - 1.0) < 0.02:
            exponent = 1.05
        catalog = int(rng.integers(10_000, 2_000_000))
        scenarios.append(
            BASE.replace(
                alpha=alpha,
                gamma=float(rng.uniform(0.5, 15.0)),
                exponent=exponent,
                n_routers=int(rng.integers(2, 60)),
                catalog_size=catalog,
                capacity=float(rng.uniform(10.0, catalog / 100.0)),
                unit_cost=float(rng.uniform(1.0, 60.0)),
            )
        )
    return scenarios


def assert_matches_scalar(
    grid: ScenarioGrid, batched: BatchStrategy, **solve_kwargs
) -> None:
    for i in range(len(grid)):
        scenario = grid.scenario_at(i)
        scalar = optimal_strategy(
            scenario.model(), check_conditions=False, **solve_kwargs
        )
        assert batched.level[i] == pytest.approx(scalar.level, abs=LEVEL_TOL)
        assert batched.storage[i] == pytest.approx(
            scalar.storage, abs=VALUE_TOL * max(1.0, scenario.capacity)
        )
        assert batched.objective_value[i] == pytest.approx(
            scalar.objective_value, rel=VALUE_TOL, abs=VALUE_TOL
        )


class TestScenarioGrid:
    def test_from_product_round_trips_every_point(self):
        alphas = [0.1, 0.5, 0.9]
        gammas = [2.0, 8.0]
        grid = ScenarioGrid.from_product(BASE, alpha=alphas, gamma=gammas)
        assert len(grid) == 6
        expected = [
            BASE.replace(alpha=a, gamma=g) for a in alphas for g in gammas
        ]
        assert [grid.scenario_at(i) for i in range(6)] == expected

    def test_from_scenarios_round_trips(self):
        scenarios = random_scenarios(seed=3, count=12)
        grid = ScenarioGrid.from_scenarios(scenarios)
        assert [grid.scenario_at(i) for i in range(len(grid))] == scenarios

    def test_broadcasts_scalars_against_columns(self):
        grid = ScenarioGrid(alpha=[0.2, 0.4, 0.8], gamma=5.0)
        assert grid.gamma.tolist() == [5.0, 5.0, 5.0]

    def test_rejects_mismatched_column_lengths(self):
        with pytest.raises(ParameterError):
            ScenarioGrid(alpha=[0.2, 0.4], gamma=[1.0, 2.0, 3.0])

    def test_rejects_out_of_range_alpha(self):
        with pytest.raises(ParameterError):
            ScenarioGrid(alpha=[0.5, 1.5])

    def test_rejects_unknown_product_axis(self):
        with pytest.raises(ParameterError):
            ScenarioGrid.from_product(BASE, bogus=[1.0, 2.0])

    def test_rejects_empty_scenario_list(self):
        with pytest.raises(ParameterError):
            ScenarioGrid.from_scenarios([])

    def test_columns_and_derived_arrays_are_read_only(self):
        grid = ScenarioGrid(alpha=[0.3, 0.7])
        with pytest.raises(ValueError):
            grid.alpha[0] = 0.9
        derived = grid.derived()
        for name, column in derived.items():
            if isinstance(column, np.ndarray):
                assert not column.flags.writeable, name


class TestFirstOrderEquivalence:
    def test_random_grid_matches_scalar_within_tolerance(self):
        scenarios = random_scenarios(seed=11, count=40)
        grid = ScenarioGrid.from_scenarios(scenarios)
        batched = solve_batch(grid, check_conditions=False)
        assert_matches_scalar(grid, batched)

    def test_cold_path_is_bit_identical_to_scalar(self):
        scenarios = random_scenarios(seed=23, count=25)
        grid = ScenarioGrid.from_scenarios(scenarios)
        batched = solve_batch(grid, check_conditions=False, warm_start=False)
        for i, scenario in enumerate(scenarios):
            scalar = optimal_strategy(scenario.model(), check_conditions=False)
            assert float(batched.level[i]) == scalar.level
            assert float(batched.storage[i]) == scalar.storage

    def test_singular_exponent_matches_scalar(self):
        grid = ScenarioGrid.from_product(
            BASE.replace(exponent=1.0), alpha=[0.3, 0.6, 1.0]
        )
        batched = solve_batch(grid, check_conditions=False, warm_start=False)
        assert_matches_scalar(grid, batched)

    def test_alpha_zero_is_boundary(self):
        grid = ScenarioGrid(alpha=[0.0, 0.5])
        batched = solve_batch(grid, check_conditions=False)
        assert batched.level[0] == 0.0
        assert str(batched.method[0]) == "boundary"
        assert str(batched.method[1]) == "first-order"

    def test_high_gamma_points_push_toward_saturation(self):
        # High α with a steep tier ratio drives ℓ* toward 1 (cf. Figure 4);
        # the (c-x)^{-s} local term keeps the optimum strictly interior,
        # which both solvers must agree on.
        grid = ScenarioGrid.from_product(
            BASE.replace(alpha=1.0), gamma=[20.0, 50.0]
        )
        batched = solve_batch(grid, check_conditions=False)
        assert_matches_scalar(grid, batched)
        assert bool((np.array(batched.level) > 0.98).all())
        assert not bool(batched.fully_coordinated.any())

    def test_strategy_at_round_trips_scalar_fields(self):
        grid = ScenarioGrid(alpha=[0.4])
        batched = solve_batch(grid, check_conditions=False)
        scalar = batched.strategy_at(0)
        assert scalar.level == float(batched.level[0])
        assert scalar.method == "first-order"
        assert scalar.alpha == 0.4


class TestAlternateMethods:
    def test_lemma2_batch_matches_scalar_per_point(self):
        scenarios = [
            s for s in random_scenarios(seed=5, count=30) if s.alpha > 0.0
        ]
        grid = ScenarioGrid.from_scenarios(scenarios)
        a, b = lemma2_coefficients_batch(grid)
        levels = solve_lemma2_batch(a, b, grid.exponent)
        for i, scenario in enumerate(scenarios):
            coeffs = lemma2_coefficients(scenario.model())
            assert a[i] == pytest.approx(coeffs.a, rel=1e-12)
            assert b[i] == pytest.approx(coeffs.b, rel=1e-12)
            assert levels[i] == pytest.approx(solve_lemma2(coeffs), abs=LEVEL_TOL)

    def test_lemma2_method_matches_scalar_solver(self):
        scenarios = [
            s for s in random_scenarios(seed=17, count=20) if s.alpha > 0.0
        ]
        grid = ScenarioGrid.from_scenarios(scenarios)
        batched = solve_batch(grid, method="lemma2", check_conditions=False)
        assert_matches_scalar(grid, batched, method="lemma2")

    def test_closed_form_batch_matches_scalar(self):
        gammas = np.array([0.5, 2.0, 5.0, 20.0])
        levels = closed_form_alpha1_batch(gammas, 20.0, 0.8)
        for gamma, level in zip(gammas, levels):
            assert level == pytest.approx(
                closed_form_alpha1(float(gamma), 20, 0.8), rel=1e-12
            )

    def test_closed_form_method_requires_alpha_one(self):
        grid = ScenarioGrid(alpha=[0.5, 1.0])
        with pytest.raises(ParameterError, match="alpha = 1"):
            solve_batch(grid, method="closed-form", check_conditions=False)

    def test_closed_form_method_matches_scalar_at_alpha_one(self):
        grid = ScenarioGrid.from_product(
            BASE.replace(alpha=1.0), gamma=[1.0, 5.0, 12.0]
        )
        batched = solve_batch(grid, method="closed-form", check_conditions=False)
        assert_matches_scalar(grid, batched, method="closed-form")

    def test_scalar_min_has_no_batched_form(self):
        grid = ScenarioGrid(alpha=[0.5])
        with pytest.raises(ParameterError, match="scalar-min"):
            solve_batch(grid, method="scalar-min", check_conditions=False)

    def test_unknown_method_rejected(self):
        with pytest.raises(ParameterError):
            solve_batch(ScenarioGrid(alpha=[0.5]), method="newton")

    def test_lemma2_coefficients_reject_alpha_zero(self):
        with pytest.raises(ParameterError):
            lemma2_coefficients_batch(ScenarioGrid(alpha=[0.0, 0.5]))

    def test_singular_exponent_rejected_outside_first_order(self):
        grid = ScenarioGrid(alpha=[0.5], exponent=[1.0])
        with pytest.raises(SingularExponentError):
            solve_batch(grid, method="lemma2", check_conditions=False)


class TestGainsEquivalence:
    def test_gains_match_scalar_per_point(self):
        scenarios = random_scenarios(seed=41, count=30)
        grid = ScenarioGrid.from_scenarios(scenarios)
        batched = solve_batch(grid, check_conditions=False)
        gains = evaluate_gains_batch(grid, batched)
        for i, scenario in enumerate(scenarios):
            model = scenario.model()
            scalar = evaluate_gains(
                model, optimal_strategy(model, check_conditions=False)
            )
            assert gains.origin_load_reduction[i] == pytest.approx(
                scalar.origin_load_reduction, abs=VALUE_TOL
            )
            assert gains.routing_improvement[i] == pytest.approx(
                scalar.routing_improvement, abs=VALUE_TOL
            )

    def test_accepts_raw_storage_column(self):
        grid = ScenarioGrid(alpha=[0.5, 0.5], capacity=[100.0, 100.0])
        gains = evaluate_gains_batch(grid, np.array([0.0, 50.0]))
        assert gains.origin_load_reduction[0] == 0.0
        assert gains.origin_load_reduction[1] > 0.0

    def test_rejects_storage_outside_capacity(self):
        grid = ScenarioGrid(alpha=[0.5], capacity=[100.0])
        with pytest.raises(ParameterError):
            evaluate_gains_batch(grid, np.array([150.0]))


class TestExistenceHandling:
    def test_mask_matches_scalar_check_per_point(self):
        grid = ScenarioGrid(
            alpha=0.5,
            n_routers=[20.0, 1.0, 20.0, 20.0],
            catalog_size=[10**6, 10**6, 50.0, 10**6],
            capacity=[10**3, 10**3, 10.0, 10**6],
        )
        mask = existence_mask(grid)
        for i in range(len(grid)):
            point = grid.scenario_at(i)
            conditions = check_existence(
                capacity=point.capacity,
                catalog_size=point.catalog_size,
                n_routers=point.n_routers,
                exponent=point.exponent,
                latency=point.latency(),
            )
            assert bool(mask[i]) == (not conditions.violations)
        assert mask.tolist() == [True, False, False, False]

    def test_solve_batch_raises_with_point_index(self):
        grid = ScenarioGrid(alpha=[0.5, 0.5], catalog_size=[10**6, 50.0],
                            capacity=[10**3, 10.0])
        with pytest.raises(ExistenceConditionError, match="grid point 1"):
            solve_batch(grid)

    def test_check_conditions_false_records_mask(self):
        grid = ScenarioGrid(alpha=[0.5, 0.5], catalog_size=[10**6, 50.0],
                            capacity=[10**3, 10.0])
        batched = solve_batch(grid, check_conditions=False)
        assert batched.existence_ok.tolist() == [True, False]


class TestObservability:
    def test_solve_batch_reports_span_and_metrics(self):
        grid = ScenarioGrid.from_product(BASE, alpha=[0.2, 0.5, 0.8])
        with session() as active:
            solve_batch(grid, check_conditions=False)
        snap = active.snapshot()
        assert snap["counters"].get("solver.batch.grids") == 1.0
        assert snap["counters"].get("solver.batch.points") == 3.0
        assert "solver.batch.iterations" in snap["gauges"]
        assert "solver.batch" in snap["spans"]
