"""Tests: the optimizer with the piece-wise linear cost model.

Lemma 1's convexity argument only needs a convex cost, so the exact
first-order and scalar-min solvers must work unchanged when eq. 3's
linear cost is replaced by the Fortz-Thorup-style piece-wise variant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import grid_search_strategy
from repro.core import PerformanceCostModel, Scenario
from repro.core.cost import PiecewiseLinearCostModel
from repro.core.optimizer import lemma2_coefficients, optimal_strategy
from repro.errors import ParameterError


def make_model(alpha: float = 0.6) -> PerformanceCostModel:
    scenario = Scenario(alpha=alpha)
    unit = scenario.unit_cost * scenario.cost_scale
    cost = PiecewiseLinearCostModel(
        breakpoints=[scenario.capacity / 3, 2 * scenario.capacity / 3],
        slopes=[0.5 * unit, 1.0 * unit, 2.0 * unit],
    )
    return PerformanceCostModel(
        performance=scenario.performance_model(), cost=cost, alpha=alpha
    )


class TestObjectiveWithPiecewiseCost:
    def test_objective_evaluates(self):
        model = make_model()
        values = [float(model.objective(x)) for x in (0.0, 300.0, 700.0, 1000.0)]
        assert all(np.isfinite(values))

    def test_derivative_matches_numeric_off_breakpoints(self):
        model = make_model()
        eps = 1e-4
        for x in (100.0, 500.0, 900.0):
            numeric = (
                float(model.objective(x + eps)) - float(model.objective(x - eps))
            ) / (2 * eps)
            assert float(model.derivative(x)) == pytest.approx(numeric, rel=1e-4)

    def test_derivative_vectorized(self):
        model = make_model()
        xs = np.array([100.0, 500.0, 900.0])
        vec = model.derivative(xs)
        for x, v in zip(xs, vec):
            assert v == pytest.approx(float(model.derivative(float(x))), rel=1e-12)

    def test_objective_convex(self):
        model = make_model()
        xs = np.linspace(0.0, model.capacity, 401)
        values = np.array([float(model.objective(float(x))) for x in xs])
        assert np.all(np.diff(values, 2) >= -1e-9)


class TestSolversWithPiecewiseCost:
    @pytest.mark.parametrize("method", ["first-order", "scalar-min"])
    def test_solver_agrees_with_grid(self, method):
        model = make_model()
        solved = optimal_strategy(model, method=method)
        brute = grid_search_strategy(model, resolution=20_001)
        assert solved.objective_value <= brute.objective_value + 1e-6
        assert solved.level == pytest.approx(brute.level, abs=1e-3)

    def test_auto_method_works(self):
        strategy = optimal_strategy(make_model())
        assert 0.0 <= strategy.level <= 1.0

    def test_lemma2_rejects_piecewise(self):
        with pytest.raises(ParameterError):
            lemma2_coefficients(make_model())
        with pytest.raises(ParameterError):
            optimal_strategy(make_model(), method="lemma2")

    def test_steeper_tail_lowers_optimum(self):
        """A steeper late segment pins the optimum at/below the kink
        relative to the flat linear model of equal early slope."""
        scenario = Scenario(alpha=0.6)
        linear_level = scenario.solve().level
        piecewise_level = optimal_strategy(make_model(alpha=0.6)).level
        assert piecewise_level <= max(linear_level, 2 / 3) + 0.01
