"""Unit tests for repro.baselines — fixed strategies and heuristics."""

from __future__ import annotations

import pytest

from repro.baselines import (
    fixed_level_strategy,
    fully_coordinated_strategy,
    grid_search_strategy,
    marginal_value_level,
    non_coordinated_strategy,
)
from repro.core.optimizer import optimal_strategy
from repro.core.scenario import Scenario
from repro.errors import ParameterError

BASE = Scenario(alpha=0.7)


class TestFixedStrategies:
    def test_non_coordinated(self):
        strategy = non_coordinated_strategy(BASE.model())
        assert strategy.level == 0.0
        assert strategy.storage == 0.0
        assert strategy.method == "fixed"

    def test_fully_coordinated(self):
        strategy = fully_coordinated_strategy(BASE.model())
        assert strategy.level == 1.0
        assert strategy.storage == BASE.capacity

    def test_fixed_level_objective_value(self):
        model = BASE.model()
        strategy = fixed_level_strategy(model, 0.4)
        assert strategy.objective_value == pytest.approx(
            float(model.objective(0.4 * model.capacity)), rel=1e-12
        )

    def test_fixed_level_validation(self):
        with pytest.raises(ParameterError):
            fixed_level_strategy(BASE.model(), 1.5)


class TestGridSearch:
    def test_agrees_with_analytical_optimizer(self):
        for alpha in (0.3, 0.6, 0.9):
            model = Scenario(alpha=alpha).model()
            analytical = optimal_strategy(model)
            brute = grid_search_strategy(model, resolution=20_001)
            assert brute.level == pytest.approx(analytical.level, abs=1e-3)
            assert brute.objective_value <= analytical.objective_value + 1e-6

    def test_alpha_zero_boundary(self):
        model = Scenario(alpha=0.0).model()
        assert grid_search_strategy(model).level == 0.0

    def test_method_label(self):
        assert grid_search_strategy(BASE.model()).method == "grid-search"

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ParameterError):
            grid_search_strategy(BASE.model(), resolution=1)


class TestMarginalGreedy:
    def test_close_to_optimum_on_convex_objective(self):
        model = BASE.model()
        greedy = marginal_value_level(model, step_slots=1.0)
        best = optimal_strategy(model)
        # Within one step of the optimum in storage terms.
        assert greedy.storage == pytest.approx(best.storage, abs=2.0)

    def test_stops_at_zero_when_cost_dominates(self):
        model = Scenario(alpha=0.01).model()
        greedy = marginal_value_level(model)
        assert greedy.level == pytest.approx(0.0, abs=1e-3)

    def test_method_label(self):
        assert marginal_value_level(BASE.model()).method == "marginal-greedy"

    def test_rejects_bad_step(self):
        with pytest.raises(ParameterError):
            marginal_value_level(BASE.model(), step_slots=0.0)
