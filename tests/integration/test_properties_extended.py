"""Property-based tests for the extension subsystems (ccn, hetero, adaptive)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import IRMWorkload, ZipfModel
from repro.ccn import CCNNetwork, Name, NoCache
from repro.core import (
    CoordinationCostModel,
    LatencyModel,
    ProvisioningStrategy,
    ZipfPopularity,
)
from repro.hetero import HeterogeneousModel, optimize_shares, optimize_uniform_level
from repro.topology import ring_topology

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestNameProperties:
    @common_settings
    @given(
        components=st.lists(
            st.text(
                alphabet=st.characters(blacklist_characters="/", min_codepoint=33),
                min_size=1,
                max_size=8,
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_uri_roundtrip(self, components):
        name = Name.from_components(components)
        assert Name(str(name)) == name

    @common_settings
    @given(
        a=st.lists(st.sampled_from("abcxyz"), min_size=0, max_size=4),
        b=st.lists(st.sampled_from("abcxyz"), min_size=0, max_size=4),
    )
    def test_prefix_relation_consistent(self, a, b):
        name_a = Name.from_components(a)
        name_b = Name.from_components(b)
        if name_a.is_prefix_of(name_b):
            assert len(name_a) <= len(name_b)
            assert name_b.prefix(len(name_a)) == name_a


class TestCCNConservation:
    @common_settings
    @given(
        level=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
        requests=st.integers(min_value=10, max_value=200),
    )
    def test_every_request_completes_exactly_once(self, level, seed, requests):
        """Flow balance: with long PIT lifetimes and a reliable origin,
        every issued Interest completes exactly once."""
        topology = ring_topology(5)
        net = CCNNetwork(
            topology, origin_gateway=topology.nodes[0], enroute=NoCache()
        )
        net.install_strategy(
            ProvisioningStrategy(capacity=8, n_routers=5, level=level)
        )
        workload = IRMWorkload(ZipfModel(0.8, 300), topology.nodes, seed=seed)
        metrics = net.run_workload(workload, requests, interarrival_ms=3.0)
        assert metrics.requests_issued == requests
        assert metrics.requests_completed == requests
        assert metrics.origin_productions <= requests
        assert 0.0 <= metrics.origin_load <= 1.0
        # Producer distance is at least 0 and bounded by diameter + origin leg.
        if metrics.interest_hops:
            assert min(metrics.interest_hops) >= 0
            assert max(metrics.interest_hops) <= topology.diameter_hops() * 2 + 1

    @common_settings
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_latencies_non_negative(self, seed):
        topology = ring_topology(4)
        net = CCNNetwork(
            topology, origin_gateway=topology.nodes[0], default_capacity=5
        )
        workload = IRMWorkload(ZipfModel(1.0, 100), topology.nodes, seed=seed)
        metrics = net.run_workload(workload, 60, interarrival_ms=0.5)
        assert all(lat >= 0.0 for lat in metrics.latencies_ms)


class TestHeterogeneousProperties:
    @common_settings
    @given(
        caps=st.lists(
            st.floats(min_value=10.0, max_value=500.0), min_size=2, max_size=8
        ),
        alpha=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_free_never_loses_to_uniform(self, caps, alpha):
        model = HeterogeneousModel(
            ZipfPopularity(0.8, 10**5),
            LatencyModel(1.0, 3.0, 13.0),
            caps,
            CoordinationCostModel(unit_cost=1e-4),
            alpha,
        )
        free = optimize_shares(model, restarts=2)
        uniform = optimize_uniform_level(model, resolution=201)
        assert free.objective_value <= uniform.objective_value + 1e-9

    @common_settings
    @given(
        caps=st.lists(
            st.floats(min_value=10.0, max_value=500.0), min_size=2, max_size=8
        ),
        level=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_objective_bounded_by_latency_tiers_plus_cost(self, caps, level):
        model = HeterogeneousModel(
            ZipfPopularity(0.8, 10**5),
            LatencyModel(1.0, 3.0, 13.0),
            caps,
            CoordinationCostModel(unit_cost=1e-4),
            1.0,  # pure latency
        )
        value = model.objective(model.uniform_shares(level))
        assert 1.0 - 1e-9 <= value <= 13.0 + 1e-9

    @common_settings
    @given(
        caps=st.lists(
            st.floats(min_value=10.0, max_value=300.0), min_size=2, max_size=6
        )
    )
    def test_origin_load_decreases_with_uniform_level(self, caps):
        model = HeterogeneousModel(
            ZipfPopularity(0.8, 10**5),
            LatencyModel(1.0, 3.0, 13.0),
            caps,
            CoordinationCostModel(unit_cost=1e-4),
            0.5,
        )
        loads = [
            model.origin_load(model.uniform_shares(level))
            for level in (0.0, 0.5, 1.0)
        ]
        assert loads[0] >= loads[1] - 1e-9 >= loads[2] - 2e-9


class TestSimulatorModelAgreement:
    @common_settings
    @given(
        exponent=st.one_of(
            st.floats(min_value=0.3, max_value=0.95),
            st.floats(min_value=1.05, max_value=1.6),
        ),
        level=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=4, max_value=10),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_origin_load_matches_exact_model(self, exponent, level, n, seed):
        """For ANY valid (s, l, n), the simulated origin load equals the
        exact discrete model's 1 - F(c + (n-1)x) within sampling noise."""
        from repro.core import LatencyModel, RoutingPerformanceModel, ZipfPopularity
        from repro.simulation import SteadyStateSimulator

        capacity, catalog, requests = 20, 1_500, 6_000
        topology = ring_topology(n)
        strategy = ProvisioningStrategy(
            capacity=capacity, n_routers=n, level=level
        )
        workload = IRMWorkload(
            ZipfModel(exponent, catalog), topology.nodes, seed=seed
        )
        metrics = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        ).run(workload, requests)
        perf = RoutingPerformanceModel(
            popularity=ZipfPopularity(exponent, catalog),
            latency=LatencyModel(1.0, 2.0, 3.0),
            capacity=float(capacity),
            n_routers=n,
        )
        predicted = float(
            perf.origin_load(float(strategy.coordinated_slots), exact=True)
        )
        assert metrics.origin_load == pytest.approx(predicted, abs=0.035)


class TestEstimatorProperties:
    @common_settings
    @given(
        true_s=st.floats(min_value=0.3, max_value=1.7),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_mle_recovers_exponent(self, true_s, seed):
        from repro.adaptive import estimate_exponent

        model = ZipfModel(true_s, 2_000)
        ranks = model.sample(20_000, np.random.default_rng(seed))
        estimate = estimate_exponent(ranks, 2_000)
        assert estimate == pytest.approx(true_s, abs=0.08)

    @common_settings
    @given(
        memory=st.floats(min_value=0.0, max_value=0.9),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_windowed_equals_batch_on_single_observation(self, memory, seed):
        from repro.adaptive import ExponentEstimator, estimate_exponent

        model = ZipfModel(0.9, 1_000)
        ranks = model.sample(5_000, np.random.default_rng(seed))
        estimator = ExponentEstimator(1_000, memory=memory)
        estimator.observe(ranks)
        assert estimator.estimate() == pytest.approx(
            estimate_exponent(ranks, 1_000), abs=1e-6
        )
