"""Integration tests for the repro CLI."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestList:
    def test_lists_all_experiments(self):
        code, text = run_cli("list")
        assert code == 0
        for name in ("table1", "figure4", "figure13", "model-vs-sim"):
            assert name in text


class TestRun:
    def test_run_table1(self):
        code, text = run_cli("run", "table1")
        assert code == 0
        assert "Table I" in text
        assert "0.3333" in text
        assert "0.5000" in text

    def test_run_table2(self):
        code, text = run_cli("run", "table2")
        assert code == 0
        assert "CERNET" in text

    def test_run_table4(self):
        code, text = run_cli("run", "table4")
        assert code == 0
        assert "2.2842" in text

    def test_run_theorem2(self):
        code, text = run_cli("run", "theorem2")
        assert code == 0
        assert "Figure thm2" in text

    def test_unknown_experiment(self):
        code, _ = run_cli("run", "figure99")
        assert code == 2


class TestSolve:
    def test_solve_default(self):
        code, text = run_cli("solve")
        assert code == 0
        assert "optimal level" in text
        assert "G_O" in text

    def test_solve_alpha_one(self):
        code, text = run_cli("solve", "--alpha", "1.0")
        assert code == 0
        assert "first-order" in text

    def test_solve_custom_parameters(self):
        code, text = run_cli(
            "solve", "--alpha", "0.6", "--gamma", "8", "-s", "1.2", "-n", "50"
        )
        assert code == 0
        assert "l* = " in text


class TestRunFormats:
    def test_csv_format(self):
        code, text = run_cli("run", "table2", "--format", "csv")
        assert code == 0
        assert text.startswith("Topology,|V|,|E|")

    def test_json_format(self):
        import json

        code, text = run_cli("run", "table4", "--format", "json")
        assert code == 0
        doc = json.loads(text)
        assert doc["kind"] == "table"

    def test_output_file(self, tmp_path):
        path = tmp_path / "t2.csv"
        code, text = run_cli("run", "table2", "--format", "csv", "-o", str(path))
        assert code == 0
        assert text == ""  # written to the file, not stdout
        assert path.read_text().startswith("Topology")

    def test_run_all_rejects_nondefault_format(self):
        code, _ = run_cli("run", "all", "--format", "csv")
        assert code == 2


class TestAsciiFormat:
    def test_figure_renders_as_chart(self):
        code, text = run_cli("run", "theorem2", "--format", "ascii")
        assert code == 0
        assert "|" in text and "+--" in text
        assert "x: n; y: l* (closed form)" in text

    def test_table_falls_back_to_text(self):
        code, text = run_cli("run", "table2", "--format", "ascii")
        assert code == 0
        assert "Table II" in text


class TestReportCommand:
    def test_report_selected(self, tmp_path):
        path = tmp_path / "r.md"
        code, text = run_cli(
            "report", "--experiments", "table2", "-o", str(path)
        )
        assert code == 0
        assert text == ""
        assert "Table II" in path.read_text()

    def test_report_unknown_experiment(self):
        code, _ = run_cli("report", "--experiments", "bogus")
        assert code == 2


class TestTopologyCommand:
    def test_shows_table_iii_values(self):
        code, text = run_cli("topology", "abilene")
        assert code == 0
        assert "22.3000 ms" in text
        assert "2.4182 hops" in text

    def test_unknown_topology(self):
        code, _ = run_cli("topology", "arpanet")
        assert code == 2


class TestSensitivityCommand:
    def test_reports_range_and_profile(self):
        code, text = run_cli("sensitivity", "--gamma", "5")
        assert code == 0
        assert "sensitive alpha range" in text
        assert "d l*/d alpha" in text


class TestProtocolCommand:
    def test_reports_messages(self):
        code, text = run_cli("protocol", "abilene", "--level", "0.5")
        assert code == 0
        assert "state messages" in text
        assert "directive messages" in text

    def test_rejects_bad_level(self):
        code, _ = run_cli("protocol", "abilene", "--level", "1.5")
        assert code == 2

    def test_unknown_topology(self):
        code, _ = run_cli("protocol", "nonexistent")
        assert code == 2


class TestApproxCommand:
    def test_custodian_solve(self):
        code, text = run_cli(
            "approx", "abilene", "-c", "100", "--level", "0.5", "-N", "5000"
        )
        assert code == 0
        assert "custodian approximation" in text
        assert "origin load" in text
        assert "fixed point" in text

    def test_en_route_solve(self):
        code, text = run_cli(
            "approx", "geant", "--mode", "en-route", "-c", "50", "-N", "2000"
        )
        assert code == 0
        assert "en-route approximation" in text

    def test_unknown_topology(self):
        code, _ = run_cli("approx", "arpanet")
        assert code == 2

    def test_rejects_bad_level(self):
        code, _ = run_cli("approx", "abilene", "--level", "1.5")
        assert code == 2

    def test_run_solver_flag_reaches_the_sweep(self):
        code, text = run_cli(
            "run", "figure4", "--solver", "approx", "--format", "csv"
        )
        assert code == 0
        assert text.startswith("alpha,")


class TestCcnCommand:
    def test_single_run(self):
        code, text = run_cli(
            "ccn", "abilene", "--requests", "2000", "--level", "0.5"
        )
        assert code == 0
        assert "batched packet-level run" in text
        assert "outcomes" in text
        assert "aggregated" in text
        assert "req/s" in text

    def test_queue_stats_line(self):
        code, text = run_cli(
            "ccn",
            "abilene",
            "--requests",
            "2000",
            "--interarrival",
            "0.05",
            "--queue-size",
            "2",
            "--read-penalty",
            "1.0",
        )
        assert code == 0
        assert "queue" in text

    def test_sweep(self):
        code, text = run_cli(
            "ccn", "abilene", "--sweep", "--requests", "1500"
        )
        assert code == 0
        assert "analytic l* (eq. 5/7)" in text
        assert "measured l^* [independent arrivals]" in text
        assert "measured l^* [contended + queue 2]" in text

    def test_rejects_bad_level(self):
        code, _ = run_cli("ccn", "abilene", "--level", "1.5")
        assert code == 2

    def test_unknown_topology(self):
        code, _ = run_cli("ccn", "atlantis")
        assert code == 2


class TestServeCommand:
    def write_stream(self, tmp_path, lines):
        path = tmp_path / "stream.txt"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_serves_a_measurement_file(self, tmp_path):
        source = self.write_stream(
            tmp_path,
            ["", "1 1 2 3 1 5 2 1 8 1", "1 2 1 1 4 1 13 2 1 1"],
        )
        code, text = run_cli(
            "serve", source, "-N", "100", "-c", "10", "-n", "5"
        )
        assert code == 0
        assert "idle" in text
        assert "cold" in text
        assert "3 ticks: 1 cold" in text
        assert "provisioned level l*" in text

    def test_dead_band_skips_are_reported(self, tmp_path):
        line = "1 1 2 3 1 5 2 1 8 1"
        source = self.write_stream(tmp_path, [line, line, line])
        code, text = run_cli(
            "serve", source, "-N", "100", "-c", "10", "-n", "5",
            "--dead-band", "0.5",
        )
        assert code == 0
        assert "skipped" in text
        assert "2 skipped" in text

    def test_limit_stops_early(self, tmp_path):
        source = self.write_stream(tmp_path, ["1 2 3"] * 5)
        code, text = run_cli(
            "serve", source, "-N", "100", "-c", "10", "-n", "5",
            "--limit", "2",
        )
        assert code == 0
        assert "2 ticks" in text

    def test_missing_source_fails_cleanly(self, tmp_path):
        code, _ = run_cli("serve", str(tmp_path / "nope.txt"))
        assert code == 2

    def test_bad_measurement_line_fails_cleanly(self, tmp_path):
        source = self.write_stream(tmp_path, ["1 2 three"])
        code, _ = run_cli("serve", source, "-N", "100", "-c", "10", "-n", "5")
        assert code == 2

    def test_obs_events_file(self, tmp_path):
        source = self.write_stream(tmp_path, ["1 1 2 3 1", "2 1 1 4 1"])
        events = tmp_path / "events.jsonl"
        code, _ = run_cli(
            "serve", source, "-N", "100", "-c", "10", "-n", "5",
            "--obs", str(events),
        )
        assert code == 0
        text = events.read_text()
        assert "service.tick" in text
        assert "service.solve_latency_s" in text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])
