"""Integration: the analytical model against the event simulator.

These tests drive both halves of the library end-to-end — analytical
tier fractions / origin loads (eq. 2) versus measured steady-state
simulation on real reconstructed topologies — and assert they agree.
This is the strongest internal validation the reproduction has.
"""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import (
    LatencyModel,
    ProvisioningStrategy,
    RoutingPerformanceModel,
    ZipfPopularity,
)
from repro.simulation import SteadyStateSimulator
from repro.topology import load_topology, ring_topology


@pytest.mark.parametrize("level", [0.0, 0.5, 1.0])
def test_origin_load_model_vs_simulation_us_a(level):
    """Analytical 1 - F(c + (n-1)x) equals the simulated origin load."""
    topology = load_topology("us-a")
    capacity, catalog = 50, 5_000
    exponent = 0.8
    strategy = ProvisioningStrategy(
        capacity=capacity, n_routers=topology.n_routers, level=level
    )
    simulator = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )
    workload = IRMWorkload(ZipfModel(exponent, catalog), topology.nodes, seed=11)
    metrics = simulator.run(workload, 40_000)

    perf = RoutingPerformanceModel(
        popularity=ZipfPopularity(exponent, catalog),
        latency=LatencyModel(1.0, 2.0, 3.0),  # latencies irrelevant here
        capacity=float(capacity),
        n_routers=topology.n_routers,
    )
    predicted = float(perf.origin_load(strategy.coordinated_slots, exact=True))
    assert metrics.origin_load == pytest.approx(predicted, abs=0.015)


@pytest.mark.parametrize("level", [0.25, 0.75])
def test_tier_fractions_model_vs_simulation(level):
    from repro.core.performance import tier_fractions

    topology = load_topology("abilene")
    capacity, catalog, exponent = 40, 4_000, 1.2
    strategy = ProvisioningStrategy(
        capacity=capacity, n_routers=topology.n_routers, level=level
    )
    simulator = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )
    workload = IRMWorkload(ZipfModel(exponent, catalog), topology.nodes, seed=5)
    metrics = simulator.run(workload, 40_000)

    popularity = ZipfPopularity(exponent, catalog)
    local, peer, origin = tier_fractions(
        float(strategy.coordinated_slots),
        float(capacity),
        topology.n_routers,
        popularity,
        exact=True,
    )
    # The simulator counts a rank owned by the requesting router itself
    # as a LOCAL hit, while the model books the whole coordinated range
    # as PEER; shift 1/n of the peer mass accordingly.
    n = topology.n_routers
    local_adjusted = local + peer / n
    peer_adjusted = peer * (n - 1) / n
    assert metrics.local_fraction == pytest.approx(local_adjusted, abs=0.02)
    assert metrics.peer_fraction == pytest.approx(peer_adjusted, abs=0.02)
    assert metrics.origin_load == pytest.approx(origin, abs=0.02)


def test_mean_hops_ordering_matches_model_prediction():
    """More coordination must reduce simulated origin load and keep the
    mean fetch distance consistent with the model's tier ordering."""
    topology = ring_topology(8)
    capacity, catalog = 20, 2_000
    workload = IRMWorkload(ZipfModel(0.8, catalog), topology.nodes, seed=3)
    results = {}
    for level in (0.0, 1.0):
        strategy = ProvisioningStrategy(
            capacity=capacity, n_routers=8, level=level
        )
        simulator = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        )
        results[level] = simulator.run(workload, 20_000)
    assert results[1.0].origin_load < results[0.0].origin_load
    # Full coordination stores 8x the distinct contents.
    assert results[1.0].peer_fraction > results[0.0].peer_fraction


def test_coordination_message_accounting_end_to_end():
    topology = load_topology("abilene")
    strategy = ProvisioningStrategy(
        capacity=10, n_routers=topology.n_routers, level=0.5
    )
    simulator = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="directives"
    )
    workload = IRMWorkload(ZipfModel(0.8, 1000), topology.nodes, seed=0)
    metrics = simulator.run(workload, 100)
    # n collection + n*x directives = 11 + 11*5.
    assert metrics.coordination_messages == 11 + 55


def test_gains_positive_on_every_paper_topology():
    """The optimal strategy beats non-coordination on all four networks."""
    from repro.core import Scenario
    from repro.topology import topology_parameters

    for name in ("abilene", "cernet", "geant", "us-a"):
        params = topology_parameters(load_topology(name))
        scenario = Scenario(
            alpha=0.8,
            n_routers=params.n_routers,
            unit_cost=params.unit_cost_ms,
            peer_delta=params.mean_hops,
        )
        strategy, gains = scenario.solve_with_gains()
        assert strategy.level > 0.0, name
        assert gains.origin_load_reduction > 0.0, name
        assert gains.routing_improvement > 0.0, name
