"""Property-based tests (hypothesis) on the core invariants.

These sweep random valid parameter draws through the model stack and
assert the paper's structural claims hold everywhere in the admissible
region, not just at the evaluation grid points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import (
    LatencyModel,
    ProvisioningStrategy,
    Scenario,
    ZipfPopularity,
    closed_form_alpha1,
    optimal_strategy,
)
from repro.core.optimizer import lemma2_coefficients, solve_lemma2
from repro.core.performance import tier_fractions

# Exponents in the admissible set, bounded away from the singularity.
exponents = st.one_of(
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=1.05, max_value=1.95),
)
alphas = st.floats(min_value=0.01, max_value=1.0)
gammas = st.floats(min_value=0.1, max_value=50.0)
router_counts = st.integers(min_value=2, max_value=300)

common_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_scenario(alpha, gamma, s, n) -> Scenario:
    return Scenario(
        alpha=alpha,
        gamma=gamma,
        exponent=s,
        n_routers=n,
        catalog_size=10**6,
        capacity=10**3,
    )


class TestOptimizerProperties:
    @common_settings
    @given(alpha=alphas, gamma=gammas, s=exponents, n=router_counts)
    def test_level_always_in_unit_interval(self, alpha, gamma, s, n):
        strategy = optimal_strategy(
            make_scenario(alpha, gamma, s, n).model(), check_conditions=False
        )
        assert 0.0 <= strategy.level <= 1.0

    @common_settings
    @given(alpha=alphas, gamma=gammas, s=exponents, n=router_counts)
    def test_optimum_no_worse_than_boundaries(self, alpha, gamma, s, n):
        model = make_scenario(alpha, gamma, s, n).model()
        best = optimal_strategy(model, check_conditions=False)
        tol = 1e-9 * max(1.0, abs(best.objective_value))
        assert best.objective_value <= float(model.objective(0.0)) + tol
        assert best.objective_value <= float(model.objective(model.capacity)) + tol

    @common_settings
    @given(gamma=gammas, s=exponents, n=router_counts)
    def test_scale_free_property(self, gamma, s, n):
        """Theorem 2: scaling all latencies leaves the optimum unchanged."""
        base = make_scenario(1.0, gamma, s, n)
        scaled = base.replace(
            access_latency=base.access_latency * 7.5,
            peer_delta=base.peer_delta * 7.5,
        )
        level_a = optimal_strategy(base.model(), check_conditions=False).level
        level_b = optimal_strategy(scaled.model(), check_conditions=False).level
        assert level_b == pytest.approx(level_a, rel=1e-9, abs=1e-12)

    @common_settings
    @given(gamma=gammas, s=exponents, n=router_counts)
    def test_lemma2_root_unique_bracket(self, gamma, s, n):
        """Theorem 1: the Lemma 2 residual brackets exactly one root."""
        scenario = make_scenario(0.5, gamma, s, n)
        coeffs = lemma2_coefficients(scenario.model())
        root = solve_lemma2(coeffs)
        assert 0.0 < root < 1.0
        eps = 1e-6
        if eps < root < 1 - eps:
            assert coeffs.residual(root - eps) >= coeffs.residual(root + eps)

    @common_settings
    @given(gamma=gammas, s=exponents, n=router_counts)
    def test_closed_form_in_unit_interval(self, gamma, s, n):
        assert 0.0 < closed_form_alpha1(gamma, n, s) <= 1.0

    @common_settings
    @given(
        gamma=gammas,
        s=exponents,
        n=router_counts,
        a1=alphas,
        a2=alphas,
    )
    def test_monotone_in_alpha(self, gamma, s, n, a1, a2):
        assume(abs(a1 - a2) > 1e-6)
        lo, hi = min(a1, a2), max(a1, a2)
        level_lo = optimal_strategy(
            make_scenario(lo, gamma, s, n).model(), check_conditions=False
        ).level
        level_hi = optimal_strategy(
            make_scenario(hi, gamma, s, n).model(), check_conditions=False
        ).level
        assert level_hi >= level_lo - 1e-9


class TestModelProperties:
    @common_settings
    @given(
        s=exponents,
        level=st.floats(min_value=0.0, max_value=1.0),
        n=router_counts,
    )
    def test_tier_fractions_sum_to_one(self, s, level, n):
        popularity = ZipfPopularity(s, 10**6)
        local, peer, origin = tier_fractions(
            level * 1000.0, 1000.0, n, popularity
        )
        assert local + peer + origin == pytest.approx(1.0, abs=1e-9)
        assert min(local, peer, origin) >= -1e-12

    @common_settings
    @given(s=exponents, gamma=gammas)
    def test_latency_bounded_by_tiers(self, s, gamma):
        scenario = make_scenario(0.5, gamma, s, 20)
        perf = scenario.performance_model()
        lat = scenario.latency()
        for x in np.linspace(0.0, 1000.0, 7):
            t = float(perf.mean_latency(float(x)))
            assert lat.d0 - 1e-9 <= t <= lat.d2 + 1e-9

    @common_settings
    @given(s=exponents)
    def test_continuous_cdf_monotone(self, s):
        popularity = ZipfPopularity(s, 10**6)
        xs = np.linspace(1.0, 10**6, 50)
        values = np.asarray(popularity.cdf_continuous(xs))
        assert np.all(np.diff(values) >= -1e-12)
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[-1] == pytest.approx(1.0, abs=1e-9)


class TestStrategyProperties:
    @common_settings
    @given(
        capacity=st.integers(min_value=1, max_value=200),
        n=st.integers(min_value=1, max_value=50),
        level=st.floats(min_value=0.0, max_value=1.0),
        assignment=st.sampled_from(["round-robin", "contiguous"]),
    )
    def test_partition_invariants(self, capacity, n, level, assignment):
        strategy = ProvisioningStrategy(
            capacity=capacity, n_routers=n, level=level, assignment=assignment
        )
        # Slots conserve capacity.
        assert strategy.local_slots + strategy.coordinated_slots == capacity
        # Unique contents formula.
        assert (
            strategy.unique_contents
            == strategy.local_slots + n * strategy.coordinated_slots
        )
        # Every router is at capacity.
        for router in range(n):
            assert len(strategy.contents_of_router(router)) == capacity
        # Coordinated ranks partition exactly.
        owners = dict(strategy.iter_assignments())
        assert set(owners) == set(strategy.coordinated_ranks)

    @common_settings
    @given(
        d0=st.floats(min_value=0.1, max_value=100.0),
        peer=st.floats(min_value=0.01, max_value=100.0),
        origin=st.floats(min_value=0.0, max_value=1000.0),
    )
    def test_latency_model_ratios_consistent(self, d0, peer, origin):
        latency = LatencyModel(d0, d0 + peer, d0 + peer + origin)
        assert latency.gamma == pytest.approx(origin / peer, rel=1e-9)
        assert latency.peer_delta == pytest.approx(peer, rel=1e-9)
        assert (
            latency.scaled(3.0).gamma == pytest.approx(latency.gamma, rel=1e-9)
        )


class TestSimulatorProperties:
    @common_settings
    @given(
        level=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_request_served_exactly_once(self, level, seed):
        from repro.catalog import IRMWorkload, ZipfModel
        from repro.simulation import SteadyStateSimulator
        from repro.topology import ring_topology

        topology = ring_topology(5)
        strategy = ProvisioningStrategy(capacity=8, n_routers=5, level=level)
        simulator = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        )
        workload = IRMWorkload(ZipfModel(0.8, 500), topology.nodes, seed=seed)
        metrics = simulator.run(workload, 200)
        assert metrics.requests == 200
        assert (
            metrics.local_hits + metrics.peer_hits + metrics.origin_hits == 200
        )
        assert 0.0 <= metrics.origin_load <= 1.0
