"""Opt-in smoke tests: every example script runs to completion.

These execute the ``examples/`` scripts as subprocesses, which takes a
few minutes in total, so they are skipped unless ``REPRO_RUN_EXAMPLES``
is set:

.. code-block:: bash

    REPRO_RUN_EXAMPLES=1 pytest tests/integration/test_examples.py
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

run_examples = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_EXAMPLES"),
    reason="set REPRO_RUN_EXAMPLES=1 to run the example smoke tests",
)


def example_scripts() -> list[Path]:
    return sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {p.name for p in example_scripts()}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable's minimum; we ship more


@run_examples
@pytest.mark.parametrize(
    "script", example_scripts(), ids=lambda p: p.stem
)
def test_example_runs(script: Path):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
