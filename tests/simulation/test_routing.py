"""Unit tests for repro.simulation.routing — nearest-replica resolution."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError, TopologyError
from repro.simulation.routing import (
    NearestReplicaRouter,
    OriginModel,
    ServiceTier,
)
from repro.topology.graph import Topology


@pytest.fixture
def line() -> Topology:
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D")], name="line", link_latency_ms=2.0
    )


class TestOriginModel:
    def test_defaults(self):
        origin = OriginModel(gateway="B")
        assert origin.extra_hops == 1.0
        assert origin.extra_latency_ms == 50.0

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            OriginModel(gateway="B", extra_hops=-1.0)
        with pytest.raises(SimulationError):
            OriginModel(gateway="B", extra_latency_ms=-1.0)


class TestResolve:
    def test_local_wins(self, line):
        router = NearestReplicaRouter(line, origin=OriginModel("A"))
        decision = router.resolve("B", ["B", "C"])
        assert decision.tier == ServiceTier.LOCAL
        assert decision.server == "B"
        assert decision.hops == 0.0
        assert decision.latency_ms == 0.0

    def test_nearest_peer_selected(self, line):
        router = NearestReplicaRouter(line, origin=OriginModel("A"))
        decision = router.resolve("A", ["C", "D"])
        assert decision.tier == ServiceTier.PEER
        assert decision.server == "C"
        assert decision.hops == 2.0
        assert decision.latency_ms == pytest.approx(4.0)

    def test_origin_fallback(self, line):
        origin = OriginModel("D", extra_hops=1.0, extra_latency_ms=10.0)
        router = NearestReplicaRouter(line, origin=origin)
        decision = router.resolve("A", [])
        assert decision.tier == ServiceTier.ORIGIN
        assert decision.server is None
        assert decision.hops == pytest.approx(3.0 + 1.0)
        assert decision.latency_ms == pytest.approx(6.0 + 10.0)

    def test_latency_metric(self):
        """With the latency metric, a low-latency far hop can win."""
        topo = Topology.from_edges([("A", "B"), ("B", "C"), ("A", "C")])
        topo.graph.edges["A", "B"]["latency_ms"] = 10.0
        topo = Topology(topo.graph, name="t")
        router = NearestReplicaRouter(topo, origin=OriginModel("A"), metric="latency")
        decision = router.resolve("A", ["B"])
        # Path A-C-B (2 hops, 2 ms) beats direct A-B (1 hop, 10 ms).
        assert decision.latency_ms == pytest.approx(2.0)
        assert decision.hops == 2.0

    def test_unknown_metric_rejected(self, line):
        with pytest.raises(SimulationError):
            NearestReplicaRouter(line, metric="rtt")

    def test_unknown_gateway_rejected(self, line):
        with pytest.raises(TopologyError):
            NearestReplicaRouter(line, origin=OriginModel("Z"))

    def test_unknown_client_rejected(self, line):
        router = NearestReplicaRouter(line)
        with pytest.raises(TopologyError):
            router.resolve("Z", [])

    def test_default_origin_is_most_central(self, line):
        """B and C tie for closeness on the line; the first wins."""
        router = NearestReplicaRouter(line)
        assert router.origin.gateway == "B"

    def test_deterministic_tie_breaking(self, line):
        router = NearestReplicaRouter(line, origin=OriginModel("A"))
        # B and D are both 1 hop from C; the earlier-indexed holder wins.
        decision = router.resolve("C", ["B", "D"])
        assert decision.server == "B"
        decision2 = router.resolve("C", ["D", "B"])
        assert decision2.server == "B"


class TestDistances:
    def test_origin_distance(self, line):
        origin = OriginModel("D", extra_hops=2.0, extra_latency_ms=30.0)
        router = NearestReplicaRouter(line, origin=origin)
        hops, latency = router.origin_distance("A")
        assert hops == pytest.approx(5.0)
        assert latency == pytest.approx(36.0)

    def test_mean_peer_distance_matches_topology(self, line):
        router = NearestReplicaRouter(line)
        hops, latency = router.mean_peer_distance()
        assert hops == pytest.approx(line.mean_pairwise_hops())
        assert latency == pytest.approx(line.mean_pairwise_latency())

    def test_mean_peer_distance_single_node(self):
        solo = Topology.from_edges([], name="solo") if False else None
        # Single-node topology built directly.
        import networkx as nx

        graph = nx.Graph()
        graph.add_node("only")
        topo = Topology(graph)
        router = NearestReplicaRouter(topo, origin=OriginModel("only"))
        assert router.mean_peer_distance() == (0.0, 0.0)
