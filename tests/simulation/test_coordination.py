"""Unit tests for repro.simulation.coordination — placement + messages."""

from __future__ import annotations

import pytest

from repro.core.strategy import ProvisioningStrategy
from repro.errors import ParameterError
from repro.simulation.coordination import Coordinator


def make(level=0.5, capacity=10, n=4, assignment="round-robin"):
    strategy = ProvisioningStrategy(
        capacity=capacity, n_routers=n, level=level, assignment=assignment
    )
    routers = [f"R{i}" for i in range(n)]
    return Coordinator(strategy, routers)


class TestPlacement:
    def test_local_ranks_everywhere(self):
        coordinator = make(level=0.3)
        placement = coordinator.placement()
        local_expected = frozenset(range(1, 8))
        for node, (local, _) in placement.items():
            assert local == local_expected

    def test_coordinated_ranks_partitioned(self):
        coordinator = make(level=0.5)
        placement = coordinator.placement()
        seen: set[int] = set()
        for _, (_, coordinated) in placement.items():
            assert not (coordinated & seen)
            seen |= coordinated
        assert seen == set(coordinator.strategy.coordinated_ranks)

    def test_build_routers_capacity(self):
        fleet = make(level=0.5, capacity=10).build_routers()
        for router in fleet.values():
            assert router.capacity == 10

    def test_holders_index_consistency(self):
        coordinator = make(level=0.5)
        index = coordinator.holders_index()
        fleet = coordinator.build_routers()
        for rank, holders in index.items():
            for node in holders:
                assert fleet[node].holds(rank)

    def test_holders_local_on_all(self):
        coordinator = make(level=0.3, n=4)
        index = coordinator.holders_index()
        for rank in coordinator.strategy.local_ranks:
            assert len(index[rank]) == 4

    def test_holders_coordinated_on_one(self):
        coordinator = make(level=0.5, n=4)
        index = coordinator.holders_index()
        for rank in coordinator.strategy.coordinated_ranks:
            assert len(index[rank]) == 1


class TestMessages:
    def test_non_coordinated_costs_nothing(self):
        report = make(level=0.0).report()
        assert report.collection_messages == 0
        assert report.directive_messages == 0
        assert report.consensus_messages == 0
        assert report.total_messages == 0

    def test_directive_messages_linear(self):
        report = make(level=0.5, capacity=10, n=4).report()
        assert report.directive_messages == 4 * 5  # n*x
        assert report.collection_messages == 4
        assert report.total_messages == 24

    def test_consensus_is_spanning_tree(self):
        report = make(level=0.5, n=4).report()
        assert report.consensus_messages == 3

    def test_two_router_consensus_is_one_message(self):
        """The motivating example: one message between R1 and R2."""
        report = make(level=1.0, capacity=1, n=2).report()
        assert report.consensus_messages == 1


class TestValidation:
    def test_router_count_mismatch(self):
        strategy = ProvisioningStrategy(capacity=10, n_routers=4, level=0.5)
        with pytest.raises(ParameterError):
            Coordinator(strategy, ["R0", "R1"])

    def test_duplicate_routers(self):
        strategy = ProvisioningStrategy(capacity=10, n_routers=2, level=0.5)
        with pytest.raises(ParameterError):
            Coordinator(strategy, ["R0", "R0"])
