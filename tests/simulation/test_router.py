"""Unit tests for repro.simulation.router — the CCN router store."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError, SimulationError
from repro.simulation.cache import LRUCache, StaticCache
from repro.simulation.router import CCNRouter


class TestBasicStore:
    def test_capacity_sums_partitions(self):
        router = CCNRouter("R", LRUCache(3), LRUCache(2))
        assert router.capacity == 5

    def test_capacity_without_coordinated(self):
        router = CCNRouter("R", LRUCache(3))
        assert router.capacity == 3

    def test_holds_checks_both_partitions(self):
        router = CCNRouter(
            "R", StaticCache(2, frozenset({1})), StaticCache(2, frozenset({5}))
        )
        assert router.holds(1)
        assert router.holds(5)
        assert not router.holds(9)

    def test_lookup_prefers_local(self):
        local = StaticCache(2, frozenset({1}))
        coordinated = StaticCache(2, frozenset({1}))
        router = CCNRouter("R", local, coordinated)
        assert router.lookup(1)
        assert local.hits == 1
        assert coordinated.hits == 0  # untouched on a local hit

    def test_lookup_falls_through_to_coordinated(self):
        local = StaticCache(2, frozenset({1}))
        coordinated = StaticCache(2, frozenset({5}))
        router = CCNRouter("R", local, coordinated)
        assert router.lookup(5)
        assert local.misses == 1
        assert coordinated.hits == 1

    def test_lookup_miss_everywhere(self):
        router = CCNRouter("R", StaticCache(1, frozenset({1})))
        assert not router.lookup(7)

    def test_stored_ranks_union(self):
        router = CCNRouter(
            "R", StaticCache(2, frozenset({1, 2})), StaticCache(1, frozenset({9}))
        )
        assert router.stored_ranks() == frozenset({1, 2, 9})

    def test_admit_local(self):
        router = CCNRouter("R", LRUCache(1))
        router.admit_local(4)
        assert router.holds(4)

    def test_admit_coordinated_requires_partition(self):
        router = CCNRouter("R", LRUCache(1))
        with pytest.raises(SimulationError):
            router.admit_coordinated(4)

    def test_repr(self):
        router = CCNRouter("R7", LRUCache(3))
        assert "R7" in repr(router)


class TestProvisionedFactory:
    def test_builds_static_partitions(self):
        router = CCNRouter.provisioned(
            "R", frozenset({1, 2}), frozenset({10, 11})
        )
        assert router.holds(1) and router.holds(11)
        assert router.capacity == 4

    def test_explicit_capacities(self):
        router = CCNRouter.provisioned(
            "R",
            frozenset({1}),
            frozenset(),
            local_capacity=5,
            coordinated_capacity=3,
        )
        assert router.capacity == 8

    def test_zero_coordinated_capacity_omits_partition(self):
        router = CCNRouter.provisioned("R", frozenset({1}), frozenset())
        assert router.coordinated_store is None

    def test_rejects_undersized_capacities(self):
        with pytest.raises(ParameterError):
            CCNRouter.provisioned(
                "R", frozenset({1, 2}), frozenset(), local_capacity=1
            )
        with pytest.raises(ParameterError):
            CCNRouter.provisioned(
                "R", frozenset(), frozenset({1, 2}), coordinated_capacity=1
            )
