"""Replacement-policy edge cases the batched kernel must mirror exactly.

Four corners the main equivalence matrix can sweep past without
stressing: fully coordinated provisioning (capacity-0 local
partitions), requests whose first-hop router *is* the custodian,
Perfect-LFU's never-displace-hotter rule under frequency ties, and the
random policy's generator stream staying aligned between the scalar
and batched paths.  Plus failure injection on a dynamic fleet, which
must restart stores empty on fresh streams and invalidate the kernel.
"""

from __future__ import annotations

import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import IRMWorkload, Request, TraceWorkload
from repro.errors import SimulationError
from repro.simulation.cache import PerfectLFUCache
from repro.simulation.failures import fail_stores
from repro.simulation.simulator import DynamicSimulator
from repro.topology import ring_topology

POLICIES = ("lru", "lfu", "perfect-lfu", "fifo", "random")


def make_simulator(topology, policy, *, capacity=8, level=0.5, seed=42):
    return DynamicSimulator(
        topology,
        capacity=capacity,
        policy=policy,
        coordination_level=level,
        seed=seed,
    )


def store_counters(simulator):
    counters = {}
    for node, router in simulator.fleet.items():
        coordinated = router.coordinated_store
        counters[node] = (
            router.local_store.hits,
            router.local_store.misses,
            coordinated.hits if coordinated is not None else None,
            coordinated.misses if coordinated is not None else None,
        )
    return counters


class TestCapacityZeroLocalPartition:
    """``level=1.0``: every local store has zero slots but still counts."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_local_stores_stay_empty_but_count_misses(self, policy):
        topology = ring_topology(5, link_latency_ms=2.0)
        batched_sim = make_simulator(topology, policy, level=1.0)
        scalar_sim = make_simulator(topology, policy, level=1.0)
        workload = lambda: IRMWorkload(
            ZipfModel(0.9, 300), topology.nodes, seed=9
        )

        batched = batched_sim.run(workload(), 2500)
        scalar = scalar_sim.run_scalar(workload(), 2500)

        assert batched == scalar
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        for simulator in (batched_sim, scalar_sim):
            for router in simulator.fleet.values():
                assert router.local_store.contents == frozenset()
                assert router.local_store.hits == 0
                assert router.local_store.misses > 0

    def test_zero_capacity_admit_is_a_full_noop(self):
        # CachePolicy.admit returns before any bookkeeping at capacity
        # 0; a Perfect-LFU store must not even count the frequency.
        store = PerfectLFUCache(0)
        assert store.admit(3) is None
        assert store._global_frequency == {}
        assert store._clock == 0


class TestCustodianSelfRequests:
    """Requests whose client is the rank's custodian (code-4 flow)."""

    def test_custodian_self_miss_pays_origin_not_peer(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        n = topology.n_routers
        client = topology.nodes[1]
        # rank % n == 1 makes ``client`` its own custodian.
        trace = [Request(client, 1 + n * i) for i in range(6)]
        assert all(r.rank % n == 1 for r in trace)

        batched_sim = make_simulator(topology, "lru", level=1.0)
        scalar_sim = make_simulator(topology, "lru", level=1.0)
        batched = batched_sim.run(TraceWorkload(trace * 2), len(trace) * 2)
        scalar = scalar_sim.run_scalar(
            TraceWorkload(trace * 2), len(trace) * 2
        )

        assert batched == scalar
        # First pass over 6 distinct ranks misses at the custodian
        # itself: the origin serves them (no peer leg exists).
        assert batched.peer_hits == 0
        assert batched.origin_hits == 6
        # Second pass hits the client's own coordinated partition:
        # LOCAL-tier hits that never touch another router.
        assert batched.local_hits == 6
        assert batched.served_by == {}
        assert store_counters(batched_sim) == store_counters(scalar_sim)

    def test_own_coordinated_hit_does_not_admit_locally(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        client = topology.nodes[1]
        rank = 1 + topology.n_routers  # custodian == client
        # capacity=8, level=0.5: 4 local + 4 coordinated slots.  The
        # first request admits ``rank`` to both partitions; the four
        # fillers (custodians elsewhere) then evict it from the local
        # LRU, so the final request hits the client's own coordinated
        # partition — and must NOT copy the rank back locally.
        fillers = [2, 3, 4, 6]
        assert all(f % topology.n_routers != 1 for f in fillers)
        trace = (
            [Request(client, rank)]
            + [Request(client, f) for f in fillers]
            + [Request(client, rank)]
        )
        simulator = make_simulator(topology, "lru", level=0.5)
        metrics = simulator.run(TraceWorkload(trace), len(trace))
        router = simulator.fleet[client]
        assert rank in router.coordinated_store.contents
        assert rank not in router.local_store.contents
        assert router.local_store.contents == frozenset(fillers)
        # The own-coordinated hit still serves at the LOCAL tier.
        assert metrics.local_hits == 1


class TestPerfectLFUNeverDisplacesHotter:
    def test_tied_frequency_does_not_displace(self):
        store = PerfectLFUCache(1)
        store.admit(1)
        assert store.contents == frozenset({1})
        # Rank 2 arrives with global frequency 1 == rank 1's: the rule
        # is strict (``<=`` keeps the incumbent), so nothing changes.
        assert store.admit(2) is None
        assert store.contents == frozenset({1})
        # A second request for rank 2 makes it strictly hotter; now it
        # displaces rank 1 (the returned victim).
        assert store.admit(2) == 1
        assert store.contents == frozenset({2})

    def test_batched_matches_scalar_under_heavy_ties(self):
        # A near-uniform workload over a small catalog produces constant
        # frequency ties; victim selection must stay identical.
        topology = ring_topology(4, link_latency_ms=2.0)
        batched_sim = make_simulator(topology, "perfect-lfu", capacity=4)
        scalar_sim = make_simulator(topology, "perfect-lfu", capacity=4)
        workload = lambda: IRMWorkload(
            ZipfModel(0.05, 40), topology.nodes, seed=13
        )
        batched = batched_sim.run(workload(), 3000)
        scalar = scalar_sim.run_scalar(workload(), 3000)
        assert batched == scalar
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        for node in topology.nodes:
            b, s = batched_sim.fleet[node], scalar_sim.fleet[node]
            assert (
                b.local_store._global_frequency
                == s.local_store._global_frequency
            )
            assert b.local_store._clock == s.local_store._clock


class TestRandomStreamEquivalence:
    def test_generator_state_identical_after_batched_run(self):
        # Same seed, same requests: after a batched run every random
        # store's generator must sit at the same stream position as
        # after the scalar run — the kernel consumed exactly the same
        # draws in the same order.
        topology = ring_topology(5, link_latency_ms=2.0)
        batched_sim = make_simulator(topology, "random", seed=31)
        scalar_sim = make_simulator(topology, "random", seed=31)
        workload = lambda: IRMWorkload(
            ZipfModel(0.8, 200), topology.nodes, seed=4
        )
        assert batched_sim.run(workload(), 3000) == scalar_sim.run_scalar(
            workload(), 3000
        )
        for node in topology.nodes:
            b, s = batched_sim.fleet[node], scalar_sim.fleet[node]
            for tag in ("local_store", "coordinated_store"):
                b_store, s_store = getattr(b, tag), getattr(s, tag)
                assert (
                    b_store._rng.bit_generator.state
                    == s_store._rng.bit_generator.state
                ), (node, tag)
                assert b_store._items == s_store._items


class TestDynamicFailureInjection:
    def run_pair(self, fail_at, policy="lru"):
        topology = ring_topology(5, link_latency_ms=2.0)
        failed = topology.nodes[:2]
        workload = lambda seed: IRMWorkload(
            ZipfModel(0.9, 300), topology.nodes, seed=seed
        )
        sims = []
        for scalar in (False, True):
            simulator = make_simulator(topology, policy, seed=17)
            runner = simulator.run_scalar if scalar else simulator.run
            runner(workload(1), fail_at)
            fail_stores(simulator, failed)
            runner(workload(2), 2000)
            sims.append(simulator)
        return sims, failed

    def test_failed_stores_restart_empty_on_fresh_streams(self):
        topology = ring_topology(5, link_latency_ms=2.0)
        simulator = make_simulator(topology, "random", seed=5)
        node = topology.nodes[0]
        before = simulator.fleet[node]
        workload = IRMWorkload(ZipfModel(0.9, 300), topology.nodes, seed=1)
        simulator.run(workload, 1500)
        assert before.local_store.contents  # warmed up

        fail_stores(simulator, [node])
        after = simulator.fleet[node]
        assert after is not before
        assert after.local_store.contents == frozenset()
        assert after.coordinated_store.contents == frozenset()
        # The restarted store must not replay its predecessor's draws.
        assert (
            after.local_store._rng.bit_generator.state
            != before.local_store._rng.bit_generator.state
        )
        assert simulator._kernel is None

    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_batched_and_scalar_agree_across_failure(self, policy):
        (batched_sim, scalar_sim), failed = self.run_pair(1500, policy)
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        for node in failed:
            b, s = batched_sim.fleet[node], scalar_sim.fleet[node]
            assert b.local_store.contents == s.local_store.contents
            assert (
                b.coordinated_store.contents == s.coordinated_store.contents
            )

    def test_unknown_router_rejected(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology, "lru")
        with pytest.raises(SimulationError):
            fail_stores(simulator, ["nowhere"])
