"""Unit tests for repro.simulation.cache — replacement policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.simulation.cache import (
    FIFOCache,
    LFUCache,
    LRUCache,
    RandomCache,
    StaticCache,
    make_policy,
)


class TestStaticCache:
    def test_fixed_contents(self):
        cache = StaticCache(3, frozenset({1, 2, 3}))
        assert 1 in cache
        assert 4 not in cache
        assert cache.contents == frozenset({1, 2, 3})

    def test_admit_is_noop(self):
        cache = StaticCache(3, frozenset({1, 2}))
        assert cache.admit(9) is None
        assert 9 not in cache

    def test_lookup_statistics(self):
        cache = StaticCache(2, frozenset({1}))
        assert cache.lookup(1) is True
        assert cache.lookup(2) is False
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_reset_statistics(self):
        cache = StaticCache(2, frozenset({1}))
        cache.lookup(1)
        cache.reset_statistics()
        assert cache.hits == 0
        assert cache.hit_ratio == 0.0
        assert 1 in cache

    def test_rejects_overfull(self):
        with pytest.raises(SimulationError):
            StaticCache(1, frozenset({1, 2}))

    def test_rejects_bad_ranks(self):
        with pytest.raises(ParameterError):
            StaticCache(3, frozenset({0}))

    def test_zero_capacity(self):
        cache = StaticCache(0)
        assert cache.lookup(1) is False
        assert cache.admit(1) is None
        assert len(cache) == 0


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.admit(1)
        cache.admit(2)
        evicted = cache.admit(3)
        assert evicted == 1
        assert cache.contents == frozenset({2, 3})

    def test_touch_refreshes_recency(self):
        cache = LRUCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.lookup(1)  # 1 becomes most recent
        assert cache.admit(3) == 2

    def test_admit_existing_is_touch(self):
        cache = LRUCache(2)
        cache.admit(1)
        cache.admit(2)
        assert cache.admit(1) is None  # refresh, no eviction
        assert cache.admit(3) == 2

    def test_len(self):
        cache = LRUCache(5)
        for r in (1, 2, 3):
            cache.admit(r)
        assert len(cache) == 3


class TestLFUCache:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.admit(1)
        cache.admit(2)
        for _ in range(5):
            cache.lookup(1)
        assert cache.admit(3) == 2

    def test_lru_tiebreak(self):
        cache = LFUCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.lookup(1)
        cache.lookup(2)  # equal frequencies; 1 is older
        assert cache.admit(3) == 1

    def test_mostly_holds_popular_ranks_under_zipf(self):
        """In-cache LFU keeps most (not all — tail churn) of the head."""
        rng = np.random.default_rng(0)
        ranks = np.arange(1, 101)
        weights = ranks**-1.2
        weights /= weights.sum()
        cache = LFUCache(10)
        for rank in rng.choice(ranks, size=30_000, p=weights):
            if not cache.lookup(int(rank)):
                cache.admit(int(rank))
        top = set(range(1, 11))
        assert len(cache.contents & top) >= 5

    def test_frequency_resets_on_reinsert(self):
        cache = LFUCache(1)
        cache.admit(1)
        for _ in range(10):
            cache.lookup(1)
        cache.admit(2)  # evicts 1 despite its high frequency (capacity 1)
        assert cache.contents == frozenset({2})


class TestPerfectLFUCache:
    def test_converges_to_exact_top_ranks_under_zipf(self):
        """Global-frequency LFU realizes the paper's non-coordinated
        steady state: exactly the top-c ranks (paper §II)."""
        from repro.simulation.cache import PerfectLFUCache

        rng = np.random.default_rng(0)
        ranks = np.arange(1, 101)
        weights = ranks**-1.2
        weights /= weights.sum()
        cache = PerfectLFUCache(10)
        for rank in rng.choice(ranks, size=50_000, p=weights):
            if not cache.lookup(int(rank)):
                cache.admit(int(rank))
        top = set(range(1, 11))
        assert len(cache.contents & top) >= 9

    def test_never_displaces_hotter_item(self):
        from repro.simulation.cache import PerfectLFUCache

        cache = PerfectLFUCache(1)
        cache.admit(1)
        for _ in range(5):
            cache.lookup(1)
        assert cache.admit(2) is None  # colder item cannot displace
        assert cache.contents == frozenset({1})

    def test_hotter_newcomer_displaces(self):
        from repro.simulation.cache import PerfectLFUCache

        cache = PerfectLFUCache(1)
        cache.admit(1)
        # Rank 2 misses repeatedly, accumulating global frequency.
        for _ in range(3):
            cache.lookup(2)
            cache.admit(2)
        assert cache.contents == frozenset({2})

    def test_factory_name(self):
        from repro.simulation.cache import PerfectLFUCache

        assert isinstance(make_policy("perfect-lfu", 4), PerfectLFUCache)


class TestFIFOCache:
    def test_insertion_order_eviction(self):
        cache = FIFOCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.lookup(1)  # FIFO ignores recency
        assert cache.admit(3) == 1

    def test_admit_existing_no_reorder(self):
        cache = FIFOCache(2)
        cache.admit(1)
        cache.admit(2)
        cache.admit(1)  # already present: no reinsertion
        assert cache.admit(3) == 1


class TestRandomCache:
    def test_capacity_respected(self):
        cache = RandomCache(3, seed=1)
        for r in range(1, 20):
            cache.admit(r)
        assert len(cache) == 3

    def test_deterministic_under_seed(self):
        def run(seed):
            cache = RandomCache(3, seed=seed)
            for r in range(1, 30):
                cache.admit(r)
            return cache.contents

        assert run(5) == run(5)

    def test_evicted_rank_reported(self):
        cache = RandomCache(1, seed=0)
        cache.admit(1)
        assert cache.admit(2) == 1

    def test_internal_position_consistency(self):
        cache = RandomCache(5, seed=2)
        for r in range(1, 100):
            cache.admit(r)
            for stored in cache.contents:
                assert stored in cache


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUCache), ("lfu", LFUCache), ("fifo", FIFOCache),
        ("random", RandomCache), ("LRU", LRUCache),
    ])
    def test_factory(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_unknown_policy(self):
        with pytest.raises(ParameterError):
            make_policy("belady", 4)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ParameterError):
            make_policy("lru", -1)
