"""Shard-merge equivalence suite for the region-sharded simulator.

The contract under test (DESIGN.md §14): the merged metrics and the
merged observability snapshot of a sharded run are a pure function of
``(topology, scenario, seed)`` — bit-identical across shard counts
{serial in-process, 1, 2, 8}, including runs with a mid-stream store
failure on one shard.
"""

import numpy as np
import pytest

from repro import obs
from repro.catalog import ZipfModel
from repro.catalog.workload import IRMWorkload
from repro.errors import ParameterError, SimulationError
from repro.simulation import (
    DynamicSimulator,
    MetricsCollector,
    OriginModel,
    RegionFailure,
    SimulationMetrics,
    run_sharded,
)
from repro.simulation.sharded import deterministic_view
from repro.topology import generate_hierarchy

REQUESTS = 12_000
WARMUP = 800


@pytest.fixture(scope="module")
def hierarchy():
    # 8 regions so shards=8 exercises one region per worker.
    return generate_hierarchy(11, routers=72, regions=8)


def observed_run(hierarchy, shards, **kwargs):
    """Run sharded under a capturing session; return (result, view)."""
    defaults = dict(
        requests=REQUESTS,
        capacity=8,
        coordination_level=0.5,
        warmup=WARMUP,
        seed=5,
        shards=shards,
    )
    defaults.update(kwargs)
    with obs.session() as session:
        result = run_sharded(hierarchy, **defaults)
        view = deterministic_view(session.snapshot())
    return result, view


class TestShardInvariance:
    @pytest.fixture(scope="class")
    def baseline(self, hierarchy):
        return observed_run(hierarchy, None)

    @pytest.mark.parametrize("shards", [1, 2, 8])
    def test_dynamic_merge_is_bit_identical(self, hierarchy, baseline, shards):
        result, view = observed_run(hierarchy, shards)
        assert result.metrics == baseline[0].metrics
        assert result.region_metrics == baseline[0].region_metrics
        assert view == baseline[1]

    def test_view_compares_counters_gauges_histograms_and_spans(self, baseline):
        _, view = baseline
        assert view["counters"]["sim.dynamic.requests"] == REQUESTS
        assert view["counters"]["sim.sharded.regions"] == 8
        assert view["histograms"]["sim.dynamic.batch_size"]
        assert view["span_counts"]["sim.dynamic.run"] == 8
        # Wall-clock and pool-geometry values must be projected out.
        assert "sim.sharded.shards" not in view["gauges"]
        assert not any(name.endswith(".rps") for name in view["gauges"])
        assert not any(name.startswith("zipf.") for name in view["counters"])

    @pytest.mark.parametrize("shards", [1, 8])
    def test_steady_merge_is_bit_identical(self, hierarchy, shards):
        serial, serial_view = observed_run(
            hierarchy, None, mode="steady", warmup=0
        )
        sharded, sharded_view = observed_run(
            hierarchy, shards, mode="steady", warmup=0
        )
        assert sharded.metrics == serial.metrics
        assert sharded_view == serial_view

    def test_different_seed_changes_the_result(self, hierarchy, baseline):
        other, _ = observed_run(hierarchy, None, seed=6)
        assert other.metrics != baseline[0].metrics

    def test_result_shape(self, hierarchy, baseline):
        result, _ = baseline
        assert result.regions == 8
        assert result.shards == 0  # serial in-process path
        assert result.requests == REQUESTS
        assert result.warmup == WARMUP
        assert result.metrics.requests == REQUESTS
        assert len(result.region_metrics) == 8
        assert result.kernel_seconds > 0
        assert result.kernel_rps > 0


class TestFailureInvariance:
    @pytest.fixture(scope="class")
    def failure(self, hierarchy):
        return RegionFailure(
            region=3, after=900, nodes=hierarchy.region_nodes(3)[:4]
        )

    def test_failure_is_shard_count_invariant(self, hierarchy, failure):
        serial, serial_view = observed_run(hierarchy, None, failures=[failure])
        sharded, sharded_view = observed_run(hierarchy, 8, failures=[failure])
        assert sharded.metrics == serial.metrics
        assert sharded_view == serial_view
        assert serial_view["counters"]["sim.failures.injections"] == 1
        assert serial_view["counters"]["sim.failures.stores_failed"] == 4

    def test_failure_changes_only_the_failed_region(
        self, hierarchy, failure
    ):
        clean, _ = observed_run(hierarchy, None)
        failed, _ = observed_run(hierarchy, None, failures=[failure])
        assert failed.metrics != clean.metrics
        for region in range(8):
            same = failed.region_metrics[region] == clean.region_metrics[region]
            assert same == (region != failure.region)

    def test_failure_validation(self, hierarchy):
        with pytest.raises(ParameterError, match="region 9"):
            run_sharded(
                hierarchy,
                requests=100,
                capacity=4,
                shards=None,
                failures=[RegionFailure(region=9, after=10, nodes=(1,))],
            )
        with pytest.raises(ParameterError, match="not in region"):
            run_sharded(
                hierarchy,
                requests=100,
                capacity=4,
                shards=None,
                failures=[
                    RegionFailure(
                        region=0, after=10, nodes=hierarchy.region_nodes(1)[:1]
                    )
                ],
            )
        with pytest.raises(ParameterError, match="one failure per region"):
            fail = RegionFailure(
                region=0, after=10, nodes=hierarchy.region_nodes(0)[:1]
            )
            run_sharded(
                hierarchy,
                requests=8_000,
                capacity=4,
                shards=None,
                failures=[fail, fail],
            )
        with pytest.raises(SimulationError, match="outside its stream"):
            run_sharded(
                hierarchy,
                requests=80,  # region 0 gets 10 requests; failure at 900
                capacity=4,
                shards=None,
                failures=[
                    RegionFailure(
                        region=0, after=900, nodes=hierarchy.region_nodes(0)[:1]
                    )
                ],
            )


class TestSingleRegionEquivalence:
    def test_matches_a_direct_simulator_run(self):
        """One region sharded == a plain DynamicSimulator on its subgraph."""
        hierarchy = generate_hierarchy(2, routers=20, regions=1)
        result = run_sharded(
            hierarchy,
            requests=4_000,
            capacity=6,
            coordination_level=0.5,
            warmup=200,
            seed=9,
            shards=None,
        )
        simulator_seed, workload_seed = (
            np.random.SeedSequence(9).spawn(1)[0].spawn(2)
        )
        region = hierarchy.region_subtopology(0)
        backbone_hops, backbone_latency = hierarchy.origin_cost_of(0)
        simulator = DynamicSimulator(
            region,
            capacity=6,
            coordination_level=0.5,
            origin=OriginModel(
                hierarchy.gateway_of(0),
                extra_hops=backbone_hops + 1.0,
                extra_latency_ms=backbone_latency + 50.0,
            ),
            seed=simulator_seed,
        )
        workload = IRMWorkload(
            ZipfModel(0.8, 10_000), region.nodes, seed=workload_seed
        )
        direct = simulator.run(workload, 4_000, warmup=200)
        assert result.metrics == direct


class TestRunShardedValidation:
    def test_requires_a_hierarchical_topology(self):
        from repro.topology import load_topology

        with pytest.raises(ParameterError, match="HierarchicalTopology"):
            run_sharded(load_topology("abilene"), requests=10, capacity=4)

    def test_rejects_bad_parameters(self, hierarchy):
        with pytest.raises(ParameterError):
            run_sharded(hierarchy, requests=0, capacity=4, shards=None)
        with pytest.raises(ParameterError):
            run_sharded(hierarchy, requests=10, capacity=0, shards=None)
        with pytest.raises(ParameterError):
            run_sharded(
                hierarchy, requests=10, capacity=4, exponent=-1.0, shards=None
            )
        with pytest.raises(ParameterError, match="mode"):
            run_sharded(
                hierarchy, requests=10, capacity=4, mode="magic", shards=None
            )
        with pytest.raises(ParameterError, match="warmup"):
            run_sharded(
                hierarchy,
                requests=10,
                capacity=4,
                mode="steady",
                warmup=5,
                shards=None,
            )
        with pytest.raises(ParameterError, match="shards"):
            run_sharded(hierarchy, requests=10, capacity=4, shards="many")
        with pytest.raises(ParameterError, match="shard count"):
            run_sharded(hierarchy, requests=10, capacity=4, shards=-2)


class TestMetricsMerge:
    def test_merge_equals_joint_accounting(self):
        a = SimulationMetrics(
            requests=10,
            local_hits=4,
            peer_hits=3,
            origin_hits=3,
            total_hops=12.5,
            total_latency_ms=40.0,
            coordination_messages=7,
            served_by={"r1": 2, "r2": 1},
        )
        b = SimulationMetrics(
            requests=6,
            local_hits=1,
            peer_hits=2,
            origin_hits=3,
            total_hops=9.25,
            total_latency_ms=31.0,
            coordination_messages=3,
            served_by={"r2": 1, "r3": 1},
        )
        collector = MetricsCollector()
        collector.merge(a)
        collector.merge(b)
        merged = collector.summary()
        assert merged.requests == 16
        assert merged.local_hits == 5
        assert merged.peer_hits == 5
        assert merged.origin_hits == 6
        assert merged.total_hops == 12.5 + 9.25
        assert merged.total_latency_ms == 40.0 + 31.0
        assert merged.coordination_messages == 10
        assert merged.served_by == {"r1": 2, "r2": 2, "r3": 1}

    def test_merge_into_fresh_collector_is_identity(self):
        a = SimulationMetrics(
            requests=3,
            local_hits=1,
            peer_hits=1,
            origin_hits=1,
            total_hops=2.0,
            total_latency_ms=5.0,
            coordination_messages=0,
            served_by={"r": 1},
        )
        collector = MetricsCollector()
        collector.merge(a)
        assert collector.summary() == a


class TestKernelTableGuards:
    def test_dynamic_kernel_rejects_oversized_tables(self):
        from repro.simulation import DynamicSimulator
        from repro.topology import ring_topology

        simulator = DynamicSimulator(ring_topology(16), capacity=2)
        workload = IRMWorkload(ZipfModel(0.8, 100), list(range(16)), seed=0)
        with pytest.raises(SimulationError, match="run_sharded"):
            from repro.simulation.dynamic_batch import DynamicKernel

            DynamicKernel(
                simulator.topology,
                simulator.router,
                "lru",
                2,
                0,
                table_limit_bytes=1024,
            )
        # Default budget admits the small topology.
        assert simulator.run(workload, 500, batched=True).requests == 500

    def test_steady_kernel_rejects_oversized_tables(self):
        from repro.core.strategy import ProvisioningStrategy
        from repro.simulation import SteadyStateSimulator
        from repro.simulation.batch import SteadyStateKernel
        from repro.topology import ring_topology

        topology = ring_topology(16)
        strategy = ProvisioningStrategy(
            capacity=4, n_routers=16, level=0.5
        )
        simulator = SteadyStateSimulator.from_strategy(topology, strategy)
        with pytest.raises(SimulationError, match="run_sharded"):
            SteadyStateKernel(
                topology,
                simulator.fleet,
                simulator.router,
                simulator._holders,
                table_limit_bytes=128,
            )

    def test_limit_must_be_positive(self):
        from repro.simulation.dynamic_batch import _require_table_budget

        with pytest.raises(SimulationError, match="positive"):
            _require_table_budget("DynamicKernel", 100, 0)


class TestShardResolution:
    def test_matches_resolve_parallel_sharded_mode(self, hierarchy):
        from repro.analysis.sweep import resolve_parallel
        from repro.obs import available_cpus
        from repro.simulation.sharded import _resolve_shards

        regions = hierarchy.region_count
        assert _resolve_shards("auto", regions, available_cpus()) == (
            resolve_parallel("auto", regions, sharded=True)
        )

    def test_explicit_counts_cap_at_regions(self):
        from repro.simulation.sharded import _resolve_shards

        assert _resolve_shards(None, 8, 4) == 0
        assert _resolve_shards(64, 8, 4) == 8
        assert _resolve_shards(2, 8, 4) == 2
        assert _resolve_shards("auto", 8, 4) == 4
        assert _resolve_shards("auto", 2, 4) == 2
