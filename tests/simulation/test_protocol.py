"""Unit tests for repro.simulation.protocol — distributed coordination."""

from __future__ import annotations

import pytest

from repro.core import ProvisioningStrategy
from repro.errors import ParameterError, TopologyError
from repro.simulation.protocol import DistributedCoordinator
from repro.topology import Topology, load_topology, star_topology


@pytest.fixture
def line() -> Topology:
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
    )


class TestTreeConstruction:
    def test_default_root_is_most_central(self, line):
        coordinator = DistributedCoordinator(line)
        assert coordinator.root in ("B", "C")

    def test_explicit_root(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        assert coordinator.root == "A"
        assert coordinator.tree_depth_hops("A") == 0
        assert coordinator.tree_depth_hops("D") == 3

    def test_unknown_root_rejected(self, line):
        with pytest.raises(TopologyError):
            DistributedCoordinator(line, root="Z")


class TestRound:
    def test_state_messages_are_spanning_tree(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        outcome = coordinator.run_round(strategy)
        assert outcome.state_messages == 3  # n - 1

    def test_non_coordinated_round_free_of_directives(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.0)
        outcome = coordinator.run_round(strategy)
        assert outcome.directive_messages == 0
        assert outcome.dissemination_latency_ms == 0.0
        assert outcome.placements == {}

    def test_every_coordinated_rank_placed(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        outcome = coordinator.run_round(strategy)
        assert set(outcome.placements) == set(strategy.coordinated_ranks)
        assert set(outcome.placements.values()) <= set(line.nodes)

    def test_directive_count_is_tree_path_weighted(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.25)
        # x = 1: one rank per router; depths from A are 0,1,2,3 -> 6.
        outcome = coordinator.run_round(strategy)
        assert outcome.directive_messages == 0 + 1 + 2 + 3

    def test_latency_accounting(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.25)
        outcome = coordinator.run_round(strategy)
        assert outcome.convergecast_latency_ms == pytest.approx(6.0)  # A..D
        assert outcome.dissemination_latency_ms == pytest.approx(6.0)
        assert outcome.round_latency_ms == pytest.approx(12.0)

    def test_total_messages(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.25)
        outcome = coordinator.run_round(strategy)
        assert outcome.total_messages == outcome.state_messages + outcome.directive_messages

    def test_router_count_mismatch_rejected(self, line):
        coordinator = DistributedCoordinator(line)
        with pytest.raises(ParameterError):
            coordinator.run_round(
                ProvisioningStrategy(capacity=4, n_routers=9, level=0.5)
            )


class TestLinearModelFidelity:
    def test_star_is_exact(self):
        """On a star rooted at the hub, every directive travels exactly
        one tree hop... except the hub's own (zero hops), so the real
        traffic is slightly BELOW the n·x linear model."""
        topology = star_topology(6)
        coordinator = DistributedCoordinator(topology, root=topology.nodes[0])
        strategy = ProvisioningStrategy(capacity=4, n_routers=6, level=0.5)
        error = coordinator.linear_model_error(strategy)
        assert -0.2 <= error <= 0.0

    def test_deeper_trees_exceed_linear_model(self, line):
        coordinator = DistributedCoordinator(line, root="A")
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        # Depths 0..3 average 1.5 > 1 -> more traffic than w·n·x books.
        assert coordinator.linear_model_error(strategy) > 0.0

    def test_zero_coordination_error_zero(self, line):
        coordinator = DistributedCoordinator(line)
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.0)
        assert coordinator.linear_model_error(strategy) == 0.0

    def test_real_topology_error_bounded(self):
        """On the paper's topologies the linear model is right within a
        small constant factor (mean tree depth ~ 2)."""
        for name in ("abilene", "geant"):
            topology = load_topology(name)
            coordinator = DistributedCoordinator(topology)
            strategy = ProvisioningStrategy(
                capacity=10, n_routers=topology.n_routers, level=0.5
            )
            error = coordinator.linear_model_error(strategy)
            assert -1.0 < error < 2.0, name
