"""Batched dynamic (replacement) kernel vs the scalar reference loop.

The dynamic kernel must be a pure optimization, like the steady-state
one (:mod:`tests.simulation.test_batch_equivalence`) but with a harder
contract: replacement-policy state evolves request by request, so the
batched path must leave every store with *identical* contents, internal
ordering/frequency bookkeeping, and random-stream positions — not just
identical metrics.  On dyadic-latency topologies (every link 2.0 ms)
equality is bitwise; on the geo-calibrated topologies the counts are
exact and float totals agree to ~1e-9 relative.
"""

from __future__ import annotations

import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import IRMWorkload, Request, TraceWorkload
from repro.errors import ParameterError, SimulationError
from repro.simulation.dynamic_batch import DynamicKernel
from repro.simulation.simulator import DynamicSimulator
from repro.topology import load_topology, ring_topology

POLICIES = ("lru", "lfu", "perfect-lfu", "fifo", "random")
LEVELS = (0.0, 0.5, 1.0)


def make_simulator(topology, policy, *, capacity=8, level=0.5, seed=42):
    return DynamicSimulator(
        topology,
        capacity=capacity,
        policy=policy,
        coordination_level=level,
        seed=seed,
    )


def make_workload(topology, *, seed=7, catalog=500):
    return IRMWorkload(ZipfModel(0.9, catalog), topology.nodes, seed=seed)


def store_counters(simulator):
    counters = {}
    for node, router in simulator.fleet.items():
        coordinated = router.coordinated_store
        counters[node] = (
            router.local_store.hits,
            router.local_store.misses,
            coordinated.hits if coordinated is not None else None,
            coordinated.misses if coordinated is not None else None,
        )
    return counters


def internal_state(simulator):
    """Every store's full private state, including RNG positions.

    Captures strictly more than ``contents``: recency/insertion order,
    frequency and last-used bookkeeping, eviction clocks, and the
    random policy's generator state.  Equality here means a batched
    segment is indistinguishable from a scalar one to any future
    request.
    """
    state = {}
    for node, router in simulator.fleet.items():
        for tag, store in (
            ("local", router.local_store),
            ("coordinated", router.coordinated_store),
        ):
            if store is None:
                state[node, tag] = None
                continue
            entry = {"contents": store.contents}
            order = getattr(store, "_order", None)
            if order is not None:
                entry["order"] = list(order)
            for attr in (
                "_frequency",
                "_last_used",
                "_global_frequency",
                "_stored",
                "_clock",
                "_items",
                "_positions",
            ):
                if hasattr(store, attr):
                    value = getattr(store, attr)
                    entry[attr] = (
                        value.copy() if hasattr(value, "copy") else value
                    )
            rng = getattr(store, "_rng", None)
            if rng is not None:
                entry["rng"] = repr(rng.bit_generator.state)
            state[node, tag] = entry
    return state


class TestBitwiseEquivalenceDyadicTopology:
    """Ring with 2.0 ms links: floats are dyadic, equality is exact."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("level", LEVELS)
    def test_metrics_stores_and_state_identical(self, policy, level):
        topology = ring_topology(6, link_latency_ms=2.0)
        batched_sim = make_simulator(topology, policy, level=level)
        scalar_sim = make_simulator(topology, policy, level=level)

        batched = batched_sim.run(make_workload(topology), 4000)
        scalar = scalar_sim.run_scalar(make_workload(topology), 4000)

        assert batched == scalar  # bitwise: counts, floats and served_by
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        assert internal_state(batched_sim) == internal_state(scalar_sim)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_warmup_boundary_mid_batch(self, policy):
        # 137 is not a multiple of 257, so the warmup cut falls inside
        # the first batch and the kernel must split its aggregation.
        topology = ring_topology(6, link_latency_ms=2.0)
        batched_sim = make_simulator(topology, policy)
        scalar_sim = make_simulator(topology, policy)

        batched = batched_sim.run(
            make_workload(topology), 3000, warmup=137, batch_size=257
        )
        scalar = scalar_sim.run_scalar(
            make_workload(topology), 3000, warmup=137, batch_size=257
        )

        assert batched == scalar
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        assert internal_state(batched_sim) == internal_state(scalar_sim)

    @pytest.mark.parametrize("batch_size", [1, 17, 1000, 100_000])
    def test_batch_size_does_not_change_metrics(self, batch_size):
        topology = ring_topology(6, link_latency_ms=2.0)
        reference = make_simulator(topology, "lru").run(
            make_workload(topology), 3000
        )
        chunked = make_simulator(topology, "lru").run(
            make_workload(topology), 3000, batch_size=batch_size
        )
        assert chunked == reference

    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_segment_continues_scalar(self, policy):
        # A batched run must leave the fleet in a state a scalar run can
        # continue from with no observable seam — and vice versa.
        topology = ring_topology(6, link_latency_ms=2.0)
        mixed = make_simulator(topology, policy)
        pure = make_simulator(topology, policy)

        workload = make_workload(topology)
        first = list(workload.batches(3000))

        class _Replay:
            def __init__(self, batches):
                self._batches = batches

            def batches(self, count, *, batch_size=65536):
                yield from self._batches

            def requests(self, count):
                for batch in self._batches:
                    yield from batch.requests()

        head = _Replay(first[:2])
        tail = _Replay(first[2:])
        head_count = sum(len(b) for b in first[:2])
        tail_count = 3000 - head_count

        mixed.run(head, head_count)
        mixed.run_scalar(tail, tail_count)
        pure.run_scalar(make_workload(topology), 3000)

        assert store_counters(mixed) == store_counters(pure)
        assert internal_state(mixed) == internal_state(pure)


class TestGeoTopologyEquivalence:
    """US-A latencies are not dyadic: counts exact, totals to 1e-9."""

    @pytest.mark.parametrize("policy", ["lru", "random"])
    def test_counts_exact_floats_close(self, policy):
        topology = load_topology("us-a")
        batched_sim = make_simulator(topology, policy, capacity=50, seed=3)
        scalar_sim = make_simulator(topology, policy, capacity=50, seed=3)

        workload = lambda: IRMWorkload(
            ZipfModel(0.8, 5_000), topology.nodes, seed=0
        )
        batched = batched_sim.run(workload(), 20_000, warmup=1000)
        scalar = scalar_sim.run_scalar(workload(), 20_000, warmup=1000)

        assert (batched.local_hits, batched.peer_hits, batched.origin_hits) == (
            scalar.local_hits,
            scalar.peer_hits,
            scalar.origin_hits,
        )
        assert batched.served_by == scalar.served_by
        assert batched.total_hops == scalar.total_hops  # integer-valued
        assert batched.total_latency_ms == pytest.approx(
            scalar.total_latency_ms, rel=1e-9
        )
        assert store_counters(batched_sim) == store_counters(scalar_sim)
        for (key, b_entry), s_entry in zip(
            sorted(
                internal_state(batched_sim).items(),
                key=lambda kv: repr(kv[0]),
            ),
            (
                entry
                for _, entry in sorted(
                    internal_state(scalar_sim).items(),
                    key=lambda kv: repr(kv[0]),
                )
            ),
        ):
            assert b_entry == s_entry, key


class TestRunModeSelection:
    def test_batched_requires_batch_api(self):
        topology = ring_topology(4, link_latency_ms=2.0)

        class DuckWorkload:
            """Pre-batch-API duck-typed workload (requests only)."""

            def requests(self, count):
                return iter(
                    Request(topology.nodes[i % 4], 1 + i % 5)
                    for i in range(count)
                )

        simulator = make_simulator(topology, "lru")
        with pytest.raises(SimulationError):
            simulator.run(DuckWorkload(), 10, batched=True)
        # default mode silently takes the reference path
        metrics = simulator.run(DuckWorkload(), 10)
        assert metrics == make_simulator(topology, "lru").run_scalar(
            DuckWorkload(), 10
        )

    def test_unknown_client_raises_both_paths(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        workload = TraceWorkload([Request("nowhere", 1)])
        with pytest.raises(SimulationError):
            make_simulator(topology, "lru").run(workload, 1)
        with pytest.raises(SimulationError):
            make_simulator(topology, "lru").run_scalar(workload, 1)

    def test_negative_warmup_rejected(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology, "lru")
        with pytest.raises(ParameterError):
            simulator.run(make_workload(topology), 10, warmup=-1)


class TestKernelValidation:
    def test_unknown_policy_rejected(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology, "lru")
        with pytest.raises(SimulationError):
            DynamicKernel(topology, simulator.router, "static", 4, 4)

    def test_negative_slots_rejected(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology, "lru")
        with pytest.raises(SimulationError):
            DynamicKernel(topology, simulator.router, "lru", -1, 4)

    def test_run_is_one_shot(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology, "lru")
        kernel = DynamicKernel(
            topology,
            simulator.router,
            "lru",
            simulator._local_slots,
            simulator._coordinated_slots,
        )
        run = kernel.start_run(simulator.fleet)
        run.finish()
        with pytest.raises(SimulationError):
            run.finish()
        batch = make_workload(topology).sample_batch(4)
        with pytest.raises(SimulationError):
            run.process(batch)
