"""Batched steady-state kernel vs the scalar reference implementation.

The batched path must be a pure optimization: for any workload seed it
produces the same :class:`SimulationMetrics` and the same per-partition
content-store statistics as one ``resolve`` per request.  On topologies
whose latencies are dyadic floats (every link 2.0 ms) summation order
cannot round differently, so equality is bitwise; on the geo-calibrated
paper topologies the integer counts are exact and the float totals agree
to ~1e-9 relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import (
    IRMWorkload,
    LocalityWorkload,
    Request,
    SequenceWorkload,
    TraceWorkload,
)
from repro.core.strategy import ProvisioningStrategy
from repro.errors import SimulationError
from repro.simulation.metrics import MetricsCollector
from repro.simulation.simulator import DynamicSimulator, SteadyStateSimulator
from repro.topology import load_topology, ring_topology


def make_simulator(topology, *, capacity=12, level=0.5):
    strategy = ProvisioningStrategy(
        capacity=capacity, n_routers=topology.n_routers, level=level
    )
    return SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )


def workload_factories(topology):
    model = ZipfModel(0.8, 400)
    nodes = topology.nodes
    return {
        "irm": lambda: IRMWorkload(model, nodes, seed=11),
        "sequence": lambda: SequenceWorkload(
            [(node, [1 + i, 9 + 2 * i, 60 + i]) for i, node in enumerate(nodes)]
        ),
        "locality": lambda: LocalityWorkload(
            model, nodes, locality=0.5, window=16, seed=5
        ),
        "trace": lambda: TraceWorkload(
            [
                Request(nodes[i % len(nodes)], 1 + (i * 13) % 300)
                for i in range(4000)
            ]
        ),
    }


def store_counters(simulator):
    counters = {}
    for node, router in simulator.fleet.items():
        coordinated = router.coordinated_store
        counters[node] = (
            router.local_store.hits,
            router.local_store.misses,
            coordinated.hits if coordinated is not None else None,
            coordinated.misses if coordinated is not None else None,
        )
    return counters


class TestBitwiseEquivalenceDyadicTopology:
    """Ring with 2.0 ms links: floats are dyadic, equality is exact."""

    @pytest.mark.parametrize("name", ["irm", "sequence", "locality", "trace"])
    def test_metrics_identical(self, name):
        topology = ring_topology(6, link_latency_ms=2.0)
        factory = workload_factories(topology)[name]
        batched_sim = make_simulator(topology)
        scalar_sim = make_simulator(topology)

        batched = batched_sim.run(factory(), 4000)
        scalar = scalar_sim.run_scalar(factory(), 4000)

        assert batched == scalar  # bitwise: counts, floats and served_by
        assert store_counters(batched_sim) == store_counters(scalar_sim)

    @pytest.mark.parametrize("batch_size", [1, 17, 1000, 100_000])
    def test_batch_size_does_not_change_metrics(self, batch_size):
        topology = ring_topology(6, link_latency_ms=2.0)
        factory = workload_factories(topology)["irm"]
        reference = make_simulator(topology).run(factory(), 3000)
        chunked = make_simulator(topology).run(
            factory(), 3000, batch_size=batch_size
        )
        assert chunked == reference


class TestGeoTopologyEquivalence:
    """US-A latencies are not dyadic: counts exact, totals to 1e-9."""

    def test_counts_exact_floats_close(self):
        topology = load_topology("us-a")
        factory = lambda: IRMWorkload(
            ZipfModel(0.8, 5_000), topology.nodes, seed=0
        )
        batched_sim = make_simulator(topology, capacity=50)
        scalar_sim = make_simulator(topology, capacity=50)

        batched = batched_sim.run(factory(), 20_000)
        scalar = scalar_sim.run_scalar(factory(), 20_000)

        assert (batched.local_hits, batched.peer_hits, batched.origin_hits) == (
            scalar.local_hits,
            scalar.peer_hits,
            scalar.origin_hits,
        )
        assert batched.served_by == scalar.served_by
        assert batched.total_hops == scalar.total_hops  # integer-valued
        assert batched.total_latency_ms == pytest.approx(
            scalar.total_latency_ms, rel=1e-9
        )
        assert store_counters(batched_sim) == store_counters(scalar_sim)


class TestRunModeSelection:
    def test_batched_requires_static_fleet(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology)
        # Swap one partition for a dynamic policy: fast path must refuse.
        from repro.simulation.cache import LRUCache

        node = topology.nodes[0]
        simulator.fleet[node].local_store = LRUCache(4)
        simulator._placement_is_static = False
        workload = workload_factories(topology)["irm"]
        with pytest.raises(SimulationError):
            simulator.run(workload(), 10, batched=True)
        # default mode falls back to the scalar loop
        metrics = simulator.run(workload(), 10)
        assert metrics.requests == 10

    def test_batched_requires_batch_api(self):
        topology = ring_topology(4, link_latency_ms=2.0)

        class DuckWorkload:
            """Pre-batch-API duck-typed workload (requests only)."""

            def requests(self, count):
                return iter(
                    Request(topology.nodes[i % 4], 1 + i % 5)
                    for i in range(count)
                )

        simulator = make_simulator(topology)
        with pytest.raises(SimulationError):
            simulator.run(DuckWorkload(), 10, batched=True)
        # default mode silently takes the reference path
        metrics = simulator.run(DuckWorkload(), 10)
        assert metrics == make_simulator(topology).run_scalar(DuckWorkload(), 10)

    def test_unknown_client_raises(self):
        topology = ring_topology(4, link_latency_ms=2.0)
        simulator = make_simulator(topology)
        workload = TraceWorkload([Request("nowhere", 1)])
        with pytest.raises(SimulationError):
            simulator.run(workload, 1)
        with pytest.raises(SimulationError):
            make_simulator(topology).run_scalar(workload, 1)


class TestRecordBatchValidation:
    def test_rejects_negative_counts(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.record_batch(
                local_hits=-1,
                peer_hits=0,
                origin_hits=0,
                total_hops=0.0,
                total_latency_ms=0.0,
            )

    def test_rejects_negative_totals(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.record_batch(
                local_hits=1,
                peer_hits=0,
                origin_hits=0,
                total_hops=-1.0,
                total_latency_ms=0.0,
            )

    def test_rejects_served_by_exceeding_peer_hits(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.record_batch(
                local_hits=0,
                peer_hits=1,
                origin_hits=0,
                total_hops=1.0,
                total_latency_ms=1.0,
                served_by={"A": 2},
            )

    def test_accumulates_like_record(self):
        collector = MetricsCollector()
        collector.record_batch(
            local_hits=2,
            peer_hits=1,
            origin_hits=3,
            total_hops=7.0,
            total_latency_ms=120.0,
            served_by={"A": 1},
        )
        summary = collector.summary()
        assert summary.requests == 6
        assert summary.served_by == {"A": 1}
        assert summary.total_hops == 7.0


class TestDynamicSeedStreams:
    """Regression: seed * k + i derivations collided at seed = 0."""

    def test_seed_zero_gives_distinct_partition_streams(self):
        topology = load_topology("us-a")
        simulator = DynamicSimulator(
            topology,
            capacity=10,
            policy="random",
            coordination_level=0.5,
            seed=0,
        )
        states = set()
        for router in simulator.fleet.values():
            states.add(str(router.local_store._rng.bit_generator.state["state"]))
            states.add(
                str(router.coordinated_store._rng.bit_generator.state["state"])
            )
        # Every (router, partition) pair draws from its own stream.
        assert len(states) == 2 * topology.n_routers

    def test_runs_reproducible_per_seed(self):
        topology = ring_topology(5, link_latency_ms=2.0)

        def run(seed):
            simulator = DynamicSimulator(
                topology,
                capacity=8,
                policy="random",
                coordination_level=0.5,
                seed=seed,
            )
            workload = IRMWorkload(
                ZipfModel(0.8, 300), topology.nodes, seed=2
            )
            return simulator.run(workload, 2000, warmup=500)

        assert run(1) == run(1)
        assert run(1) != run(2)
