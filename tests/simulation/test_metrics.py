"""Unit tests for repro.simulation.metrics — metric accumulation."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.metrics import MetricsCollector, SimulationMetrics
from repro.simulation.routing import RouteDecision, ServiceTier


def decision(tier: str, hops: float = 1.0, latency: float = 2.0) -> RouteDecision:
    return RouteDecision(tier=tier, server=None, hops=hops, latency_ms=latency)


class TestCollector:
    def test_tier_counting(self):
        collector = MetricsCollector()
        collector.record(decision(ServiceTier.LOCAL, 0.0, 0.0))
        collector.record(decision(ServiceTier.PEER, 1.0, 5.0))
        collector.record(decision(ServiceTier.ORIGIN, 3.0, 60.0))
        summary = collector.summary()
        assert summary.requests == 3
        assert summary.local_hits == 1
        assert summary.peer_hits == 1
        assert summary.origin_hits == 1
        assert summary.total_hops == pytest.approx(4.0)
        assert summary.total_latency_ms == pytest.approx(65.0)

    def test_rejects_unknown_tier(self):
        collector = MetricsCollector()
        with pytest.raises(SimulationError):
            collector.record(decision("satellite"))

    def test_peer_server_attribution(self):
        collector = MetricsCollector()
        collector.record(
            RouteDecision(tier=ServiceTier.PEER, server="X", hops=1.0, latency_ms=1.0)
        )
        collector.record(
            RouteDecision(tier=ServiceTier.PEER, server="X", hops=1.0, latency_ms=1.0)
        )
        collector.record(
            RouteDecision(tier=ServiceTier.LOCAL, server="Y", hops=0.0, latency_ms=0.0)
        )
        summary = collector.summary()
        assert summary.served_by == {"X": 2}  # local hits not attributed

    def test_messages(self):
        collector = MetricsCollector()
        collector.record_messages(5)
        collector.record_messages(2)
        assert collector.summary().coordination_messages == 7

    def test_rejects_negative_messages(self):
        with pytest.raises(SimulationError):
            MetricsCollector().record_messages(-1)


class TestSummary:
    def make(self, local=2, peer=3, origin=5) -> SimulationMetrics:
        return SimulationMetrics(
            requests=local + peer + origin,
            local_hits=local,
            peer_hits=peer,
            origin_hits=origin,
            total_hops=20.0,
            total_latency_ms=100.0,
            coordination_messages=4,
        )

    def test_derived_ratios(self):
        m = self.make()
        assert m.origin_load == pytest.approx(0.5)
        assert m.local_fraction == pytest.approx(0.2)
        assert m.peer_fraction == pytest.approx(0.3)
        assert m.mean_hops == pytest.approx(2.0)
        assert m.mean_latency_ms == pytest.approx(10.0)

    def test_tier_fractions_sum_to_one(self):
        fractions = self.make().tier_fractions()
        assert sum(fractions) == pytest.approx(1.0)

    def test_conservation_enforced(self):
        """Tier counts must sum to the request count — an invariant."""
        with pytest.raises(SimulationError):
            SimulationMetrics(
                requests=10,
                local_hits=1,
                peer_hits=1,
                origin_hits=1,
                total_hops=0.0,
                total_latency_ms=0.0,
                coordination_messages=0,
            )

    def test_served_by_default_empty(self):
        assert self.make().served_by == {}

    def test_peer_load_imbalance_balanced(self):
        m = SimulationMetrics(
            requests=4, local_hits=0, peer_hits=4, origin_hits=0,
            total_hops=4.0, total_latency_ms=4.0, coordination_messages=0,
            served_by={"A": 2, "B": 2},
        )
        assert m.peer_load_imbalance() == pytest.approx(0.0)

    def test_peer_load_imbalance_skewed(self):
        m = SimulationMetrics(
            requests=4, local_hits=0, peer_hits=4, origin_hits=0,
            total_hops=4.0, total_latency_ms=4.0, coordination_messages=0,
            served_by={"A": 4},
        )
        # Padding with idle routers exposes the concentration.
        assert m.peer_load_imbalance(4) > 1.0
        assert m.peer_load_imbalance() == 0.0  # single counted router

    def test_empty_run(self):
        m = SimulationMetrics(
            requests=0, local_hits=0, peer_hits=0, origin_hits=0,
            total_hops=0.0, total_latency_ms=0.0, coordination_messages=0,
        )
        assert m.origin_load == 0.0
        assert m.mean_hops == 0.0
        assert m.mean_latency_ms == 0.0
