"""Combined-key packing stays exact in int64 at large N (R8 hardening).

The batched kernels pack several small integer coordinates into one
flat ``np.bincount`` key (DESIGN.md SS9/SS11).  These tests replicate the
exact packing expressions used by the kernels with deliberately narrow
(int32) input dtypes at N = 10**6 events and n = 40 routers, and check
the resulting count tensors against an ``np.add.at`` reference that
never packs at all — so a silent 32-bit wraparound in the key lineage
would show up as a count mismatch, not just a dtype change.
"""

import numpy as np

from repro.simulation.batch import _N_LOOKUP_CODES
from repro.simulation.dynamic_batch import _N_OUTCOMES

N_EVENTS = 10**6
N_ROUTERS = 40


def _inputs(seed: int = 20131307):
    rng = np.random.default_rng(seed)
    client = rng.integers(0, N_ROUTERS, size=N_EVENTS, dtype=np.int32)
    custodian = rng.integers(0, N_ROUTERS, size=N_EVENTS, dtype=np.int32)
    code = rng.integers(0, _N_OUTCOMES, size=N_EVENTS, dtype=np.uint8)
    return client, custodian, code


class TestCoordinatedKeyPacking:
    """Mirror of the (client, custodian, code) site in dynamic_batch."""

    def test_large_n_counts_match_unpacked_reference(self):
        client, custodian, code = _inputs()
        n = N_ROUTERS
        key = client.astype(np.int64) * n
        key += custodian
        key *= _N_OUTCOMES
        key += code
        assert key.dtype == np.int64
        matrix = np.bincount(
            key, minlength=n * n * _N_OUTCOMES
        ).reshape(n, n, _N_OUTCOMES)
        reference = np.zeros((n, n, _N_OUTCOMES), dtype=np.int64)
        np.add.at(reference, (client, custodian, code), 1)
        assert matrix.sum() == N_EVENTS
        np.testing.assert_array_equal(matrix, reference)

    def test_packing_survives_values_beyond_int32(self):
        """With enough routers the packed key exceeds 2**31; the int64
        coercion must keep it exact where int32 would wrap negative."""
        n = 2**17  # n*n*6 ~ 10**11 >> 2**31
        client = np.full(1000, n - 1, dtype=np.int32)
        custodian = np.full(1000, n - 1, dtype=np.int32)
        code = np.full(1000, _N_OUTCOMES - 1, dtype=np.uint8)
        key = client.astype(np.int64) * n
        key += custodian
        key *= _N_OUTCOMES
        key += code
        expected = ((n - 1) * n + (n - 1)) * _N_OUTCOMES + (_N_OUTCOMES - 1)
        assert expected > 2**31  # the case int32 cannot represent
        assert key.dtype == np.int64
        assert (key == expected).all()
        assert (key >= 0).all()


class TestUncoordinatedKeyPacking:
    """Mirror of the (client, code) site in dynamic_batch."""

    def test_large_n_counts_match_unpacked_reference(self):
        client, _, code = _inputs()
        n = N_ROUTERS
        key = client.astype(np.int64) * _N_OUTCOMES
        key += code
        assert key.dtype == np.int64
        matrix = np.bincount(key, minlength=n * _N_OUTCOMES).reshape(
            n, _N_OUTCOMES
        )
        reference = np.zeros((n, _N_OUTCOMES), dtype=np.int64)
        np.add.at(reference, (client, code), 1)
        np.testing.assert_array_equal(matrix, reference)


class TestSteadyLookupKeyPacking:
    """Mirror of the (client, lookup_code) site in batch.py."""

    def test_large_n_counts_match_unpacked_reference(self):
        client, _, _ = _inputs()
        rng = np.random.default_rng(7)
        codes = rng.integers(
            0, _N_LOOKUP_CODES, size=N_EVENTS, dtype=np.int32
        )
        n = N_ROUTERS
        lookup_key = client * np.int64(_N_LOOKUP_CODES) + codes
        assert lookup_key.dtype == np.int64
        counts = np.bincount(
            lookup_key, minlength=n * _N_LOOKUP_CODES
        ).reshape(n, _N_LOOKUP_CODES)
        reference = np.zeros((n, _N_LOOKUP_CODES), dtype=np.int64)
        np.add.at(reference, (client, codes), 1)
        np.testing.assert_array_equal(counts, reference)
