"""Unit tests for repro.simulation.simulator — steady-state and dynamic."""

from __future__ import annotations

import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import IRMWorkload, SequenceWorkload, TraceWorkload, Request
from repro.core.strategy import ProvisioningStrategy
from repro.errors import ParameterError, SimulationError
from repro.simulation.cache import StaticCache
from repro.simulation.router import CCNRouter
from repro.simulation.routing import OriginModel
from repro.simulation.simulator import DynamicSimulator, SteadyStateSimulator
from repro.topology.graph import Topology


@pytest.fixture
def square() -> Topology:
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D"), ("D", "A")],
        name="square",
        link_latency_ms=2.0,
    )


class TestSteadyStateFromStrategy:
    def test_full_fleet_built(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        sim = SteadyStateSimulator.from_strategy(square, strategy)
        assert set(sim.fleet) == set(square.nodes)
        for router in sim.fleet.values():
            assert router.capacity == 4

    def test_message_accounting_modes(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        directives = SteadyStateSimulator.from_strategy(
            square, strategy, message_accounting="directives"
        )
        consensus = SteadyStateSimulator.from_strategy(
            square, strategy, message_accounting="consensus"
        )
        none = SteadyStateSimulator.from_strategy(
            square, strategy, message_accounting="none"
        )
        assert directives.coordination_messages == 4 + 4 * 2
        assert consensus.coordination_messages == 3
        assert none.coordination_messages == 0

    def test_unknown_accounting_rejected(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        with pytest.raises(ParameterError):
            SteadyStateSimulator.from_strategy(
                square, strategy, message_accounting="carrier-pigeon"
            )

    def test_router_count_mismatch_rejected(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=7, level=0.5)
        with pytest.raises(ParameterError):
            SteadyStateSimulator.from_strategy(square, strategy)


class TestSteadyStateRun:
    def test_conservation(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        sim = SteadyStateSimulator.from_strategy(square, strategy)
        workload = IRMWorkload(ZipfModel(0.8, 100), square.nodes, seed=0)
        metrics = sim.run(workload, 1000)
        assert metrics.requests == 1000
        assert (
            metrics.local_hits + metrics.peer_hits + metrics.origin_hits == 1000
        )

    def test_local_rank_always_local(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        sim = SteadyStateSimulator.from_strategy(square, strategy)
        # Ranks 1..2 are the local partition: always a local hit.
        workload = TraceWorkload([Request("A", 1), Request("C", 2)])
        metrics = sim.run(workload, 2)
        assert metrics.local_hits == 2
        assert metrics.mean_hops == 0.0

    def test_deep_rank_goes_to_origin(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.0)
        sim = SteadyStateSimulator.from_strategy(square, strategy)
        workload = TraceWorkload([Request("A", 99)])
        metrics = sim.run(workload, 1)
        assert metrics.origin_hits == 1

    def test_more_coordination_lowers_origin_load(self, square):
        workload = IRMWorkload(ZipfModel(0.8, 200), square.nodes, seed=1)
        loads = []
        for level in (0.0, 0.5, 1.0):
            strategy = ProvisioningStrategy(capacity=10, n_routers=4, level=level)
            sim = SteadyStateSimulator.from_strategy(square, strategy)
            loads.append(sim.run(workload, 4000).origin_load)
        assert loads[0] > loads[1] > loads[2]

    def test_unknown_client_rejected(self, square):
        strategy = ProvisioningStrategy(capacity=4, n_routers=4, level=0.5)
        sim = SteadyStateSimulator.from_strategy(square, strategy)
        with pytest.raises(SimulationError):
            sim.resolve("Z", 1)

    def test_fleet_validation(self, square):
        partial = {"A": CCNRouter("A", StaticCache(0))}
        with pytest.raises(SimulationError):
            SteadyStateSimulator(square, partial)
        extra = {
            node: CCNRouter(node, StaticCache(0)) for node in square.nodes
        }
        extra["Z"] = CCNRouter("Z", StaticCache(0))
        with pytest.raises(SimulationError):
            SteadyStateSimulator(square, extra)

    def test_motivating_example_values(self):
        """Table I numbers drop out of the simulator exactly."""
        topo = Topology.from_edges(
            [("R0", "R1"), ("R0", "R2"), ("R1", "R2")], link_latency_ms=5.0
        )
        origin = OriginModel(gateway="R0", extra_hops=1.0)
        workload = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])

        def fleet(r1, r2):
            return {
                "R0": CCNRouter("R0", StaticCache(0)),
                "R1": CCNRouter.provisioned("R1", frozenset(), r1),
                "R2": CCNRouter.provisioned("R2", frozenset(), r2),
            }

        non_coord = SteadyStateSimulator(
            topo, fleet(frozenset({1}), frozenset({1})), origin=origin
        ).run(workload, 60)
        coord = SteadyStateSimulator(
            topo, fleet(frozenset({1}), frozenset({2})), origin=origin
        ).run(workload, 60)
        assert non_coord.origin_load == pytest.approx(1 / 3)
        assert non_coord.mean_hops == pytest.approx(2 / 3)
        assert coord.origin_load == 0.0
        assert coord.mean_hops == pytest.approx(0.5)


class TestDynamicSimulator:
    def test_noncoordinated_lru_populates(self, square):
        sim = DynamicSimulator(square, capacity=10, policy="lru", seed=0)
        workload = IRMWorkload(ZipfModel(1.2, 100), square.nodes, seed=2)
        metrics = sim.run(workload, 3000)
        assert metrics.requests == 3000
        assert metrics.local_hits > 0
        assert metrics.peer_hits == 0  # no coordination: never peer-served

    def test_warmup_discarded(self, square):
        sim = DynamicSimulator(square, capacity=10, policy="lfu", seed=0)
        workload = IRMWorkload(ZipfModel(1.2, 100), square.nodes, seed=2)
        metrics = sim.run(workload, 1000, warmup=2000)
        assert metrics.requests == 1000

    def test_warmup_improves_hit_ratio(self, square):
        workload = IRMWorkload(ZipfModel(1.2, 500), square.nodes, seed=3)
        cold = DynamicSimulator(square, capacity=20, policy="lfu", seed=0).run(
            workload, 2000
        )
        warm = DynamicSimulator(square, capacity=20, policy="lfu", seed=0).run(
            workload, 2000, warmup=8000
        )
        assert warm.local_fraction >= cold.local_fraction

    def test_hash_coordination_serves_peers(self, square):
        sim = DynamicSimulator(
            square, capacity=10, policy="lru", coordination_level=0.5, seed=0
        )
        workload = IRMWorkload(ZipfModel(0.8, 200), square.nodes, seed=4)
        metrics = sim.run(workload, 4000, warmup=2000)
        assert metrics.peer_hits > 0

    def test_coordination_reduces_origin_load(self, square):
        workload = IRMWorkload(ZipfModel(0.8, 400), square.nodes, seed=5)
        non_coord = DynamicSimulator(
            square, capacity=20, coordination_level=0.0, seed=0
        ).run(workload, 5000, warmup=5000)
        coord = DynamicSimulator(
            square, capacity=20, coordination_level=1.0, seed=0
        ).run(workload, 5000, warmup=5000)
        assert coord.origin_load < non_coord.origin_load

    def test_perfect_lfu_reaches_model_steady_state(self, square):
        """Dynamic perfect-LFU converges to the provisioned top-c placement
        the analytical model assumes (paper §II, non-coordinated case)."""
        popularity = ZipfModel(1.2, 200)
        workload = IRMWorkload(popularity, square.nodes, seed=6)
        sim = DynamicSimulator(square, capacity=20, policy="perfect-lfu", seed=0)
        sim.run(workload, 1, warmup=40_000)
        top = set(range(1, 21))
        for router in sim.fleet.values():
            stored = router.stored_ranks()
            assert len(stored & top) >= 17

    def test_custodian_is_client_path(self, square):
        """When a rank's custodian is the requesting router itself, the
        miss goes straight to the origin and the custodian admits."""
        sim = DynamicSimulator(
            square, capacity=10, policy="lru", coordination_level=1.0, seed=0
        )
        client = sim._custodian(7)  # the router that owns rank 7
        metrics = sim.run(TraceWorkload([Request(client, 7)]), 1)
        assert metrics.origin_hits == 1
        # The custodian cached it; a repeat is now a local hit.
        metrics2 = sim.run(TraceWorkload([Request(client, 7)]), 1)
        assert metrics2.local_hits == 1

    def test_custodian_peer_hit_after_fetch(self, square):
        """Another router's request for the same rank is peer-served by
        the custodian after the first fetch."""
        sim = DynamicSimulator(
            square, capacity=10, policy="lru", coordination_level=1.0, seed=0
        )
        custodian = sim._custodian(7)
        other = next(n for n in square.nodes if n != custodian)
        sim.run(TraceWorkload([Request(other, 7)]), 1)  # origin fetch
        metrics = sim.run(TraceWorkload([Request(other, 7)]), 1)
        # 'other' admitted it locally on the first fetch, so this is a
        # local hit; evict by filling other's local store is overkill —
        # instead ask from a third router.
        third = next(
            n for n in square.nodes if n not in (custodian, other)
        )
        metrics3 = sim.run(TraceWorkload([Request(third, 7)]), 1)
        assert metrics3.peer_hits == 1

    def test_validation(self, square):
        with pytest.raises(ParameterError):
            DynamicSimulator(square, capacity=0)
        with pytest.raises(ParameterError):
            DynamicSimulator(square, capacity=10, coordination_level=1.5)
        sim = DynamicSimulator(square, capacity=10)
        workload = IRMWorkload(ZipfModel(0.8, 100), square.nodes, seed=0)
        with pytest.raises(ParameterError):
            sim.run(workload, 10, warmup=-1)

    def test_unknown_client_rejected(self, square):
        sim = DynamicSimulator(square, capacity=10)
        with pytest.raises(SimulationError):
            sim.run(TraceWorkload([Request("Z", 1)]), 1)
