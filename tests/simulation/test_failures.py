"""Tests for repro.simulation.failures — store failure injection."""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import ProvisioningStrategy
from repro.errors import ParameterError, SimulationError
from repro.simulation import SteadyStateSimulator
from repro.simulation.failures import (
    build_degraded_simulator,
    coordinated_mass_lost,
    fail_stores,
)
from repro.topology import ring_topology

N_ROUTERS = 8
CAPACITY = 20
CATALOG = 2_000
EXPONENT = 0.9


def make_strategy(level: float = 0.5, assignment="round-robin"):
    return ProvisioningStrategy(
        capacity=CAPACITY, n_routers=N_ROUTERS, level=level,
        assignment=assignment,
    )


class TestFailStores:
    def test_failed_store_emptied(self):
        topology = ring_topology(N_ROUTERS)
        simulator = SteadyStateSimulator.from_strategy(
            topology, make_strategy(), message_accounting="none"
        )
        victim = topology.nodes[3]
        fail_stores(simulator, [victim])
        assert simulator.fleet[victim].stored_ranks() == frozenset()
        # Other routers untouched.
        other = topology.nodes[0]
        assert simulator.fleet[other].stored_ranks()

    def test_holders_index_rebuilt(self):
        topology = ring_topology(N_ROUTERS)
        strategy = make_strategy()
        simulator = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        )
        victim_index = 2
        victim = topology.nodes[victim_index]
        victim_ranks = set(strategy.contents_of_router(victim_index)) - set(
            strategy.local_ranks
        )
        fail_stores(simulator, [victim])
        for rank in victim_ranks:
            assert victim not in simulator._holders.get(rank, [])

    def test_unknown_router_rejected(self):
        topology = ring_topology(N_ROUTERS)
        simulator = SteadyStateSimulator.from_strategy(
            topology, make_strategy(), message_accounting="none"
        )
        with pytest.raises(SimulationError):
            fail_stores(simulator, ["nonexistent"])


class TestCoordinatedMassLost:
    def test_matches_pmf_sum(self):
        strategy = make_strategy()
        popularity = ZipfModel(EXPONENT, CATALOG)
        expected = sum(
            popularity.pmf(rank)
            for rank, owner in strategy.iter_assignments()
            if owner == 3
        )
        assert coordinated_mass_lost(strategy, popularity, [3]) == pytest.approx(
            expected, rel=1e-12
        )

    def test_zero_for_noncoordinated_strategy(self):
        strategy = make_strategy(level=0.0)
        popularity = ZipfModel(EXPONENT, CATALOG)
        assert coordinated_mass_lost(strategy, popularity, [0]) == 0.0

    def test_additive_over_disjoint_failures(self):
        strategy = make_strategy()
        popularity = ZipfModel(EXPONENT, CATALOG)
        both = coordinated_mass_lost(strategy, popularity, [1, 4])
        separate = coordinated_mass_lost(
            strategy, popularity, [1]
        ) + coordinated_mass_lost(strategy, popularity, [4])
        assert both == pytest.approx(separate, rel=1e-12)

    def test_rejects_bad_index(self):
        with pytest.raises(ParameterError):
            coordinated_mass_lost(
                make_strategy(), ZipfModel(EXPONENT, CATALOG), [99]
            )

    def test_rejects_total_failure(self):
        with pytest.raises(ParameterError):
            coordinated_mass_lost(
                make_strategy(0.5),
                ZipfModel(EXPONENT, CATALOG),
                list(range(N_ROUTERS)),
            )


class TestDegradationMatchesTheory:
    @pytest.mark.parametrize("failed", [[0], [3], [1, 5]])
    def test_origin_load_increase_equals_lost_mass(self, failed):
        """Failing a custodian raises origin load by exactly the request
        mass of its coordinated ranks — the coordination/redundancy
        trade-off, verified simulation-vs-theory."""
        topology = ring_topology(N_ROUTERS)
        strategy = make_strategy()
        popularity = ZipfModel(EXPONENT, CATALOG)
        workload = IRMWorkload(popularity, topology.nodes, seed=23)
        requests = 40_000

        healthy = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        ).run(workload, requests)
        degraded = build_degraded_simulator(topology, strategy, failed).run(
            workload, requests
        )
        predicted_increase = coordinated_mass_lost(strategy, popularity, failed)
        measured_increase = degraded.origin_load - healthy.origin_load
        assert measured_increase == pytest.approx(predicted_increase, abs=0.01)

    def test_noncoordinated_is_failure_redundant(self):
        """With l=0 every store is identical: one failure costs nothing
        except that router's own local hits becoming peer hits."""
        topology = ring_topology(N_ROUTERS)
        strategy = make_strategy(level=0.0)
        workload = IRMWorkload(ZipfModel(EXPONENT, CATALOG), topology.nodes, seed=7)
        healthy = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        ).run(workload, 20_000)
        degraded = build_degraded_simulator(topology, strategy, [2]).run(
            workload, 20_000
        )
        assert degraded.origin_load == pytest.approx(healthy.origin_load, abs=1e-9)
        assert degraded.peer_hits > healthy.peer_hits  # rerouted, not lost
