"""Meta-tests on the public API surface.

These guard the library's documentation contract: every public module,
class, function and method carries a docstring, every subpackage
defines ``__all__``, and everything listed in an ``__all__`` actually
exists.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.topology",
    "repro.catalog",
    "repro.simulation",
    "repro.ccn",
    "repro.adaptive",
    "repro.service",
    "repro.hetero",
    "repro.analysis",
    "repro.baselines",
]


def iter_all_modules():
    seen = []
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name == "__main__":
                    continue  # importing it would invoke the CLI
                seen.append(
                    importlib.import_module(f"{package_name}.{info.name}")
                )
    return seen


ALL_MODULES = iter_all_modules()


class TestAllDeclarations:
    @pytest.mark.parametrize(
        "package_name", SUBPACKAGES, ids=SUBPACKAGES
    )
    def test_subpackage_has_all(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        assert package.__all__, f"{package_name}.__all__ is empty"

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_all_entries_exist(self, module):
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name}"

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_all_entries_sorted_unique(self, module):
        entries = list(getattr(module, "__all__", ()))
        assert len(entries) == len(set(entries)), (
            f"{module.__name__}.__all__ has duplicates"
        )


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} has no module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_members_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", ()):
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(name)
                if inspect.isclass(member):
                    for attr_name, attr in vars(member).items():
                        if attr_name.startswith("_"):
                            continue
                        if not inspect.isfunction(attr):
                            continue
                        if attr.__doc__ and attr.__doc__.strip():
                            continue
                        # Overrides inherit their contract's docstring.
                        inherited = any(
                            (
                                getattr(base, attr_name, None) is not None
                                and getattr(
                                    getattr(base, attr_name), "__doc__", None
                                )
                            )
                            for base in member.__mro__[1:]
                        )
                        if not inherited:
                            undocumented.append(f"{name}.{attr_name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public members: {undocumented}"
        )


class TestVersionMetadata:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
