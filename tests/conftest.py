"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    CoordinationCostModel,
    LatencyModel,
    PerformanceCostModel,
    RoutingPerformanceModel,
    Scenario,
    ZipfPopularity,
)
from repro.topology import Topology


@pytest.fixture
def latency() -> LatencyModel:
    """A plain valid three-tier latency model."""
    return LatencyModel(d0=1.0, d1=3.0, d2=13.0)  # gamma = 5


@pytest.fixture
def popularity() -> ZipfPopularity:
    """A small Zipf popularity model (fast exact computations)."""
    return ZipfPopularity(exponent=0.8, catalog_size=10_000)


@pytest.fixture
def performance(popularity, latency) -> RoutingPerformanceModel:
    """A routing performance model with c=100, n=10."""
    return RoutingPerformanceModel(
        popularity=popularity, latency=latency, capacity=100.0, n_routers=10
    )


@pytest.fixture
def cost() -> CoordinationCostModel:
    """A linear coordination cost model with a small unit cost."""
    return CoordinationCostModel(unit_cost=1e-4, fixed_cost=0.0)


@pytest.fixture
def model(performance, cost) -> PerformanceCostModel:
    """A full objective with alpha = 0.7."""
    return PerformanceCostModel(performance=performance, cost=cost, alpha=0.7)


@pytest.fixture
def base_scenario() -> Scenario:
    """The paper's Table IV base scenario."""
    return Scenario()


@pytest.fixture
def triangle_topology() -> Topology:
    """The motivating example's three-router triangle."""
    return Topology.from_edges(
        [("R0", "R1"), ("R0", "R2"), ("R1", "R2")],
        name="triangle",
        link_latency_ms=5.0,
    )


@pytest.fixture
def line_topology() -> Topology:
    """A four-router path: A - B - C - D."""
    return Topology.from_edges(
        [("A", "B"), ("B", "C"), ("C", "D")], name="line", link_latency_ms=2.0
    )
