"""True-positive / false-positive coverage for every repro-lint rule."""

from pathlib import Path

import pytest

from repro.lint import lint_file

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


def findings_for(relpath: str, rule_id: str):
    diagnostics, _ = lint_file(FIXTURES / relpath)
    return [d for d in diagnostics if d.rule_id == rule_id]


def all_findings(relpath: str):
    diagnostics, _ = lint_file(FIXTURES / relpath)
    return diagnostics


CASES = [
    ("R1", "core/r1_bad.py", "core/r1_good.py", 3),
    ("R2", "core/r2_bad.py", "core/r2_good.py", 3),
    ("R3", "core/r3_bad.py", "core/r3_good.py", 5),
    ("R4", "simulation/r4_bad.py", "simulation/r4_good.py", 4),
    (
        "R4",
        "simulation/r4_kernel_tables_bad.py",
        "simulation/r4_kernel_tables_good.py",
        3,
    ),
    (
        "R4",
        "core/r4_coefficient_view_bad.py",
        "core/r4_coefficient_view_good.py",
        3,
    ),
    ("R2", "approx/r2_bad.py", "approx/r2_good.py", 3),
    ("R5", "core/r5_bad.py", "core/r5_good.py", 3),
    ("R6", "simulation/r6_bad.py", "simulation/r6_good.py", 4),
    ("R7", "catalog/r7_bad.py", "catalog/r7_good.py", 5),
    ("R7", "topology/r7_bad.py", "topology/r7_good.py", 4),
    ("R7", "approx/r7_bad.py", "approx/r7_good.py", 4),
    ("R7", "ccn/r7_bad.py", "ccn/r7_good.py", 4),
    ("R2", "service/r2_bad.py", "service/r2_good.py", 3),
    ("R7", "service/r7_bad.py", "service/r7_good.py", 4),
    ("R8", "simulation/r8_bad.py", "simulation/r8_good.py", 4),
    ("R8", "ccn/r8_bad.py", "ccn/r8_good.py", 4),
    ("R9", "simulation/r9_bad.py", "simulation/r9_good.py", 4),
]


class TestTruePositives:
    @pytest.mark.parametrize("rule_id, bad, _good, expected", CASES)
    def test_bad_fixture_is_flagged(self, rule_id, bad, _good, expected):
        findings = findings_for(bad, rule_id)
        assert len(findings) == expected, [f.message for f in findings]

    def test_r1_names_the_offending_exception(self):
        messages = "\n".join(f.message for f in findings_for("core/r1_bad.py", "R1"))
        for name in ("ValueError", "RuntimeError", "Exception"):
            assert name in messages

    def test_r2_reports_the_violated_edge(self):
        messages = [f.message for f in findings_for("core/r2_bad.py", "R2")]
        assert any("'core' may not import 'simulation'" in m for m in messages)
        assert any("'core' may not import 'analysis'" in m for m in messages)
        assert any("'core' may not import 'cli'" in m for m in messages)

    def test_r3_flags_each_unguarded_parameter(self):
        params = {
            f.message.split("domain parameter ")[1].split(" ")[0]
            for f in findings_for("core/r3_bad.py", "R3")
        }
        assert params == {"'s'", "'d0'", "'d1'", "'d2'", "'capacity'"}

    def test_r5_flags_missing_docstring_and_missing_citation(self):
        messages = "\n".join(f.message for f in findings_for("core/r5_bad.py", "R5"))
        assert "has no docstring" in messages
        assert "cites no paper equation" in messages

    def test_r6_flags_each_discipline_breach(self):
        messages = "\n".join(
            f.message for f in findings_for("simulation/r6_bad.py", "R6")
        )
        assert "time.time()" in messages
        assert "time.perf_counter()" in messages
        assert "clock() (imported from time)" in messages
        assert "bare print()" in messages

    def test_r7_flags_global_state_and_unseeded_generators(self):
        messages = "\n".join(
            f.message for f in findings_for("catalog/r7_bad.py", "R7")
        )
        assert "np.random.seed" in messages
        assert "np.random.rand" in messages
        assert "default_rng()" in messages
        assert "random.random" in messages

    def test_r8_arange_finding_carries_autofix(self):
        findings = findings_for("simulation/r8_bad.py", "R8")
        arange = [f for f in findings if "np.arange" in f.message]
        assert len(arange) == 1
        assert arange[0].fix is not None
        assert arange[0].fix.kind == "insert"

    def test_r9_span_findings_carry_tryfinally_fix(self):
        findings = findings_for("simulation/r9_bad.py", "R9")
        leaked = [f for f in findings if f.fix is not None]
        assert any(f.fix.kind == "span_try_finally" for f in leaked)


class TestFalsePositives:
    @pytest.mark.parametrize("rule_id, _bad, good, _expected", CASES)
    def test_good_fixture_is_clean(self, rule_id, _bad, good, _expected):
        assert findings_for(good, rule_id) == []

    @pytest.mark.parametrize("rule_id, _bad, good, _expected", CASES)
    def test_good_fixture_clean_under_all_rules(self, rule_id, _bad, good, _expected):
        assert all_findings(good) == []


class TestDeadPublicApi:
    """R10 needs a whole project, not a single file: use lint_paths."""

    R10PROJ = Path(__file__).parent / "fixtures" / "r10proj"

    def _findings(self):
        from repro.lint import lint_paths

        result = lint_paths([self.R10PROJ], selected_ids=["R10"])
        return result.diagnostics

    def test_dead_export_is_flagged_at_every_export_site(self):
        findings = self._findings()
        assert len(findings) == 2, [d.format_text() for d in findings]
        assert all("dead_helper" in d.message for d in findings)
        flagged = sorted(Path(d.path).name for d in findings)
        assert flagged == ["__init__.py", "util.py"]

    def test_used_export_is_not_flagged(self):
        assert not any("used_helper" in d.message for d in self._findings())


class TestSuppressions:
    @staticmethod
    def _core_module(tmp_path, source: str):
        target = tmp_path / "repro" / "core"
        target.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (target / "__init__.py").write_text("")
        module = target / "mod.py"
        module.write_text(source)
        return module

    def test_directives_silence_findings_and_are_counted(self):
        diagnostics, suppressed = lint_file(FIXTURES / "core" / "suppressed.py")
        assert diagnostics == []
        assert suppressed == 2  # two R1 raises; file-level R5 has no findings

    def test_suppression_is_rule_specific(self, tmp_path):
        module = self._core_module(
            tmp_path,
            '"""Doc."""\n'
            "def f() -> None:\n"
            '    """Eq. 2 glue."""\n'
            "    raise ValueError('x')  # repro-lint: disable=R4\n",
        )
        diagnostics, suppressed = lint_file(module)
        assert [d.rule_id for d in diagnostics] == ["R1"]
        assert suppressed == 0

    def test_disable_all_on_line(self, tmp_path):
        module = self._core_module(
            tmp_path,
            '"""Doc."""\n'
            "def f() -> None:\n"
            '    """Eq. 2 glue."""\n'
            "    raise RuntimeError('x')  # repro-lint: disable=all\n",
        )
        diagnostics, suppressed = lint_file(module)
        assert diagnostics == []
        assert suppressed == 1


class TestParseErrors:
    def test_syntax_error_becomes_finding(self, tmp_path):
        module = tmp_path / "broken.py"
        module.write_text("def broken(:\n")
        diagnostics, _ = lint_file(module)
        assert [d.rule_id for d in diagnostics] == ["E001"]
