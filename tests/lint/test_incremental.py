"""Incremental cache and ``--changed`` mode behaviour.

These tests build a tiny synthetic ``repro`` package in ``tmp_path`` so
cache hits/misses can be asserted file-by-file, then time the real tree
once to enforce the headline guarantee: a warm full-tree lint is at
least an order of magnitude faster than a cold one.
"""

import subprocess
import time
from pathlib import Path

import pytest

import repro
from repro.lint import lint_paths
from repro.lint.cli import main

REPO_SRC = Path(repro.__file__).parent.parent  # .../src

#: Synthetic tree: top -> mid -> leaf import chain plus two inits.
_TREE = {
    "repro/__init__.py": '"""Pkg."""\n',
    "repro/core/__init__.py": '"""Core."""\n',
    "repro/core/leaf.py": '"""Leaf."""\n\nX = 1\n',
    "repro/core/mid.py": (
        '"""Mid."""\n\nfrom repro.core.leaf import X\n\nY = X + 1\n'
    ),
    "repro/core/top.py": (
        '"""Top."""\n\nfrom repro.core.mid import Y\n\nZ = Y + 1\n'
    ),
}


def make_tree(root: Path) -> Path:
    for relpath, source in _TREE.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return root / "repro"


class TestIncrementalCache:
    def test_cold_run_parses_everything(self, tmp_path):
        pkg = make_tree(tmp_path)
        result = lint_paths([pkg], cache_dir=tmp_path / "cache")
        assert result.diagnostics == []
        assert result.files_relinted == len(_TREE)
        assert result.files_from_cache == 0

    def test_warm_run_relints_nothing(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([pkg], cache_dir=cache)
        warm = lint_paths([pkg], cache_dir=cache)
        assert warm.diagnostics == []
        assert warm.files_relinted == 0
        assert warm.files_from_cache == len(_TREE)
        assert warm.files_checked == len(_TREE)

    def test_leaf_edit_invalidates_transitive_importers(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([pkg], cache_dir=cache)
        leaf = pkg / "core" / "leaf.py"
        leaf.write_text(leaf.read_text() + "\n# touched\n")
        run = lint_paths([pkg], cache_dir=cache)
        # leaf changed; mid imports leaf; top imports mid -> all three
        # re-lint.  The two __init__ files stay cached.
        assert run.files_relinted == 3
        assert run.files_from_cache == 2

    def test_cached_findings_replay_verbatim(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache"
        bad = pkg / "core" / "bad.py"
        bad.write_text(
            '"""Doc."""\n\n\ndef f() -> None:\n'
            '    """Eq. 2 glue."""\n'
            "    raise ValueError('x')\n"
        )
        cold = lint_paths([pkg], cache_dir=cache)
        warm = lint_paths([pkg], cache_dir=cache)
        assert warm.files_relinted == 0
        assert [d.to_json() for d in warm.diagnostics] == [
            d.to_json() for d in cold.diagnostics
        ]
        assert warm.exit_code == 1

    def test_rule_selection_gets_its_own_cache_key(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([pkg], cache_dir=cache, selected_ids=["R1"])
        full = lint_paths([pkg], cache_dir=cache)
        # An R1-only cache must not satisfy a full run.
        assert full.files_relinted == len(_TREE)

    def test_corrupt_cache_is_rebuilt_not_fatal(self, tmp_path):
        pkg = make_tree(tmp_path)
        cache = tmp_path / "cache"
        lint_paths([pkg], cache_dir=cache)
        (cache / "cache.json").write_text("{ not json")
        run = lint_paths([pkg], cache_dir=cache)
        assert run.files_relinted == len(_TREE)
        assert run.diagnostics == []

    def test_warm_full_tree_lint_is_10x_faster_than_cold(self, tmp_path):
        """The incremental engine's acceptance bar (DESIGN.md SS13)."""
        cache = tmp_path / "cache"
        t0 = time.perf_counter()
        cold = lint_paths([REPO_SRC], cache_dir=cache)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = lint_paths([REPO_SRC], cache_dir=cache)
        warm_s = time.perf_counter() - t0
        assert cold.files_relinted > 50
        assert warm.files_relinted == 0
        assert warm_s * 10 <= cold_s, (
            f"warm lint {warm_s:.3f}s not 10x faster than cold {cold_s:.3f}s"
        )


def _git(repo: Path, *args: str) -> None:
    subprocess.run(
        ("git", "-c", "user.email=lint@test", "-c", "user.name=lint") + args,
        cwd=repo,
        check=True,
        capture_output=True,
    )


@pytest.fixture()
def git_tree(tmp_path):
    pkg = make_tree(tmp_path)
    try:
        _git(tmp_path, "init", "-q")
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path, pkg


class TestChangedMode:
    def test_clean_tree_lints_nothing(self, git_tree):
        root, pkg = git_tree
        run = lint_paths([pkg], changed_only=True, repo_root=root)
        assert run.files_relinted == 0
        assert run.files_skipped == len(_TREE)

    def test_edit_targets_file_and_transitive_importers(self, git_tree):
        root, pkg = git_tree
        mid = pkg / "core" / "mid.py"
        mid.write_text(mid.read_text() + "\n# touched\n")
        run = lint_paths([pkg], changed_only=True, repo_root=root)
        # mid changed; top imports mid.  leaf and the inits are skipped.
        assert run.files_relinted == 2
        assert run.files_skipped == 3

    def test_changed_plus_cache_covers_the_whole_tree(self, git_tree):
        root, pkg = git_tree
        cache = root / "cache"
        lint_paths([pkg], cache_dir=cache)
        mid = pkg / "core" / "mid.py"
        mid.write_text(mid.read_text() + "\n# touched\n")
        run = lint_paths(
            [pkg], cache_dir=cache, changed_only=True, repo_root=root
        )
        assert run.files_relinted == 2
        assert run.files_from_cache == 3
        assert run.files_skipped == 0

    def test_untracked_file_counts_as_changed(self, git_tree):
        root, pkg = git_tree
        (pkg / "core" / "fresh.py").write_text('"""Fresh."""\n\nW = 1\n')
        run = lint_paths([pkg], changed_only=True, repo_root=root)
        assert run.files_relinted == 1

    def test_changed_without_git_raises(self, tmp_path):
        pkg = make_tree(tmp_path)
        with pytest.raises(RuntimeError, match="--changed requires git"):
            lint_paths([pkg], changed_only=True, repo_root=tmp_path)

    def test_cli_maps_missing_git_to_usage_error(self, tmp_path, monkeypatch):
        pkg = make_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["--changed", "--no-cache", str(pkg)]) == 2
