"""R7 true positives in the topology unit: unseeded synthetic generators."""

import random

import numpy as np


def unseeded_generator_positions(n: int):
    rng = np.random.default_rng()  # finding 1: entropy-seeded
    return rng.uniform(0.0, 100.0, size=(n, 2))


def global_waxman_draws(n: int):
    return np.random.random((n, n))  # finding 2: global singleton

def shuffled_node_order(nodes: list) -> list:
    random.shuffle(nodes)  # finding 3: hidden global Random instance
    return nodes


def unseeded_bitgen_edges():
    return np.random.Generator(np.random.PCG64())  # finding 4
