"""R7 false positives in the topology unit: seed → identical graph."""

import numpy as np


def seeded_positions(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(n, 2))


def per_region_lineage(seed: int, regions: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(regions)]


def seeded_bitgen_edges(seed: int):
    return np.random.Generator(np.random.PCG64(seed))
