"""R9 true positives: leaked spans and metric-taxonomy abuse."""


def leaked_assignment(obs, work) -> None:
    handle = obs.span("epoch")  # finding 1: no try/finally follows
    work()
    handle.close()


def dropped_handle(obs) -> None:
    obs.span("orphan")  # finding 2: handle discarded, never closed


def decremented_counter(obs) -> None:
    obs.counter("inflight").add(-1)  # finding 3: counters are monotone


def gauge_as_counter(obs) -> None:
    depth = obs.gauge("depth")
    depth.set(depth.value + 1)  # finding 4: last-write-wins merge
