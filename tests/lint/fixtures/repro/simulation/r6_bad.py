"""R6 true-positive fixture: ad-hoc clocks and prints in library code."""

import time
from time import perf_counter as clock


def timed_run(workload) -> float:
    """Times itself with raw clock reads instead of an obs span."""
    started = time.time()
    t0 = time.perf_counter()
    workload.run()
    elapsed = clock() - t0
    print(f"run took {elapsed:.3f}s")
    return started + elapsed
