"""R4 false-positive fixture: copies and local/attribute writes are fine."""

import numpy as np


def decay(weights: np.ndarray, factor: float) -> np.ndarray:
    """Work on a copy; mutate only locals."""
    result = weights.copy()
    result[0] = 0.0
    result *= factor
    scale = 1.0
    scale += factor
    return result


class Collector:
    """Mutating self attributes is not parameter aliasing."""

    def __init__(self) -> None:
        self.counts = np.zeros(4)

    def record(self, tier: int) -> None:
        """Update own state, not an argument alias."""
        self.counts[tier] += 1
