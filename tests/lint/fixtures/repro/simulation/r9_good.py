"""R9 false positives: every sanctioned span/metric shape."""

import re


def with_statement(obs, work) -> None:
    with obs.span("solve"):
        work()


def manual_pairing(obs, work) -> None:
    handle = obs.span("epoch")
    try:
        work()
    finally:
        handle.__exit__(None, None, None)


def span_factory(obs):
    return obs.span("delegated")


def ownership_transfer(obs, stack) -> None:
    stack.enter_context(obs.span("owned"))


def regex_span(text: str):
    match = re.search(r"\d+", text)
    assert match is not None
    return match.span(), match.span(0)


def sane_metrics(obs) -> None:
    obs.counter("requests").add(1)
    obs.gauge("queue_depth").set(17)
