"""R8 true positives: unpinned dtypes around combined bincount keys."""

import numpy as np


def unpinned_arange(n: int):
    return np.arange(n)  # finding 1: platform-dependent default dtype


def inline_key(a, b, n: int):
    # finding 2: combined key built inline in the bincount call
    return np.bincount(a * n + b, minlength=n * n)


def unaudited_key(a, b, n: int):
    key = a * n  # findings 3+4: no int64 lineage, no bound stated
    key += b
    return np.bincount(key, minlength=n * n)
