"""R4 false-positive fixture: kernel tables gathered, never written.

Mirrors the real contract of the dynamic kernel's cost tables: the
kernel owns the tables (mutating own attributes is not aliasing) and
per-batch consumers only gather from them, producing fresh arrays.
"""

import numpy as np


class Kernel:
    """Owns its cost tables; writes to own state are not aliasing."""

    def __init__(self, n: int) -> None:
        self._cost_table = np.zeros((n, 2))

    def aggregate(self, key: np.ndarray) -> np.ndarray:
        """Pure gather: the table is read, the result is a fresh array."""
        return self._cost_table[key].sum(axis=0)

    def reset(self) -> None:
        """Clearing an attribute the kernel owns is fine."""
        self._cost_table[:] = 0.0


def discount_warmup(cost_table: np.ndarray, counted_from: int) -> np.ndarray:
    """Work on a copy of the shared table."""
    discounted = cost_table.copy()
    discounted[:counted_from] = 0.0
    return discounted
