"""R6 false-positive fixture: spans, non-clock time usage, shadowed names."""

import time

from repro.obs import get_session


def timed_run(workload) -> None:
    """Times itself the sanctioned way: an obs span."""
    obs = get_session()
    with obs.span("fixture.run"):
        workload.run()
    obs.counter("fixture.runs").add()


def throttled_poll(workload, interval_s: float) -> None:
    """``time.sleep`` is not a clock read; waiting is fine."""
    time.sleep(interval_s)
    workload.poll()


def local_shadow() -> float:
    """A local callable named like a clock is not the time module's."""

    def perf_counter() -> float:
        return 0.0

    return perf_counter()
