"""R4 true-positive fixture: aliasing a kernel's shared cost tables.

The dynamic kernel precomputes per-(client, custodian) cost tables once
and reuses them for every batch of a run; a helper that scribbles into
the table it was handed corrupts every later batch through the alias.
"""

import numpy as np


def discount_warmup(cost_table: np.ndarray, counted_from: int) -> np.ndarray:
    """Zero the warmup rows of the *shared* table instead of a copy."""
    cost_table[:counted_from] = 0.0
    return cost_table


def accumulate(totals: np.ndarray, batch_costs: np.ndarray) -> np.ndarray:
    """Write batch sums into the caller's totals buffer via the alias."""
    np.add(totals, batch_costs.sum(axis=0), out=totals)
    totals += 1
    return totals
