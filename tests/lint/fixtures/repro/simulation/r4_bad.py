"""R4 true-positive fixture: in-place mutation of array parameters."""

import numpy as np


def decay(weights: np.ndarray, factor: float) -> np.ndarray:
    """Mutate the caller's buffer three different ways."""
    weights[0] = 0.0
    weights[1:] += factor
    np.multiply(weights, factor, out=weights)
    weights *= factor
    return weights
