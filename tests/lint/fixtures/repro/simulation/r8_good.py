"""R8 false positives: pinned dtypes, audited combined keys."""

import numpy as np


def pinned_arange(n: int):
    return np.arange(n, dtype=np.int64)


def pinned_float_arange():
    return np.arange(0.0, 1.0, 0.1, dtype=np.float64)


def audited_key(a, b, n: int):
    # key fits int64: max value is n*n - 1, far below 2**63 (no overflow)
    key = a.astype(np.int64) * n
    key += b
    return np.bincount(key, minlength=n * n)


def plain_gather(codes, n: int):
    counts = codes  # no arithmetic lineage: not a combined key
    return np.bincount(counts, minlength=n)
