"""R7 true positives: global RNG state and unseeded generators."""

import random

import numpy as np


def global_numpy_seed() -> None:
    np.random.seed(123)  # finding 1: mutates the global singleton


def global_numpy_draw(n: int):
    return np.random.rand(n)  # finding 2: reads the global singleton


def unseeded_default_rng():
    return np.random.default_rng()  # finding 3: entropy-seeded


def unseeded_bitgen():
    return np.random.Generator(np.random.PCG64())  # finding 4


def stdlib_global_draw() -> float:
    return random.random()  # finding 5: hidden global Random instance
