"""R7 false positives: every generator has an explicit seed lineage."""

import random

import numpy as np
from numpy.random import default_rng


def seeded_literal():
    return np.random.default_rng(42)


def seeded_parameter(seed: int):
    return np.random.default_rng(seed)


def seeded_lineage(root_seed: int):
    ss = np.random.SeedSequence(root_seed)
    return [np.random.default_rng(child) for child in ss.spawn(3)]


def seeded_bitgen():
    return np.random.Generator(np.random.PCG64(9))


def seeded_direct_import():
    return default_rng(11)


def local_stdlib_instance() -> float:
    local = random.Random(4)
    return local.random()
