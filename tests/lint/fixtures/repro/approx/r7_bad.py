"""R7 true positives in the approx unit: unreplayable randomness."""

import random

import numpy as np


def unseeded_perturbation(n: int):
    rng = np.random.default_rng()  # finding 1: entropy-seeded
    return rng.normal(0.0, 1e-9, size=n)


def global_jitter(n: int):
    return np.random.random(n)  # finding 2: global singleton

def shuffled_solve_order(caches: list) -> list:
    random.shuffle(caches)  # finding 3: hidden global Random instance
    return caches


def unseeded_bitgen_start():
    return np.random.Generator(np.random.PCG64())  # finding 4
