"""R2 true-positive fixture: approx reaching into forbidden layers."""

from ..simulation.simulator import DynamicSimulator  # noqa: F401
from ..catalog.workload import IRMWorkload  # noqa: F401
import repro.analysis  # noqa: F401
