"""R7 false positives in the approx unit: seed-derived generators only."""

import numpy as np


def seeded_noise(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1e-9, size=n)


def per_cache_lineage(seed: int, caches: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(caches)]
