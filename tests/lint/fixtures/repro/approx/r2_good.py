"""R2 false-positive fixture: the approx unit's sanctioned imports."""

from ..errors import ParameterError  # noqa: F401
from ..obs import get_session  # noqa: F401
from ..core.zipf import zipf_tables  # noqa: F401
from ..topology.graph import Topology  # noqa: F401
from .r7_good import seeded_noise  # noqa: F401  (intra-unit)
import numpy as np  # noqa: F401  (third-party is never layered)
