"""Fixture approx unit for layering/rng rule tests."""
