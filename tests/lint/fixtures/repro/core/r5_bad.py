"""R5 true-positive fixture: core code with no paper traceability."""


def blend(a: float, b: float) -> float:
    """Average two numbers."""
    return (a + b) / 2.0


def undocumented(a: float) -> float:
    return a


class Mixer:
    """Combines things."""
