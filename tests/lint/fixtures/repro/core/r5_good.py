"""R5 false-positive fixture: properly cited core code."""


def blend(a: float, b: float) -> float:
    """Average two latencies (paper eq. 2, §III-B)."""
    return (a + b) / 2.0


def limit_form(n: float) -> float:
    """The s -> 1 logarithmic limit of eq. 6."""
    return n


class Mixer:
    """Implements the Theorem 2 scale-free reduction."""


def _private_is_exempt(a: float) -> float:
    return a
