"""R3 false-positive fixture: every guard style the rule accepts."""

from .validation import require_capacity, require_exponent, require_latency_ordering


def mean_latency(s: float, d0: float, d1: float, d2: float) -> float:
    """Validate via the shared helpers before touching eq. 2."""
    s = require_exponent(s)
    d0, d1, d2 = require_latency_ordering(d0, d1, d2)
    return (d2 - d1) / (d1 - d0) * (1.0 - s)


def inline_guarded(exponent: float) -> float:
    """An explicit if/raise guard also satisfies the rule (eq. 6 domain)."""
    if not 0.0 < exponent < 2.0:
        raise ParameterError("bad exponent")
    return exponent**2


def asserted(exponent: float) -> float:
    """An assert mentioning the parameter counts as a guard (eq. 6 domain)."""
    assert 0.0 < exponent < 2.0
    return exponent**2


def forwarded(s: float, n: int) -> object:
    """Forwarding into a trusted, self-validating sink is enough (eq. 1)."""
    return ZipfPopularity(s, n)


def private_helper_is_exempt() -> float:
    """Public functions without domain params are out of scope (paper glue)."""
    return _kernel(0.8)


def _kernel(s: float) -> float:
    return s * 2.0


class Store:
    """Validates the §III-B capacity via the shared helper."""

    def __init__(self, capacity: int):
        self.capacity = int(require_capacity(capacity, integer=True))


class SubStore(Store):
    """Forwarding to the base constructor propagates the §III-B guard duty."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
