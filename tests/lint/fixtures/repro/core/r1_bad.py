"""R1 true-positive fixture: bare builtin raises inside the package."""


def reject(value: float) -> None:
    """Raise undisciplined exceptions (guards for paper eq. 2 inputs)."""
    if value < 0:
        raise ValueError("negative")
    if value > 1e9:
        raise RuntimeError("too large")
    raise Exception("fallthrough")
