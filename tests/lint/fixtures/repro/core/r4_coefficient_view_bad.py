"""R4 true-positive fixture: mutating cached coefficient columns in place.

The batched solver memoizes eq. 7 coefficient columns and returns them
as shared views; every write pattern below corrupts the cache through
the alias.
"""

import numpy as np


def rescale_coefficients(table: np.ndarray, factor: float) -> np.ndarray:
    """Overwrite the cached eq. 7 coefficient view (the aliasing bug)."""
    table[0] = factor
    np.multiply(table, factor, out=table)
    table += factor
    return table
