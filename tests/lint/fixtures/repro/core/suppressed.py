"""Suppression fixture: every violation here carries a directive."""
# repro-lint: disable-file=R5


def reject() -> None:
    """Line-scope suppression on the offending line (paper glue)."""
    raise ValueError("silenced")  # repro-lint: disable=R1


def reject_next_line() -> None:
    """Standalone directive covers the next code line (paper glue)."""
    # repro-lint: disable=R1
    raise RuntimeError("also silenced")
