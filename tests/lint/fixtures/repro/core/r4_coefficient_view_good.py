"""R4 false-positive fixture: read-only coefficient caching, no aliasing."""

import numpy as np


def rescale_coefficients(table: np.ndarray, factor: float) -> np.ndarray:
    """Copy-then-scale keeps the caller's eq. 7 columns intact."""
    scaled = np.array(table) * factor
    scaled[0] = factor
    return scaled


class CoefficientCache:
    """Memoized eq. 7 coefficient columns, handed out as locked views.

    The class owns the buffer: callers receive a read-only array, so the
    Lemma 2 coefficients cannot drift between solves.
    """

    def __init__(self) -> None:
        self._table = None

    def coefficients(self, factor: float) -> np.ndarray:
        """Build the eq. 7 column once and lock it before sharing."""
        if self._table is None:
            table = np.ones(8) * factor
            table.flags.writeable = False
            self._table = table
        return self._table
