"""R3 true-positive fixture: domain parameters used without guards."""


def mean_latency(s: float, d0: float, d1: float, d2: float) -> float:
    """Feed raw domain parameters straight into eq. 2 arithmetic."""
    gamma = (d2 - d1) / (d1 - d0)
    return gamma * (1.0 - s)


class Store:
    """Holds a §III-B capacity without validating it."""

    def __init__(self, capacity: int):
        self.capacity = capacity
