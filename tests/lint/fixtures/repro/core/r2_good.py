"""R2 false-positive fixture: sanctioned downward imports from core."""

from ..errors import ParameterError  # noqa: F401
from ..topology.graph import Topology  # noqa: F401  (sanctioned bridge edge)
from .r1_good import reject  # noqa: F401  (intra-unit)
import math  # noqa: F401  (stdlib is never layered)
