"""R2 true-positive fixture: core reaching up into higher layers."""

from ..simulation.simulator import SteadyStateSimulator  # noqa: F401
from repro.analysis import sweep  # noqa: F401
import repro.cli  # noqa: F401
