"""R1 false-positive fixture: disciplined raises must not be flagged."""

from ..errors import ParameterError  # noqa: F401  (parsed, never imported)


def reject(value: float) -> None:
    """Raise only ReproError subclasses (guards for paper eq. 2 inputs)."""
    if value < 0:
        raise ParameterError("negative")
    if not isinstance(value, float):
        raise TypeError("not a float")


def reraise() -> None:
    """A bare re-raise is always allowed (paper-agnostic glue)."""
    try:
        reject(-1.0)
    except ParameterError:
        raise
