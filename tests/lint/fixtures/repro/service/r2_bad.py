"""R2 true-positive fixture: service reaching into forbidden layers."""

from ..simulation.simulator import SteadyStateSimulator  # noqa: F401
from ..catalog.workload import IRMWorkload  # noqa: F401
import repro.analysis  # noqa: F401
