"""R7 false positives in the service unit: seed-derived generators only."""

import numpy as np


def replayed_ranks(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.integers(1, 100, size=n)


def per_stream_lineage(seed: int, streams: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(streams)]
