"""Fixture service unit for layering/rng rule tests."""
