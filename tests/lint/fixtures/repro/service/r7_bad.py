"""R7 true positives in the service unit: unreplayable randomness."""

import random

import numpy as np


def synthetic_batch(n: int):
    rng = np.random.default_rng()  # finding 1: entropy-seeded
    return rng.integers(1, 100, size=n)


def jittered_tick(n: int):
    return np.random.random(n)  # finding 2: global singleton


def shuffled_batches(batches: list) -> list:
    random.shuffle(batches)  # finding 3: hidden global Random instance
    return batches


def unseeded_bitgen_stream():
    return np.random.Generator(np.random.PCG64())  # finding 4
