"""R2 false-positive fixture: the service unit's sanctioned imports."""

from ..errors import ParameterError  # noqa: F401
from ..obs import get_session  # noqa: F401
from ..core.scenario import Scenario  # noqa: F401
from ..adaptive.tracker import WarmStrategyTracker  # noqa: F401
from .r7_good import replayed_ranks  # noqa: F401  (intra-unit)
import numpy as np  # noqa: F401  (third-party is never layered)
