"""R7 true positives in the ccn unit: unreplayable packet randomness."""

import random

import numpy as np


def unseeded_nonce_stream(n: int):
    rng = np.random.default_rng()  # finding 1: entropy-seeded nonces
    return rng.integers(0, 2**31, size=n)


def global_arrival_jitter(n: int):
    return np.random.random(n)  # finding 2: global singleton


def shuffled_cohort_order(requests: list) -> list:
    random.shuffle(requests)  # finding 3: hidden global Random instance
    return requests


def unseeded_bitgen_start():
    return np.random.Generator(np.random.PCG64())  # finding 4
