"""R7 false positives in the ccn unit: seed-derived nonce lineages only."""

import numpy as np


def seeded_nonce_stream(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**31, size=n)


def per_node_nonce_lineage(seed: int, nodes: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(nodes)]
