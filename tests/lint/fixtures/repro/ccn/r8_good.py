"""R8 false positives: pinned dtypes, audited cohort outcome keys."""

import numpy as np

N_OUTCOMES = 6


def pinned_rank_ids(n: int):
    return np.arange(n, dtype=np.int64)


def audited_outcome_key(clients, outcomes, n_nodes: int):
    # key fits int64: max value is n_nodes*6 - 1, far below 2**63 (no overflow)
    key = clients.astype(np.int64) * N_OUTCOMES
    key += outcomes
    return np.bincount(key, minlength=n_nodes * N_OUTCOMES)


def plain_outcome_gather(outcome_codes, n: int):
    counts = outcome_codes  # no arithmetic lineage: not a combined key
    return np.bincount(counts, minlength=n)
