"""R8 true positives: unpinned dtypes around cohort outcome keys."""

import numpy as np

N_OUTCOMES = 6


def unpinned_rank_ids(n: int):
    return np.arange(n)  # finding 1: platform-dependent default dtype


def inline_outcome_key(clients, outcomes, n_nodes: int):
    # finding 2: combined key built inline in the bincount call
    return np.bincount(
        clients * N_OUTCOMES + outcomes, minlength=n_nodes * N_OUTCOMES
    )


def unaudited_outcome_key(clients, outcomes, n_nodes: int):
    key = clients * N_OUTCOMES  # findings 3+4: no int64 lineage, no bound
    key += outcomes
    return np.bincount(key, minlength=n_nodes * N_OUTCOMES)
