"""Keeps ``used_helper`` alive; never touches ``dead_helper``."""

from .util import used_helper


def run() -> int:
    return used_helper()
