"""Two exported helpers; only one is referenced anywhere."""

__all__ = ["dead_helper", "used_helper"]


def used_helper() -> int:
    return 1


def dead_helper() -> int:
    return 2
