"""R10 project fixture: a tiny package with one dead re-export."""

from .util import dead_helper, used_helper

__all__ = ["dead_helper", "used_helper"]
