"""Engine, CLI, and live-tree tests for repro-lint."""

import io
import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.lint import discover_files, lint_paths
from repro.lint.cli import main
from repro.lint.rules import RULES, rule_ids

REPO_SRC = Path(repro.__file__).parent.parent  # .../src
REPO_TESTS = Path(__file__).parent.parent  # .../tests
FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestLiveTree:
    def test_src_and_tests_are_clean(self):
        """The acceptance gate: all ten rules pass on the live tree.

        Both trees are linted together so R10's reference index sees
        test usages of exported names (the same invocation the Makefile
        gate uses).
        """
        result = lint_paths([REPO_SRC, REPO_TESTS])
        assert result.diagnostics == [], [
            d.format_text() for d in result.diagnostics
        ]
        assert result.exit_code == 0
        assert result.files_checked > 50

    def test_cli_exits_zero_on_src(self):
        out = io.StringIO()
        assert main(["--no-cache", str(REPO_SRC), str(REPO_TESTS)], out=out) == 0
        assert "0 finding(s)" in out.getvalue()

    def test_cli_exits_nonzero_on_bad_fixture(self):
        out = io.StringIO()
        assert main(["--no-cache", str(FIXTURES / "core" / "r1_bad.py")], out=out) == 1


class TestDiscovery:
    def test_fixture_dirs_are_excluded_from_directory_walks(self):
        files = discover_files([Path(__file__).parent])
        assert all("fixtures" not in f.parts for f in files)

    def test_explicit_fixture_files_are_linted(self):
        target = FIXTURES / "core" / "r1_bad.py"
        assert discover_files([target]) == [target]

    def test_explicit_fixture_directory_is_walked(self):
        files = discover_files([FIXTURES / "core"])
        assert FIXTURES / "core" / "r1_bad.py" in files

    def test_missing_target_raises(self):
        import pytest

        with pytest.raises(FileNotFoundError):
            discover_files([Path("no/such/path.py")])


class TestCli:
    def test_json_output_shape(self):
        out = io.StringIO()
        code = main(
            ["--no-cache", "--format", "json", str(FIXTURES / "core" / "r3_bad.py")],
            out=out,
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["rules"] == rule_ids()
        assert payload["files_checked"] == 1
        rules_hit = {f["rule"] for f in payload["findings"]}
        assert rules_hit == {"R3"}
        first = payload["findings"][0]
        assert set(first) == {
            "path", "line", "col", "rule", "name", "severity", "message",
        }

    def test_select_restricts_rules(self):
        out = io.StringIO()
        code = main(
            ["--no-cache", "--select", "R5", str(FIXTURES / "core" / "r1_bad.py")],
            out=out,
        )
        assert code == 0  # R1 findings exist but only R5 was selected

    def test_unknown_rule_is_usage_error(self):
        assert main(["--select", "R99", str(FIXTURES)]) == 2

    def test_missing_path_is_usage_error(self):
        assert main(["no/such/dir"]) == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert main(["--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule in RULES:
            assert rule.id in text and rule.name in text

    def test_statistics_footer(self):
        out = io.StringIO()
        main(
            ["--no-cache", "--statistics", str(FIXTURES / "core" / "r1_bad.py")],
            out=out,
        )
        assert "R1: 3" in out.getvalue()

    def test_module_entrypoint(self):
        """``python -m repro.lint`` is the documented invocation."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "R1" in proc.stdout


class TestRuleCatalogue:
    def test_all_ten_rules_registered(self):
        assert rule_ids() == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
        ]

    def test_rules_have_metadata(self):
        from repro.lint.rules import PROJECT_RULES

        for rule in list(RULES) + list(PROJECT_RULES):
            assert rule.id and rule.name and rule.description
