"""SARIF rendering, baseline workflow, and ``--fix`` round trips."""

import ast
import io
import json
import shutil
from pathlib import Path

from repro.lint import lint_file, lint_paths
from repro.lint.baseline import Baseline
from repro.lint.cli import main
from repro.lint.fixes import apply_fixes
from repro.lint.rules import rule_ids
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif

FIXTURES = Path(__file__).parent / "fixtures" / "repro"


class TestSarif:
    def _log(self):
        diagnostics, _ = lint_file(FIXTURES / "core" / "r1_bad.py")
        assert diagnostics, "fixture must produce findings"
        return diagnostics, to_sarif(diagnostics)

    def test_log_shape_is_sarif_2_1_0(self):
        diagnostics, log = self._log()
        assert log["$schema"] == SARIF_SCHEMA
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [r["id"] for r in driver["rules"]] == rule_ids()
        assert all(
            r["shortDescription"]["text"] for r in driver["rules"]
        )
        assert len(log["runs"][0]["results"]) == len(diagnostics)

    def test_results_have_one_based_physical_locations(self):
        diagnostics, log = self._log()
        catalogue = [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]]
        for result, diagnostic in zip(log["runs"][0]["results"], diagnostics):
            assert result["ruleId"] == diagnostic.rule_id
            assert result["level"] in ("error", "warning")
            assert result["message"]["text"] == diagnostic.message
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            # SARIF columns are 1-based; our AST columns are 0-based.
            assert region["startColumn"] == diagnostic.col + 1
            assert result["ruleIndex"] == catalogue.index(diagnostic.rule_id)

    def test_artifact_uris_use_forward_slashes(self):
        _, log = self._log()
        for result in log["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]["uri"]
            assert "\\" not in uri

    def test_cli_sarif_output_is_parseable_json(self):
        out = io.StringIO()
        code = main(
            [
                "--no-cache",
                "--format",
                "sarif",
                str(FIXTURES / "core" / "r1_bad.py"),
            ],
            out=out,
        )
        assert code == 1
        log = json.loads(out.getvalue())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]


class TestBaseline:
    def test_round_trip_hides_recorded_findings(self, tmp_path):
        diagnostics, _ = lint_file(FIXTURES / "core" / "r1_bad.py")
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_diagnostics(diagnostics).save(baseline_path)
        loaded = Baseline.load(baseline_path)
        new, baselined = loaded.split(diagnostics)
        assert new == []
        assert len(baselined) == len(diagnostics)

    def test_unrecorded_findings_stay_new(self):
        r1, _ = lint_file(FIXTURES / "core" / "r1_bad.py")
        r3, _ = lint_file(FIXTURES / "core" / "r3_bad.py")
        baseline = Baseline.from_diagnostics(r1)
        new, baselined = baseline.split(r3)
        assert baselined == []
        assert len(new) == len(r3)

    def test_matching_ignores_line_numbers(self, tmp_path):
        diagnostics, _ = lint_file(FIXTURES / "core" / "r1_bad.py")
        baseline = Baseline.from_diagnostics(diagnostics)
        shifted = [
            type(d)(
                path=d.path,
                line=d.line + 40,
                col=d.col,
                rule_id=d.rule_id,
                rule_name=d.rule_name,
                message=d.message,
            )
            for d in diagnostics
        ]
        new, baselined = baseline.split(shifted)
        assert new == []
        assert len(baselined) == len(shifted)

    def test_cli_write_then_apply(self, tmp_path):
        target = str(FIXTURES / "core" / "r1_bad.py")
        baseline_path = tmp_path / "baseline.json"
        out = io.StringIO()
        assert (
            main(
                ["--no-cache", "--write-baseline", str(baseline_path), target],
                out=out,
            )
            == 0
        )
        out = io.StringIO()
        code = main(
            ["--no-cache", "--baseline", str(baseline_path), target], out=out
        )
        assert code == 0
        assert "baselined finding(s) hidden" in out.getvalue()

    def test_cli_unreadable_baseline_is_usage_error(self, tmp_path):
        missing = tmp_path / "nope.json"
        target = str(FIXTURES / "core" / "r1_bad.py")
        assert main(["--no-cache", "--baseline", str(missing), target]) == 2


def _copy_into_package(tmp_path: Path, fixture: str) -> Path:
    """Copy a fixture into a ``repro/simulation`` package so unit
    detection (and therefore R8/R9) applies to the copy."""
    target_dir = tmp_path / "repro" / "simulation"
    target_dir.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (target_dir / "__init__.py").write_text("")
    target = target_dir / Path(fixture).name
    shutil.copy(FIXTURES / fixture, target)
    return target


class TestFixRoundTrip:
    def test_arange_dtype_fix(self, tmp_path):
        target = _copy_into_package(tmp_path, "simulation/r8_bad.py")
        diagnostics, _ = lint_file(target)
        fixed_paths, dropped = apply_fixes(diagnostics)
        assert [Path(p) for p in fixed_paths] == [target]
        assert dropped == []
        rewritten = target.read_text()
        assert "np.arange(n, dtype=np.int64)" in rewritten
        ast.parse(rewritten)  # still valid python
        after, _ = lint_file(target)
        assert not any("np.arange" in d.message for d in after)

    def test_span_try_finally_fix(self, tmp_path):
        target = _copy_into_package(tmp_path, "simulation/r9_bad.py")
        diagnostics, _ = lint_file(target)
        fixed_paths, dropped = apply_fixes(diagnostics)
        assert [Path(p) for p in fixed_paths] == [target]
        assert dropped == []
        rewritten = target.read_text()
        assert "try:" in rewritten
        assert "handle.__exit__(None, None, None)" in rewritten
        ast.parse(rewritten)
        after, _ = lint_file(target)
        # The leaked-assignment finding is gone; the non-mechanical
        # findings (dropped handle, counter/gauge misuse) remain.
        assert not any(
            d.fix is not None and d.fix.kind == "span_try_finally"
            for d in after
        )
        assert len(after) < len(diagnostics)

    def test_cli_fix_reports_and_relints(self, tmp_path):
        target = _copy_into_package(tmp_path, "simulation/r8_bad.py")
        out = io.StringIO()
        code = main(["--no-cache", "--fix", str(target)], out=out)
        assert f"repro-lint: fixed {target}" in out.getvalue()
        # Unfixable findings remain, so the exit code still signals them.
        assert code == 1
        assert "dtype=np.int64" in target.read_text()
