"""Unit tests for repro.topology.io — JSON persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import TopologyError
from repro.topology import (
    Topology,
    load_topology,
    load_topology_file,
    save_topology,
    topology_to_json,
)


class TestRoundtrip:
    @pytest.mark.parametrize("name", ["abilene", "geant"])
    def test_dataset_roundtrip_preserves_statistics(self, name, tmp_path):
        original = load_topology(name)
        path = tmp_path / f"{name}.json"
        save_topology(original, path)
        loaded = load_topology_file(path)
        assert loaded.n_routers == original.n_routers
        assert loaded.n_links == original.n_links
        assert loaded.max_pairwise_latency() == pytest.approx(
            original.max_pairwise_latency(), rel=1e-9
        )
        assert loaded.mean_pairwise_hops() == pytest.approx(
            original.mean_pairwise_hops(), rel=1e-9
        )
        assert loaded.pair_overhead_ms == pytest.approx(
            original.pair_overhead_ms, rel=1e-9
        )
        assert loaded.region == original.region

    def test_coordinates_preserved(self, tmp_path):
        original = load_topology("abilene")
        path = tmp_path / "a.json"
        save_topology(original, path)
        loaded = load_topology_file(path)
        assert loaded.graph.nodes["Seattle"]["lat"] == pytest.approx(47.61)

    def test_simple_topology(self, tmp_path):
        topo = Topology.from_edges(
            [("A", "B"), ("B", "C")], name="line", link_latency_ms=2.5
        )
        path = tmp_path / "line.json"
        save_topology(topo, path)
        loaded = load_topology_file(path)
        assert loaded.link_latency("A", "B") == pytest.approx(2.5)


class TestSchemaValidation:
    def write(self, tmp_path, document) -> str:
        path = tmp_path / "t.json"
        path.write_text(json.dumps(document))
        return str(path)

    def valid(self) -> dict:
        return {
            "name": "t",
            "nodes": [{"id": "A"}, {"id": "B"}],
            "links": [{"a": "A", "b": "B", "latency_ms": 1.0}],
        }

    def test_missing_file(self, tmp_path):
        with pytest.raises(TopologyError):
            load_topology_file(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TopologyError):
            load_topology_file(path)

    def test_missing_required_key(self, tmp_path):
        doc = self.valid()
        del doc["links"]
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))

    def test_node_without_id(self, tmp_path):
        doc = self.valid()
        doc["nodes"].append({"lat": 1.0})
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))

    def test_duplicate_node(self, tmp_path):
        doc = self.valid()
        doc["nodes"].append({"id": "A"})
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))

    def test_link_missing_latency(self, tmp_path):
        doc = self.valid()
        doc["links"][0] = {"a": "A", "b": "B"}
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))

    def test_link_to_undeclared_node(self, tmp_path):
        doc = self.valid()
        doc["links"].append({"a": "A", "b": "Z", "latency_ms": 1.0})
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))

    def test_disconnected_rejected_by_topology(self, tmp_path):
        doc = {
            "name": "t",
            "nodes": [{"id": "A"}, {"id": "B"}, {"id": "C"}, {"id": "D"}],
            "links": [
                {"a": "A", "b": "B", "latency_ms": 1.0},
                {"a": "C", "b": "D", "latency_ms": 1.0},
            ],
        }
        with pytest.raises(TopologyError):
            load_topology_file(self.write(tmp_path, doc))


class TestScenarioFromTopology:
    def test_extracts_table_iii_values(self):
        from repro.core import Scenario

        scenario = Scenario.from_topology(load_topology("us-a"), alpha=0.8)
        assert scenario.n_routers == 20
        assert scenario.unit_cost == pytest.approx(26.7, abs=1e-3)
        assert scenario.peer_delta == pytest.approx(2.2842, abs=1e-3)

    def test_ms_metric(self):
        from repro.core import Scenario

        scenario = Scenario.from_topology(
            load_topology("us-a"), metric="ms", alpha=0.8
        )
        assert scenario.peer_delta == pytest.approx(15.7, abs=1e-3)

    def test_overrides_win(self):
        from repro.core import Scenario

        scenario = Scenario.from_topology(
            load_topology("us-a"), alpha=0.8, unit_cost=99.0
        )
        assert scenario.unit_cost == 99.0
