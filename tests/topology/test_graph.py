"""Unit tests for repro.topology.graph — the Topology substrate."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology.graph import Topology


class TestConstruction:
    def test_from_edges(self):
        topo = Topology.from_edges([("A", "B"), ("B", "C")], link_latency_ms=3.0)
        assert topo.n_routers == 3
        assert topo.n_links == 2
        assert topo.n_directed_edges == 4
        assert topo.link_latency("A", "B") == 3.0

    def test_rejects_disconnected(self):
        graph = nx.Graph([("A", "B"), ("C", "D")])
        with pytest.raises(TopologyError):
            Topology(graph)

    def test_rejects_empty(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph())

    def test_rejects_directed(self):
        with pytest.raises(TopologyError):
            Topology(nx.DiGraph([("A", "B")]))

    def test_rejects_nonpositive_link_latency(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", latency_ms=0.0)
        with pytest.raises(TopologyError):
            Topology(graph)

    def test_rejects_nonpositive_default_latency(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph([("A", "B")]), default_link_latency_ms=-1.0)

    def test_rejects_negative_pair_overhead(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph([("A", "B")]), pair_overhead_ms=-1.0)

    def test_single_node_allowed(self):
        graph = nx.Graph()
        graph.add_node("solo")
        topo = Topology(graph)
        assert topo.n_routers == 1
        assert topo.mean_pairwise_hops() == 0.0

    def test_copy_isolates_input_graph(self):
        graph = nx.Graph([("A", "B")])
        topo = Topology(graph, default_link_latency_ms=1.0)
        graph.add_edge("B", "C")
        assert topo.n_routers == 2

    def test_from_coordinates(self):
        coords = {"NY": (40.71, -74.01), "LA": (34.05, -118.24)}
        topo = Topology.from_coordinates(coords, [("NY", "LA")], km_per_ms=200.0)
        # ~3940 km / 200 km/ms ~ 19.7 ms
        assert topo.link_latency("NY", "LA") == pytest.approx(19.7, rel=0.03)

    def test_from_coordinates_rejects_unknown_node(self):
        with pytest.raises(TopologyError):
            Topology.from_coordinates({"A": (0, 0)}, [("A", "B")])


class TestAccessors:
    @pytest.fixture
    def topo(self) -> Topology:
        return Topology.from_edges(
            [("A", "B"), ("B", "C"), ("C", "D"), ("A", "D")],
            name="square",
            link_latency_ms=2.0,
        )

    def test_nodes_stable_order(self, topo):
        assert topo.nodes == ("A", "B", "C", "D")

    def test_index_of(self, topo):
        assert topo.index_of("A") == 0
        assert topo.index_of("D") == 3

    def test_index_of_unknown_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.index_of("Z")

    def test_link_latency_missing_raises(self, topo):
        with pytest.raises(TopologyError):
            topo.link_latency("A", "C")

    def test_repr(self, topo):
        assert "square" in repr(topo)
        assert "4" in repr(topo)

    def test_degree_sequence(self, topo):
        assert topo.degree_sequence() == [2, 2, 2, 2]


class TestMatrices:
    @pytest.fixture
    def topo(self) -> Topology:
        return Topology.from_edges(
            [("A", "B"), ("B", "C"), ("C", "D")], link_latency_ms=2.0
        )

    def test_hop_matrix_line(self, topo):
        hops = topo.hop_matrix()
        a, d = topo.index_of("A"), topo.index_of("D")
        assert hops[a, d] == 3
        assert np.all(np.diag(hops) == 0)
        assert np.allclose(hops, hops.T)

    def test_latency_matrix_line(self, topo):
        lat = topo.latency_matrix()
        a, d = topo.index_of("A"), topo.index_of("D")
        assert lat[a, d] == pytest.approx(6.0)

    def test_latency_matrix_with_overhead(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", latency_ms=2.0)
        topo = Topology(graph, pair_overhead_ms=5.0)
        lat = topo.latency_matrix()
        assert lat[0, 1] == pytest.approx(7.0)
        assert lat[0, 0] == 0.0  # diagonal untouched

    def test_latency_respects_shortcuts(self):
        """Dijkstra must prefer a low-latency two-hop path."""
        graph = nx.Graph()
        graph.add_edge("A", "B", latency_ms=10.0)
        graph.add_edge("A", "C", latency_ms=1.0)
        graph.add_edge("C", "B", latency_ms=1.0)
        topo = Topology(graph)
        lat = topo.latency_matrix()
        assert lat[topo.index_of("A"), topo.index_of("B")] == pytest.approx(2.0)

    def test_matrices_cached_but_copied(self, topo):
        first = topo.hop_matrix()
        first[0, 0] = 99.0
        second = topo.hop_matrix()
        assert second[0, 0] == 0.0

    def test_shortest_path(self, topo):
        assert topo.shortest_path("A", "D") == ["A", "B", "C", "D"]


class TestStatistics:
    def test_mean_pairwise_hops_line(self):
        topo = Topology.from_edges([("A", "B"), ("B", "C")])
        # pairs: AB=1 BA=1 AC=2 CA=2 BC=1 CB=1 -> sum 8 over 6 pairs
        assert topo.mean_pairwise_hops() == pytest.approx(8 / 6)

    def test_mean_pairwise_latency(self):
        topo = Topology.from_edges([("A", "B"), ("B", "C")], link_latency_ms=3.0)
        assert topo.mean_pairwise_latency() == pytest.approx(3.0 * 8 / 6)

    def test_max_pairwise_latency(self):
        topo = Topology.from_edges([("A", "B"), ("B", "C")], link_latency_ms=3.0)
        assert topo.max_pairwise_latency() == pytest.approx(6.0)

    def test_diameter(self):
        topo = Topology.from_edges([("A", "B"), ("B", "C"), ("C", "D")])
        assert topo.diameter_hops() == 3

    def test_scale_latencies(self):
        topo = Topology.from_edges([("A", "B")], link_latency_ms=3.0)
        scaled = topo.scale_latencies(2.0)
        assert scaled.link_latency("A", "B") == pytest.approx(6.0)
        assert topo.link_latency("A", "B") == pytest.approx(3.0)

    def test_scale_latencies_scales_overhead(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", latency_ms=1.0)
        topo = Topology(graph, pair_overhead_ms=4.0)
        scaled = topo.scale_latencies(0.5)
        assert scaled.pair_overhead_ms == pytest.approx(2.0)

    def test_scale_rejects_nonpositive(self):
        topo = Topology.from_edges([("A", "B")])
        with pytest.raises(TopologyError):
            topo.scale_latencies(0.0)
