"""Determinism + structure tests for the hierarchical ISP generator."""

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology import HierarchicalTopology, Topology, generate_hierarchy
from repro.topology.hierarchy import MAX_TIER_ROUTERS


def edge_list(topology):
    """Canonical (u, v, latency, distance) edge tuples, sorted."""
    return sorted(
        (min(u, v), max(u, v), data["latency_ms"], data["distance_km"])
        for u, v, data in topology.graph.edges(data=True)
    )


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        a = generate_hierarchy(42, routers=300, regions=10)
        b = generate_hierarchy(42, routers=300, regions=10)
        assert edge_list(a) == edge_list(b)
        assert a.roles() == b.roles()
        assert a.nodes == b.nodes
        assert [a.origin_cost_of(r) for r in range(10)] == [
            b.origin_cost_of(r) for r in range(10)
        ]

    def test_different_seeds_differ(self):
        a = generate_hierarchy(42, routers=300, regions=10)
        b = generate_hierarchy(43, routers=300, regions=10)
        assert edge_list(a) != edge_list(b)

    def test_region_structure_independent_of_other_regions(self):
        # Region r's draws come from SeedSequence child r, so adding
        # regions must not disturb earlier regions' *internal* edges.
        small = generate_hierarchy(7, routers=106, regions=2, backbone_routers=6)
        large = generate_hierarchy(7, routers=156, regions=3, backbone_routers=6)

        def internal_edges(h, region):
            nodes = set(h.region_nodes(region))
            return sorted(
                (u, v, d["latency_ms"])
                for u, v, d in h.graph.edges(data=True)
                if u in nodes and v in nodes
            )

        assert internal_edges(small, 0) == internal_edges(large, 0)
        assert internal_edges(small, 1) == internal_edges(large, 1)


class TestStructure:
    @pytest.fixture(scope="class")
    def hierarchy(self):
        return generate_hierarchy(3, routers=400, regions=12)

    def test_is_a_topology(self, hierarchy):
        assert isinstance(hierarchy, HierarchicalTopology)
        assert isinstance(hierarchy, Topology)
        assert hierarchy.n_routers == 400

    def test_partition_covers_all_nodes_once(self, hierarchy):
        seen = list(hierarchy.backbone_nodes)
        for r in range(hierarchy.region_count):
            seen.extend(hierarchy.region_nodes(r))
        assert sorted(seen) == list(range(400))
        assert len(set(seen)) == 400

    def test_region_of_inverts_the_partition(self, hierarchy):
        for node in hierarchy.backbone_nodes:
            assert hierarchy.region_of(node) is None
        for r in range(hierarchy.region_count):
            for node in hierarchy.region_nodes(r):
                assert hierarchy.region_of(node) == r

    def test_roles_are_consistent(self, hierarchy):
        roles = hierarchy.roles()
        assert set(roles) == set(range(400))
        for node in hierarchy.backbone_nodes:
            assert roles[node] == "backbone"
        for r in range(hierarchy.region_count):
            gateway = hierarchy.gateway_of(r)
            assert roles[gateway] == "gateway"
            assert gateway == hierarchy.region_nodes(r)[0]
            interior = hierarchy.region_nodes(r)[1:]
            assert all(roles[n] in ("aggregation", "edge") for n in interior)
        # tiers=3 default promotes some aggregation routers
        assert "aggregation" in roles.values()

    def test_tiers_two_has_no_aggregation(self):
        flat = generate_hierarchy(3, routers=200, regions=8, tiers=2)
        assert "aggregation" not in flat.roles().values()

    def test_gateway_uplinks_reach_the_backbone(self, hierarchy):
        for r in range(hierarchy.region_count):
            gateway = hierarchy.gateway_of(r)
            backbone_neighbours = [
                n
                for n in hierarchy.graph.neighbors(gateway)
                if n in set(hierarchy.backbone_nodes)
            ]
            assert len(backbone_neighbours) >= 2

    def test_region_subtopology_is_connected_with_global_ids(self, hierarchy):
        sub = hierarchy.region_subtopology(4)
        assert set(sub.nodes) == set(hierarchy.region_nodes(4))
        assert nx.is_connected(sub.graph)

    def test_whole_graph_is_connected_with_positive_latencies(self, hierarchy):
        assert nx.is_connected(hierarchy.graph)
        assert all(
            data["latency_ms"] > 0
            for _, _, data in hierarchy.graph.edges(data=True)
        )

    def test_origin_costs_are_positive_and_finite(self, hierarchy):
        for r in range(hierarchy.region_count):
            hops, latency = hierarchy.origin_cost_of(r)
            assert hops >= 0
            assert latency >= 0

    def test_backbone_links_are_longer_than_region_links(self, hierarchy):
        backbone = set(hierarchy.backbone_nodes)
        backbone_latency = [
            d["latency_ms"]
            for u, v, d in hierarchy.graph.edges(data=True)
            if u in backbone and v in backbone
        ]
        region_latency = [
            d["latency_ms"]
            for u, v, d in hierarchy.graph.edges(data=True)
            if u not in backbone and v not in backbone
        ]
        assert backbone_latency and region_latency
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(backbone_latency) > mean(region_latency)


class TestScale:
    def test_five_thousand_routers_generate(self):
        h = generate_hierarchy(0, routers=5000, regions=100)
        assert h.n_routers == 5000
        assert h.region_count == 100
        sizes = [len(h.region_nodes(r)) for r in range(100)]
        assert max(sizes) - min(sizes) <= 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"routers": 1},
            {"regions": 0},
            {"tiers": 4},
            {"waxman_alpha": 0.0},
            {"waxman_beta": 1.5},
            {"domain_km": -1.0},
            {"km_per_ms": 0.0},
            {"min_link_ms": 0.0},
            {"gateway_uplinks": 0},
            {"aggregation_fraction": 1.0},
            {"backbone_routers": 0},
            # 10 routers cannot feed 20 regions after the backbone
            {"routers": 10, "regions": 20},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        base = {"routers": 100, "regions": 4}
        base.update(kwargs)
        with pytest.raises(TopologyError):
            generate_hierarchy(0, **base)

    def test_oversized_tier_raises(self):
        with pytest.raises(TopologyError, match=str(MAX_TIER_ROUTERS)):
            generate_hierarchy(0, routers=MAX_TIER_ROUTERS + 10, regions=1)

    def test_unknown_region_and_node_raise(self):
        h = generate_hierarchy(0, routers=60, regions=3)
        with pytest.raises(TopologyError):
            h.region_nodes(3)
        with pytest.raises(TopologyError):
            h.origin_cost_of(-1)
        with pytest.raises(TopologyError):
            h.role_of(10_000)
        with pytest.raises(TopologyError):
            h.region_of(10_000)
