"""Unit tests for repro.topology.geo — geographic primitives."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.topology.geo import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    great_circle_km,
    propagation_delay_ms,
)


class TestGreatCircle:
    def test_zero_distance_same_point(self):
        assert great_circle_km(40.0, -74.0, 40.0, -74.0) == pytest.approx(0.0)

    def test_known_city_pair(self):
        """New York - Los Angeles is about 3940 km."""
        km = great_circle_km(40.71, -74.01, 34.05, -118.24)
        assert km == pytest.approx(3940, rel=0.02)

    def test_symmetric(self):
        a = great_circle_km(48.86, 2.35, 52.52, 13.40)
        b = great_circle_km(52.52, 13.40, 48.86, 2.35)
        assert a == pytest.approx(b, rel=1e-12)

    def test_quarter_meridian(self):
        """Equator to pole along a meridian is a quarter circumference."""
        km = great_circle_km(0.0, 0.0, 90.0, 0.0)
        import math

        assert km == pytest.approx(math.pi * EARTH_RADIUS_KM / 2, rel=1e-9)

    def test_antipodal_half_circumference(self):
        import math

        km = great_circle_km(0.0, 0.0, 0.0, 180.0)
        assert km == pytest.approx(math.pi * EARTH_RADIUS_KM, rel=1e-9)

    def test_triangle_inequality(self):
        paris = (48.86, 2.35)
        berlin = (52.52, 13.40)
        rome = (41.90, 12.50)
        direct = great_circle_km(*paris, *rome)
        via = great_circle_km(*paris, *berlin) + great_circle_km(*berlin, *rome)
        assert direct <= via + 1e-9

    def test_rejects_out_of_range_latitude(self):
        with pytest.raises(ParameterError):
            great_circle_km(91.0, 0.0, 0.0, 0.0)
        with pytest.raises(ParameterError):
            great_circle_km(0.0, 0.0, -91.0, 0.0)

    def test_rejects_out_of_range_longitude(self):
        with pytest.raises(ParameterError):
            great_circle_km(0.0, 181.0, 0.0, 0.0)


class TestPropagationDelay:
    def test_fiber_constant(self):
        assert propagation_delay_ms(200.0) == pytest.approx(1.0)
        assert FIBER_KM_PER_MS == 200.0

    def test_custom_speed(self):
        assert propagation_delay_ms(300.0, km_per_ms=300.0) == pytest.approx(1.0)

    def test_zero_distance(self):
        assert propagation_delay_ms(0.0) == 0.0

    def test_rejects_negative_distance(self):
        with pytest.raises(ParameterError):
            propagation_delay_ms(-1.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ParameterError):
            propagation_delay_ms(10.0, km_per_ms=0.0)
