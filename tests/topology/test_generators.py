"""Unit tests for repro.topology.generators — synthetic topologies."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import TopologyError
from repro.topology.generators import (
    barabasi_albert_topology,
    erdos_renyi_topology,
    grid_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)


class TestRing:
    def test_structure(self):
        topo = ring_topology(8)
        assert topo.n_routers == 8
        assert topo.n_links == 8
        assert topo.degree_sequence() == [2] * 8

    def test_diameter(self):
        assert ring_topology(8).diameter_hops() == 4

    def test_rejects_too_small(self):
        with pytest.raises(TopologyError):
            ring_topology(2)

    def test_rejects_bad_latency(self):
        with pytest.raises(TopologyError):
            ring_topology(5, link_latency_ms=0.0)


class TestStar:
    def test_structure(self):
        topo = star_topology(6)
        assert topo.n_routers == 6
        assert topo.n_links == 5
        assert max(topo.degree_sequence()) == 5

    def test_diameter_is_two(self):
        assert star_topology(6).diameter_hops() == 2

    def test_rejects_too_small(self):
        with pytest.raises(TopologyError):
            star_topology(1)


class TestGrid:
    def test_structure(self):
        topo = grid_topology(3, 4)
        assert topo.n_routers == 12
        assert topo.n_links == 3 * 3 + 2 * 4  # 17 lattice edges

    def test_diameter_manhattan(self):
        assert grid_topology(3, 4).diameter_hops() == 2 + 3

    def test_rejects_bad_dimensions(self):
        with pytest.raises(TopologyError):
            grid_topology(0, 4)


class TestErdosRenyi:
    def test_connected_and_sized(self):
        topo = erdos_renyi_topology(30, 0.2, seed=1)
        assert topo.n_routers == 30
        assert nx.is_connected(topo.graph)

    def test_deterministic_under_seed(self):
        a = erdos_renyi_topology(20, 0.3, seed=5)
        b = erdos_renyi_topology(20, 0.3, seed=5)
        assert set(a.graph.edges()) == set(b.graph.edges())

    def test_rejects_bad_probability(self):
        with pytest.raises(TopologyError):
            erdos_renyi_topology(10, 0.0)
        with pytest.raises(TopologyError):
            erdos_renyi_topology(10, 1.5)

    def test_sparse_failure_raises(self):
        with pytest.raises(TopologyError):
            erdos_renyi_topology(200, 0.001, seed=0, max_attempts=2)


class TestWaxman:
    def test_connected_with_distance_latencies(self):
        topo = waxman_topology(25, seed=3)
        assert topo.n_routers == 25
        assert nx.is_connected(topo.graph)
        for _, _, data in topo.graph.edges(data=True):
            assert data["latency_ms"] > 0
            assert data["distance_km"] >= 0

    def test_deterministic_under_seed(self):
        a = waxman_topology(15, seed=9)
        b = waxman_topology(15, seed=9)
        assert set(a.graph.edges()) == set(b.graph.edges())

    def test_rejects_bad_parameters(self):
        with pytest.raises(TopologyError):
            waxman_topology(1)
        with pytest.raises(TopologyError):
            waxman_topology(10, alpha=0.0)
        with pytest.raises(TopologyError):
            waxman_topology(10, beta=1.5)


class TestBarabasiAlbert:
    def test_structure(self):
        topo = barabasi_albert_topology(40, 2, seed=1)
        assert topo.n_routers == 40
        assert topo.n_links == 2 * (40 - 2)
        assert nx.is_connected(topo.graph)

    def test_hub_emerges(self):
        degrees = barabasi_albert_topology(100, 2, seed=0).degree_sequence()
        assert degrees[0] >= 3 * degrees[-1]

    def test_rejects_bad_attachment(self):
        with pytest.raises(TopologyError):
            barabasi_albert_topology(5, 5)
