"""Unit tests for repro.topology.parameters — Table III extraction."""

from __future__ import annotations

import pytest

from repro.topology.datasets import TABLE_III_TARGETS, load_topology
from repro.topology.graph import Topology
from repro.topology.parameters import TopologyParameters, topology_parameters


class TestExtraction:
    def test_line_topology_values(self):
        topo = Topology.from_edges(
            [("A", "B"), ("B", "C")], name="line", link_latency_ms=4.0
        )
        params = topology_parameters(topo)
        assert params.name == "line"
        assert params.n_routers == 3
        assert params.unit_cost_ms == pytest.approx(8.0)  # A-C via B
        assert params.mean_hops == pytest.approx(8 / 6)
        assert params.mean_latency_ms == pytest.approx(4.0 * 8 / 6)

    @pytest.mark.parametrize("name", sorted(TABLE_III_TARGETS))
    def test_matches_paper_table(self, name):
        params = topology_parameters(load_topology(name))
        target = TABLE_III_TARGETS[name]
        assert params.n_routers == target.n_routers
        assert params.unit_cost_ms == pytest.approx(target.unit_cost_ms, rel=1e-6)
        assert params.mean_latency_ms == pytest.approx(
            target.mean_latency_ms, rel=1e-6
        )
        assert params.mean_hops == pytest.approx(target.mean_hops, abs=5e-5)


class TestPeerDelta:
    def test_metric_selection(self):
        params = TopologyParameters(
            name="x", n_routers=5, unit_cost_ms=20.0,
            mean_latency_ms=10.0, mean_hops=2.5,
        )
        assert params.peer_delta(metric="hops") == 2.5
        assert params.peer_delta(metric="ms") == 10.0

    def test_default_is_hops(self):
        params = TopologyParameters(
            name="x", n_routers=5, unit_cost_ms=20.0,
            mean_latency_ms=10.0, mean_hops=2.5,
        )
        assert params.peer_delta() == 2.5

    def test_unknown_metric_raises(self):
        params = TopologyParameters(
            name="x", n_routers=5, unit_cost_ms=20.0,
            mean_latency_ms=10.0, mean_hops=2.5,
        )
        with pytest.raises(ValueError):
            params.peer_delta(metric="seconds")
