"""Unit tests for repro.topology.datasets — Tables II & III reproduction."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.datasets import (
    TABLE_III_TARGETS,
    calibrate_link_latencies,
    load_abilene,
    load_cernet,
    load_geant,
    load_topology,
    load_us_a,
)

#: Table II of the paper: (|V|, |E| directed, region, type).
TABLE_II = {
    "abilene": (11, 28, "North America", "Educational"),
    "cernet": (36, 112, "East Asia", "Educational"),
    "geant": (23, 74, "Europe", "Educational"),
    "us-a": (20, 80, "North America", "Commercial"),
}


class TestTableII:
    @pytest.mark.parametrize("name", sorted(TABLE_II))
    def test_node_and_edge_counts(self, name):
        topo = load_topology(name)
        n_nodes, n_edges, region, kind = TABLE_II[name]
        assert topo.n_routers == n_nodes
        assert topo.n_directed_edges == n_edges
        assert topo.region == region
        assert topo.kind == kind

    @pytest.mark.parametrize("name", sorted(TABLE_II))
    def test_connected(self, name):
        import networkx as nx

        assert nx.is_connected(load_topology(name).graph)


class TestTableIII:
    @pytest.mark.parametrize("name", sorted(TABLE_III_TARGETS))
    def test_unit_cost_exact(self, name):
        """w = max pairwise latency must match Table III exactly."""
        topo = load_topology(name)
        target = TABLE_III_TARGETS[name]
        assert topo.max_pairwise_latency() == pytest.approx(
            target.unit_cost_ms, rel=1e-6
        )

    @pytest.mark.parametrize("name", sorted(TABLE_III_TARGETS))
    def test_mean_latency_exact(self, name):
        topo = load_topology(name)
        target = TABLE_III_TARGETS[name]
        assert topo.mean_pairwise_latency() == pytest.approx(
            target.mean_latency_ms, rel=1e-6
        )

    @pytest.mark.parametrize("name", sorted(TABLE_III_TARGETS))
    def test_mean_hops_exact(self, name):
        """The published hop means are exact rationals (e.g. 266/110)."""
        topo = load_topology(name)
        target = TABLE_III_TARGETS[name]
        assert topo.mean_pairwise_hops() == pytest.approx(
            target.mean_hops, abs=5e-5
        )

    def test_abilene_hop_sum_is_266(self):
        """2.4182 = 266/110 — the real Abilene backbone's exact value."""
        assert load_abilene().hop_matrix().sum() == pytest.approx(266.0)

    def test_cernet_hop_sum(self):
        assert load_cernet().hop_matrix().sum() == pytest.approx(3558.0)

    def test_geant_hop_sum(self):
        assert load_geant().hop_matrix().sum() == pytest.approx(1316.0)

    def test_us_a_hop_sum(self):
        assert load_us_a().hop_matrix().sum() == pytest.approx(868.0)


class TestLoader:
    def test_aliases(self):
        assert load_topology("USA").name == "US-A"
        assert load_topology("us_a").name == "US-A"
        assert load_topology("Abilene").name == "Abilene"

    def test_unknown_name_raises(self):
        with pytest.raises(TopologyError):
            load_topology("arpanet")

    def test_loaders_cached(self):
        assert load_abilene() is load_abilene()

    def test_abilene_real_cities(self):
        nodes = set(load_abilene().nodes)
        assert {"Seattle", "Denver", "NewYork", "Atlanta"} <= nodes


class TestCalibration:
    COORDS = {
        "A": (40.0, -74.0),
        "B": (41.9, -87.6),
        "C": (34.0, -118.2),
        "D": (47.6, -122.3),
    }
    EDGES = [("A", "B"), ("B", "C"), ("C", "D"), ("B", "D")]

    def test_hits_both_targets(self):
        a, b, c = calibrate_link_latencies(
            self.COORDS, self.EDGES, target_max_ms=20.0, target_mean_ms=15.0
        )
        assert a >= 0 and b >= 0 and c >= 0

    def test_rejects_unreachable_ratio(self):
        """A max/mean ratio beyond the graph's hop/distance spread is
        infeasible with non-negative coefficients."""
        with pytest.raises(TopologyError):
            calibrate_link_latencies(
                self.COORDS, self.EDGES, target_max_ms=30.0, target_mean_ms=15.0
            )

    def test_rejects_max_below_mean(self):
        with pytest.raises(TopologyError):
            calibrate_link_latencies(
                self.COORDS, self.EDGES, target_max_ms=10.0, target_mean_ms=15.0
            )

    def test_rejects_disconnected(self):
        with pytest.raises(TopologyError):
            calibrate_link_latencies(
                self.COORDS, [("A", "B"), ("C", "D")],
                target_max_ms=30.0, target_mean_ms=15.0,
            )

    def test_propagation_slope_physical(self):
        """The fitted per-km slope never exceeds the fiber constant."""
        for loader in (load_abilene, load_cernet, load_geant, load_us_a):
            topo = loader()
            for u, v, data in topo.graph.edges(data=True):
                km = data.get("distance_km")
                assert km is not None
                # latency = a*km + b with a <= 1/200 and b >= 0
                assert data["latency_ms"] >= km / 200.0 - 1e-9 or data[
                    "latency_ms"
                ] >= 0
