"""Unit tests for repro.catalog.content — catalogs and content objects."""

from __future__ import annotations

import pytest

from repro.catalog.content import Catalog, ContentObject
from repro.errors import CatalogError


class TestContentObject:
    def test_valid(self):
        obj = ContentObject(rank=3, name="/x/3")
        assert obj.rank == 3

    def test_ordering_by_rank(self):
        a = ContentObject(1, "/x/1")
        b = ContentObject(2, "/x/2")
        assert a < b

    def test_rejects_bad_rank(self):
        with pytest.raises(CatalogError):
            ContentObject(rank=0, name="/x/0")

    def test_rejects_empty_name(self):
        with pytest.raises(CatalogError):
            ContentObject(rank=1, name="")


class TestCatalog:
    def test_size_and_len(self):
        catalog = Catalog(100)
        assert len(catalog) == 100
        assert catalog.size == 100

    def test_lazy_huge_catalog(self):
        catalog = Catalog(10**9)
        obj = catalog.object_at(10**9)
        assert obj.rank == 10**9

    def test_contains(self):
        catalog = Catalog(10)
        assert 1 in catalog
        assert 10 in catalog
        assert 0 not in catalog
        assert 11 not in catalog
        assert "1" not in catalog

    def test_object_names_are_ccn_style(self):
        catalog = Catalog(10, prefix="/repro/video")
        assert catalog.object_at(7).name == "/repro/video/7"

    def test_object_at_rejects_out_of_range(self):
        with pytest.raises(CatalogError):
            Catalog(10).object_at(11)
        with pytest.raises(CatalogError):
            Catalog(10).object_at(0)

    def test_rank_of_roundtrip(self):
        catalog = Catalog(50)
        for rank in (1, 25, 50):
            assert catalog.rank_of(catalog.object_at(rank).name) == rank

    def test_rank_of_rejects_foreign_prefix(self):
        with pytest.raises(CatalogError):
            Catalog(10).rank_of("/other/5")

    def test_rank_of_rejects_non_numeric(self):
        with pytest.raises(CatalogError):
            Catalog(10).rank_of("/repro/content/abc")

    def test_rank_of_rejects_out_of_range(self):
        with pytest.raises(CatalogError):
            Catalog(10).rank_of("/repro/content/11")

    def test_top_iterates_in_rank_order(self):
        ranks = [obj.rank for obj in Catalog(100).top(5)]
        assert ranks == [1, 2, 3, 4, 5]

    def test_top_clips_at_catalog_size(self):
        assert len(list(Catalog(3).top(10))) == 3

    def test_top_rejects_negative(self):
        with pytest.raises(CatalogError):
            list(Catalog(3).top(-1))

    def test_rejects_bad_size(self):
        with pytest.raises(CatalogError):
            Catalog(0)

    def test_rejects_bad_prefix(self):
        with pytest.raises(CatalogError):
            Catalog(10, prefix="no-slash")

    def test_repr(self):
        assert "42" in repr(Catalog(42))
