"""Unit tests for the batched workload API (RequestBatch, batches())."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import (
    IRMWorkload,
    LocalityWorkload,
    Request,
    RequestBatch,
    SequenceWorkload,
    TraceWorkload,
)
from repro.errors import ParameterError

CLIENTS = ["A", "B", "C"]


def workloads():
    """One instance of every generator, fixed seeds."""
    model = ZipfModel(0.8, 200)
    return {
        "irm": IRMWorkload(model, CLIENTS, seed=7),
        "sequence": SequenceWorkload(
            [("A", [1, 1, 2]), ("B", [3, 4]), ("C", [5])]
        ),
        "locality": LocalityWorkload(
            model, CLIENTS, locality=0.4, window=8, seed=3
        ),
        "trace": TraceWorkload(
            [Request(CLIENTS[i % 3], 1 + (i * 7) % 50) for i in range(500)]
        ),
    }


class TestRequestBatch:
    def test_roundtrip_to_requests(self):
        batch = RequestBatch(
            clients=("A", "B"), client_index=[0, 1, 0], ranks=[3, 1, 2]
        )
        assert len(batch) == 3
        assert list(batch.requests()) == [
            Request("A", 3),
            Request("B", 1),
            Request("A", 2),
        ]

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ParameterError):
            RequestBatch(clients=("A",), client_index=[0, 0], ranks=[1])

    def test_rejects_bad_rank(self):
        with pytest.raises(ParameterError):
            RequestBatch(clients=("A",), client_index=[0], ranks=[0])

    def test_rejects_out_of_palette_index(self):
        with pytest.raises(ParameterError):
            RequestBatch(clients=("A",), client_index=[1], ranks=[1])

    def test_rejects_non_1d(self):
        with pytest.raises(ParameterError):
            RequestBatch(
                clients=("A",), client_index=[[0]], ranks=[[1]]
            )

    def test_concatenate(self):
        a = RequestBatch(clients=("A",), client_index=[0], ranks=[1])
        b = RequestBatch(clients=("A",), client_index=[0], ranks=[2])
        joined = RequestBatch.concatenate([a, b])
        assert joined.ranks.tolist() == [1, 2]

    def test_concatenate_rejects_palette_mismatch(self):
        a = RequestBatch(clients=("A",), client_index=[0], ranks=[1])
        b = RequestBatch(clients=("B",), client_index=[0], ranks=[2])
        with pytest.raises(ParameterError):
            RequestBatch.concatenate([a, b])

    def test_concatenate_rejects_empty(self):
        with pytest.raises(ParameterError):
            RequestBatch.concatenate([])


class TestBatchScalarEquivalence:
    """batches() and requests() must describe the same stream."""

    @pytest.mark.parametrize("name", ["irm", "sequence", "locality", "trace"])
    def test_batches_match_scalar_stream(self, name):
        count = 500
        scalar = list(workloads()[name].requests(count))
        batched = [
            request
            for batch in workloads()[name].batches(count, batch_size=64)
            for request in batch.requests()
        ]
        assert batched == scalar

    @pytest.mark.parametrize("name", ["irm", "sequence", "locality", "trace"])
    @pytest.mark.parametrize("batch_size", [1, 7, 100, 10_000])
    def test_batch_size_invariance(self, name, batch_size):
        reference = workloads()[name].sample_batch(300)
        chunks = list(
            workloads()[name].batches(300, batch_size=batch_size)
        )
        joined = RequestBatch.concatenate(chunks)
        assert joined.clients == reference.clients
        assert np.array_equal(joined.client_index, reference.client_index)
        assert np.array_equal(joined.ranks, reference.ranks)

    @pytest.mark.parametrize("name", ["irm", "sequence", "locality", "trace"])
    def test_prefix_stability(self, name):
        """The first k requests are fixed by the seed, not by count."""
        short = workloads()[name].sample_batch(100)
        long = workloads()[name].sample_batch(400)
        assert np.array_equal(long.ranks[:100], short.ranks)
        assert np.array_equal(long.client_index[:100], short.client_index)

    def test_sample_batch_empty(self):
        batch = workloads()["irm"].sample_batch(0)
        assert len(batch) == 0

    @pytest.mark.parametrize("name", ["irm", "sequence", "locality", "trace"])
    def test_rejects_bad_arguments(self, name):
        workload = workloads()[name]
        with pytest.raises(ParameterError):
            list(workload.batches(-1))
        with pytest.raises(ParameterError):
            list(workload.batches(10, batch_size=0))


class TestSequenceBatches:
    def test_round_robin_interleaving(self):
        """Matches the paper's §II synchronized two-client cycle."""
        workload = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])
        batch = workload.sample_batch(6)
        assert list(batch.requests()) == [
            Request("R1", 1),
            Request("R2", 1),
            Request("R1", 1),
            Request("R2", 1),
            Request("R1", 2),
            Request("R2", 2),
        ]


class TestTraceBatches:
    def test_rejects_overlong_count(self):
        workload = TraceWorkload([Request("A", 1)])
        with pytest.raises(ParameterError):
            list(workload.batches(2))


class TestSeedSequenceSeeds:
    """Workload seeds accept SeedSequence children (the sharded lineage)."""

    def test_irm_seed_sequence_matches_equivalent_entropy(self):
        seq = np.random.SeedSequence(99)
        a = IRMWorkload(ZipfModel(0.8, 200), CLIENTS, seed=seq)
        b = IRMWorkload(ZipfModel(0.8, 200), CLIENTS, seed=seq)
        assert a.seed is seq
        batch_a = a.sample_batch(500)
        batch_b = b.sample_batch(500)
        assert np.array_equal(batch_a.ranks, batch_b.ranks)
        assert np.array_equal(batch_a.client_index, batch_b.client_index)
        # Replaying the same workload must not advance shared spawn state.
        replay = a.sample_batch(500)
        assert np.array_equal(replay.ranks, batch_a.ranks)

    def test_spawned_children_yield_disjoint_streams(self):
        children = np.random.SeedSequence(5).spawn(2)
        model = ZipfModel(0.8, 200)
        left = IRMWorkload(model, CLIENTS, seed=children[0]).sample_batch(300)
        right = IRMWorkload(model, CLIENTS, seed=children[1]).sample_batch(300)
        assert not np.array_equal(left.ranks, right.ranks)

    def test_locality_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(4)
        workload = LocalityWorkload(
            ZipfModel(0.8, 200), CLIENTS, locality=0.4, window=8, seed=seq
        )
        first = workload.materialize(50)
        again = workload.materialize(50)
        assert first == again

    def test_int_seeds_still_coerce(self):
        workload = IRMWorkload(ZipfModel(0.8, 200), CLIENTS, seed=np.int64(7))
        assert workload.seed == 7
        assert isinstance(workload.seed, int)
