"""Unit tests for repro.catalog.workload — request stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.popularity import ZipfModel
from repro.catalog.workload import (
    IRMWorkload,
    Request,
    SequenceWorkload,
    TraceWorkload,
)
from repro.errors import ParameterError


class TestRequest:
    def test_valid(self):
        r = Request(client="R1", rank=5)
        assert r.client == "R1"
        assert r.rank == 5

    def test_rejects_bad_rank(self):
        with pytest.raises(ParameterError):
            Request(client="R1", rank=0)


class TestIRMWorkload:
    def make(self, **kwargs) -> IRMWorkload:
        defaults = dict(
            popularity=ZipfModel(0.8, 100),
            clients=["A", "B", "C"],
            seed=7,
        )
        defaults.update(kwargs)
        return IRMWorkload(**defaults)

    def test_deterministic_under_seed(self):
        a = self.make().materialize(100)
        b = self.make().materialize(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = self.make(seed=1).materialize(100)
        b = self.make(seed=2).materialize(100)
        assert a != b

    def test_count_respected(self):
        assert len(self.make().materialize(123)) == 123

    def test_clients_from_pool(self):
        requests = self.make().materialize(500)
        assert {r.client for r in requests} == {"A", "B", "C"}

    def test_ranks_in_catalog(self):
        requests = self.make().materialize(1000)
        assert all(1 <= r.rank <= 100 for r in requests)

    def test_client_weights_respected(self):
        wl = self.make(client_weights=[1.0, 0.0, 0.0])
        requests = wl.materialize(200)
        assert all(r.client == "A" for r in requests)

    def test_skewed_weights_distribution(self):
        wl = self.make(client_weights=[8.0, 1.0, 1.0], seed=0)
        requests = wl.materialize(10_000)
        share_a = sum(1 for r in requests if r.client == "A") / 10_000
        assert share_a == pytest.approx(0.8, abs=0.03)

    def test_batching_boundary(self):
        """The internal 64 Ki batch boundary must not distort the stream."""
        wl = self.make()
        long = wl.materialize(65_536 + 10)
        short = wl.materialize(100)
        assert long[:100] == short

    def test_rejects_empty_clients(self):
        with pytest.raises(ParameterError):
            IRMWorkload(ZipfModel(0.8, 100), [])

    def test_rejects_bad_weights(self):
        with pytest.raises(ParameterError):
            self.make(client_weights=[1.0])
        with pytest.raises(ParameterError):
            self.make(client_weights=[-1.0, 1.0, 1.0])
        with pytest.raises(ParameterError):
            self.make(client_weights=[0.0, 0.0, 0.0])

    def test_rejects_negative_count(self):
        with pytest.raises(ParameterError):
            self.make().materialize(-1)


class TestSequenceWorkload:
    def test_motivating_example_interleaving(self):
        """Two clients cycling {a,a,b}: round-robin interleaved."""
        wl = SequenceWorkload([("R1", [1, 1, 2]), ("R2", [1, 1, 2])])
        requests = wl.materialize(6)
        assert [(r.client, r.rank) for r in requests] == [
            ("R1", 1), ("R2", 1),
            ("R1", 1), ("R2", 1),
            ("R1", 2), ("R2", 2),
        ]

    def test_cycles_repeat(self):
        wl = SequenceWorkload([("X", [3, 7])])
        ranks = [r.rank for r in wl.requests(6)]
        assert ranks == [3, 7, 3, 7, 3, 7]

    def test_period(self):
        wl = SequenceWorkload([("A", [1, 2, 3]), ("B", [1, 2])])
        assert wl.period() == 6 * 2

    def test_unequal_cycles(self):
        wl = SequenceWorkload([("A", [1]), ("B", [2, 3])])
        requests = wl.materialize(6)
        assert [(r.client, r.rank) for r in requests] == [
            ("A", 1), ("B", 2), ("A", 1), ("B", 3), ("A", 1), ("B", 2),
        ]

    def test_rejects_empty_flows(self):
        with pytest.raises(ParameterError):
            SequenceWorkload([])

    def test_rejects_empty_cycle(self):
        with pytest.raises(ParameterError):
            SequenceWorkload([("A", [])])

    def test_rejects_bad_ranks(self):
        with pytest.raises(ParameterError):
            SequenceWorkload([("A", [0])])
        with pytest.raises(ParameterError):
            SequenceWorkload([("A", [1.5])])

    def test_rejects_negative_count(self):
        with pytest.raises(ParameterError):
            SequenceWorkload([("A", [1])]).materialize(-1)


class TestTraceWorkload:
    def test_replays_exactly(self):
        trace = [Request("A", 1), Request("B", 2), Request("A", 3)]
        wl = TraceWorkload(trace)
        assert wl.materialize(3) == trace
        assert len(wl) == 3

    def test_prefix(self):
        trace = [Request("A", 1), Request("B", 2)]
        assert TraceWorkload(trace).materialize(1) == trace[:1]

    def test_rejects_overrun(self):
        with pytest.raises(ParameterError):
            TraceWorkload([Request("A", 1)]).materialize(2)

    def test_rejects_negative_count(self):
        with pytest.raises(ParameterError):
            TraceWorkload([]).materialize(-1)
