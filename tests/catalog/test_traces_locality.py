"""Unit tests for trace persistence and the locality workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import (
    IRMWorkload,
    LocalityWorkload,
    Request,
    TraceWorkload,
    ZipfModel,
    load_trace,
    save_trace,
)
from repro.errors import CatalogError, ParameterError


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        requests = [Request("A", 1), Request("B", 7), Request("A", 3)]
        path = tmp_path / "trace.csv"
        count = save_trace(requests, path)
        assert count == 3
        replayed = load_trace(path).materialize(3)
        assert replayed == requests

    def test_roundtrip_through_workload(self, tmp_path):
        workload = IRMWorkload(ZipfModel(0.8, 100), ["A", "B"], seed=4)
        original = workload.materialize(50)
        path = tmp_path / "trace.csv"
        save_trace(original, path)
        assert load_trace(path).materialize(50) == original

    def test_missing_file(self, tmp_path):
        with pytest.raises(CatalogError):
            load_trace(tmp_path / "nope.csv")

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\nA,1\n")
        with pytest.raises(CatalogError):
            load_trace(path)

    def test_bad_row_width(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("client,rank\nA,1,extra\n")
        with pytest.raises(CatalogError):
            load_trace(path)

    def test_non_integer_rank(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("client,rank\nA,seven\n")
        with pytest.raises(CatalogError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert save_trace([], path) == 0
        assert len(load_trace(path)) == 0

    def test_int_clients_roundtrip_with_parser(self, tmp_path):
        requests = [Request(0, 5), Request(3, 1), Request(0, 2)]
        path = tmp_path / "trace.csv"
        save_trace(requests, path)
        replayed = load_trace(path, client_parser=int).materialize(3)
        assert replayed == requests
        assert all(isinstance(r.client, int) for r in replayed)

    def test_default_parser_keeps_strings(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace([Request(0, 5)], path)
        assert load_trace(path).materialize(1) == [Request("0", 5)]

    def test_rejecting_client_parser_raises_catalog_error(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace([Request("A", 1)], path)
        with pytest.raises(CatalogError):
            load_trace(path, client_parser=int)

    def test_gzip_roundtrip(self, tmp_path):
        workload = IRMWorkload(ZipfModel(0.8, 100), [0, 1, 2], seed=9)
        original = workload.materialize(200)
        path = tmp_path / "trace.csv.gz"
        assert save_trace(original, path) == 200
        # Really gzip on disk: magic bytes, and smaller than the text form.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        replayed = load_trace(path, client_parser=int).materialize(200)
        assert replayed == original

    def test_gzip_and_plain_agree(self, tmp_path):
        requests = [Request("A", 1), Request("B", 7)]
        plain, gz = tmp_path / "t.csv", tmp_path / "t.csv.gz"
        save_trace(requests, plain)
        save_trace(requests, gz)
        assert (
            load_trace(plain).materialize(2) == load_trace(gz).materialize(2)
        )


class TestLocalityWorkload:
    def make(self, locality=0.6, seed=0, **kwargs) -> LocalityWorkload:
        return LocalityWorkload(
            ZipfModel(0.8, 1_000),
            ["A", "B", "C"],
            locality=locality,
            seed=seed,
            **kwargs,
        )

    def test_deterministic(self):
        assert self.make().materialize(100) == self.make().materialize(100)

    def test_count_and_validity(self):
        requests = self.make().materialize(500)
        assert len(requests) == 500
        assert all(1 <= r.rank <= 1_000 for r in requests)
        assert {r.client for r in requests} <= {"A", "B", "C"}

    def test_locality_raises_rereference_rate(self):
        """Higher locality means more immediate re-references."""

        def rereference_rate(locality: float) -> float:
            requests = LocalityWorkload(
                ZipfModel(0.8, 10_000), ["A"], locality=locality,
                window=16, seed=1,
            ).materialize(5_000)
            ranks = [r.rank for r in requests]
            window: list[int] = []
            hits = 0
            for rank in ranks:
                if rank in window:
                    hits += 1
                window.append(rank)
                if len(window) > 16:
                    window.pop(0)
            return hits / len(ranks)

        low = rereference_rate(0.0)
        high = rereference_rate(0.8)
        assert high > low + 0.3

    def test_zero_locality_marginal_matches_popularity(self):
        requests = LocalityWorkload(
            ZipfModel(1.0, 100), ["A"], locality=0.0, seed=2
        ).materialize(50_000)
        observed = float(np.mean([r.rank == 1 for r in requests]))
        expected = ZipfModel(1.0, 100).pmf(1)
        assert observed == pytest.approx(expected, abs=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            LocalityWorkload(ZipfModel(0.8, 100), [])
        with pytest.raises(ParameterError):
            self.make(locality=1.0)
        with pytest.raises(ParameterError):
            self.make(window=0)
        with pytest.raises(ParameterError):
            self.make().materialize(-1)

    def test_locality_helps_lru_beyond_irm_prediction(self):
        """The point of the generator: temporal locality lets small LRU
        caches beat what the IRM-based model predicts."""
        from repro.simulation import DynamicSimulator
        from repro.topology import ring_topology

        topology = ring_topology(4)
        popularity = ZipfModel(0.7, 5_000)
        irm = IRMWorkload(popularity, topology.nodes, seed=3)
        local = LocalityWorkload(
            popularity, topology.nodes, locality=0.7, window=32, seed=3
        )
        results = {}
        for name, workload in (("irm", irm), ("locality", local)):
            simulator = DynamicSimulator(
                topology, capacity=40, policy="lru", seed=0
            )
            results[name] = simulator.run(workload, 6_000, warmup=4_000)
        assert (
            results["locality"].local_fraction
            > results["irm"].local_fraction + 0.1
        )
