"""Unit tests for repro.catalog.popularity — popularity models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog.popularity import (
    UniformModel,
    ZipfMandelbrotModel,
    ZipfModel,
)
from repro.errors import CatalogError, ParameterError


class TestZipfModel:
    def test_pmf_sums_to_one(self):
        model = ZipfModel(0.8, 500)
        total = sum(model.pmf(i) for i in range(1, 501))
        assert total == pytest.approx(1.0, rel=1e-12)

    def test_matches_analytical(self):
        model = ZipfModel(0.8, 1000)
        analytical = model.to_analytical()
        for rank in (1, 10, 100):
            assert model.pmf(rank) == pytest.approx(
                float(analytical.pmf(rank)), rel=1e-12
            )

    def test_cdf_endpoints(self):
        model = ZipfModel(1.2, 100)
        assert model.cdf(0) == 0.0
        assert model.cdf(100) == pytest.approx(1.0)
        assert model.cdf(1000) == pytest.approx(1.0)

    def test_out_of_range_pmf_zero(self):
        model = ZipfModel(0.8, 10)
        assert model.pmf(0) == 0.0
        assert model.pmf(11) == 0.0

    def test_sample_reproducible(self):
        model = ZipfModel(0.8, 100)
        a = model.sample(50, np.random.default_rng(3))
        b = model.sample(50, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_sample_frequencies(self):
        model = ZipfModel(1.0, 50)
        draws = model.sample(100_000, np.random.default_rng(0))
        assert float(np.mean(draws == 1)) == pytest.approx(model.pmf(1), abs=0.01)

    def test_sample_rejects_negative(self):
        with pytest.raises(ParameterError):
            ZipfModel(0.8, 10).sample(-5)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ParameterError):
            ZipfModel(0.0, 100)
        with pytest.raises(ParameterError):
            ZipfModel(2.5, 100)

    def test_rejects_bad_catalog(self):
        with pytest.raises(CatalogError):
            ZipfModel(0.8, 0)

    def test_top_k_mass_alias(self):
        model = ZipfModel(0.8, 100)
        assert model.top_k_mass(10) == model.cdf(10)

    def test_repr(self):
        assert "0.8" in repr(ZipfModel(0.8, 100))


class TestZipfMandelbrot:
    def test_plateau_zero_equals_zipf(self):
        zipf = ZipfModel(0.8, 200)
        zm = ZipfMandelbrotModel(0.8, 0.0, 200)
        for rank in (1, 50, 200):
            assert zm.pmf(rank) == pytest.approx(zipf.pmf(rank), rel=1e-12)

    def test_plateau_flattens_head(self):
        zipf = ZipfModel(0.8, 200)
        zm = ZipfMandelbrotModel(0.8, 50.0, 200)
        assert zm.pmf(1) < zipf.pmf(1)
        # The head-to-mid ratio shrinks with the plateau.
        assert zm.pmf(1) / zm.pmf(10) < zipf.pmf(1) / zipf.pmf(10)

    def test_rejects_negative_plateau(self):
        with pytest.raises(ParameterError):
            ZipfMandelbrotModel(0.8, -1.0, 100)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ParameterError):
            ZipfMandelbrotModel(0.0, 1.0, 100)

    def test_repr(self):
        assert "plateau" in repr(ZipfMandelbrotModel(0.8, 5.0, 100))


class TestUniformModel:
    def test_flat_pmf(self):
        model = UniformModel(100)
        assert model.pmf(1) == pytest.approx(0.01)
        assert model.pmf(100) == pytest.approx(0.01)

    def test_cdf_linear(self):
        model = UniformModel(100)
        assert model.cdf(25) == pytest.approx(0.25)

    def test_sample_spread(self):
        draws = UniformModel(10).sample(50_000, np.random.default_rng(0))
        counts = np.bincount(draws, minlength=11)[1:]
        assert counts.min() > 4000  # roughly uniform

    def test_repr(self):
        assert "100" in repr(UniformModel(100))
