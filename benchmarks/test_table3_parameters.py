"""Benchmark + reproduction of Table III (derived parameters, §V-A).

All five columns (n, w, d1-d0 in ms and hops) must match the paper's
published values; the hop means are exact rationals (e.g. Abilene's
2.4182 = 266/110) and reproduce to full precision.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import table3_parameters
from repro.analysis.tables import render_table


def test_table3(benchmark, record_artifact):
    table = benchmark(table3_parameters)
    record_artifact("table3", render_table(table))
    for row in table.rows:
        _, _, w, ms, hops, paper_w, paper_ms, paper_hops = row
        assert w == pytest.approx(paper_w, abs=1e-3)
        assert ms == pytest.approx(paper_ms, abs=1e-3)
        assert hops == pytest.approx(paper_hops, abs=1e-3)
