"""Benchmark + reproduction of Figure 11: origin load reduction G_O vs w.

Paper shape claims: for small α (< 0.4) the gain decreases rapidly as
the unit coordination cost grows; for large α it is almost invariant.
"""

from __future__ import annotations

from repro.analysis.experiments import figure11_origin_gain_vs_unit_cost
from repro.analysis.tables import render_figure


def test_figure11(benchmark, record_artifact):
    fig = benchmark(figure11_origin_gain_vs_unit_cost)
    record_artifact("figure11", render_figure(fig))
    small = fig.series_by_label("alpha=0.2")
    assert small.is_monotone_decreasing(tolerance=1e-6)
    assert small.y[0] > 2 * small.y[-1] + 1e-12
    large = fig.series_by_label("alpha=1")
    assert max(large.y) - min(large.y) < 1e-9
