"""Benchmark + reproduction of Figure 8: origin load reduction G_O vs α.

Paper shape claims: G_O increases with α (a higher ℓ* stores more) and
a higher γ raises the whole curve.
"""

from __future__ import annotations

from repro.analysis.experiments import figure8_origin_gain_vs_alpha
from repro.analysis.tables import render_figure


def test_figure8(benchmark, record_artifact):
    fig = benchmark(figure8_origin_gain_vs_alpha)
    record_artifact("figure8", render_figure(fig))
    for series in fig.series:
        assert series.is_monotone_increasing(tolerance=1e-6)
    for i in range(len(fig.series[0].x)):
        gains = [s.y[i] for s in fig.series]
        assert gains == sorted(gains)
