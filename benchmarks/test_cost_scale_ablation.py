"""Ablation benchmark: sensitivity to the cost-normalization choice.

EXPERIMENTS.md note C documents that the paper's figures require an
unstated normalization of the cost term; this reproduction normalizes
by ``W(c)`` at the Table IV base point.  This bench demonstrates that
the *qualitative* reproduction does not hinge on that exact constant:
every Figure-4 shape claim (monotonicity in α, γ-dominance, the 0→~1
swing) holds across a 16x range of normalization scales — only the
*location* of the α-sensitive range shifts (monotonically), exactly as
the theory predicts (rescaling cost is equivalent to reweighting α).

The literal, unnormalized scale (≈ 5.3×10⁵ × the balanced one) is also
checked: there the trade-off degenerates (ℓ* = 0 until α ≈ 1), which is
why the normalization is necessary at all.
"""

from __future__ import annotations

from repro.analysis.sensitivity import sensitive_range
from repro.core import Scenario
from repro.core.scenario import BALANCED_COST_SCALE

ALPHAS = (0.1, 0.3, 0.5, 0.7, 0.9, 1.0)
GAMMAS = (2.0, 10.0)
MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0)


def _levels(scale_multiplier: float, gamma: float):
    scenario = Scenario(gamma=gamma, cost_scale=BALANCED_COST_SCALE * scale_multiplier)
    return [
        scenario.replace(alpha=a).solve(check_conditions=False).level
        for a in ALPHAS
    ]


def test_shape_invariant_to_normalization(benchmark, record_artifact):
    results = {
        (m, g): _levels(m, g) for m in MULTIPLIERS for g in GAMMAS
    }
    benchmark.pedantic(lambda: _levels(1.0, 2.0), rounds=1, iterations=1)

    lines = [
        "Figure-4 shape claims across cost-normalization scales "
        "(multiplier x BALANCED_COST_SCALE)",
        f"{'mult':>5}  {'gamma':>5}  " + "  ".join(f"a={a:g}" for a in ALPHAS),
    ]
    for (m, g), levels in sorted(results.items()):
        lines.append(
            f"{m:>5.2f}  {g:>5.0f}  " + "  ".join(f"{l:5.3f}" for l in levels)
        )
        # Claim 1: monotone in alpha at every scale.
        assert levels == sorted(levels), (m, g)
        # Claim 2: a real swing exists and tops out at the alpha=1
        # optimum.  (At small multipliers the sensitive range sits
        # below alpha=0.1 — cheaper coordination starts higher — so
        # the near-zero start is only required at scale >= 1.)
        assert levels[0] <= levels[-1] - 0.05
        assert levels[-1] > 0.8
        if m >= 1.0:
            assert levels[0] < 0.45
    # Claim 3: gamma-dominance at every scale and alpha.
    for m in MULTIPLIERS:
        for i in range(len(ALPHAS)):
            assert results[(m, 10.0)][i] >= results[(m, 2.0)][i] - 1e-9
    # The sensitive range moves right as cost weighs more, monotonically.
    range_lows = [
        sensitive_range(
            Scenario(gamma=5.0, cost_scale=BALANCED_COST_SCALE * m),
            grid_size=81,
        ).alpha_low
        for m in MULTIPLIERS
    ]
    assert range_lows == sorted(range_lows)
    lines.append(
        "sensitive-range alpha_low per multiplier: "
        + ", ".join(f"{m:g}x: {lo:.3f}" for m, lo in zip(MULTIPLIERS, range_lows))
    )

    # The literal (unnormalized) model degenerates — the reason note C exists.
    literal = Scenario(alpha=0.99, cost_scale=1.0).solve(check_conditions=False)
    lines.append(
        f"literal cost scale (1.0): l*(alpha=0.99) = {literal.level:.6f} "
        "(degenerate; no usable trade-off)"
    )
    assert literal.level < 1e-6
    record_artifact("cost_scale_ablation", "\n".join(lines))
