"""Benchmark + reproduction of Figure 6: ℓ* vs network size n, per α.

Paper shape claims: ℓ* decreases as n grows (coordination costs scale
with n); for a fixed n, a higher α gives a drastically higher ℓ*.
"""

from __future__ import annotations

from repro.analysis.experiments import figure6_level_vs_routers
from repro.analysis.tables import render_figure


def test_figure6(benchmark, record_artifact):
    fig = benchmark(figure6_level_vs_routers)
    record_artifact("figure6", render_figure(fig))
    for series in fig.series:
        if series.label in ("alpha=0.2", "alpha=0.4", "alpha=0.6"):
            # The paper's claim holds cleanly for small/mid alpha.
            assert series.is_monotone_decreasing(tolerance=1e-6), series.label
        elif series.label == "alpha=0.8":
            # For high alpha the performance benefit of extra routers
            # briefly outweighs the cost (small hump near n=20) before
            # the cost term wins; the overall trend is still down.
            assert series.y[-1] < series.y[0]
    for i in range(len(fig.series[0].x)):
        levels = [s.y[i] for s in fig.series]
        assert levels == sorted(levels)
