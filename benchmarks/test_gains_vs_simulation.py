"""Validation benchmark: the §IV-E gains measured by simulation.

Figures 8-13 plot the analytical gains G_O and G_R.  This bench
provisions a reduced instance at the solved optimum, simulates both the
optimal and the non-coordinated placements, and measures both gains
end-to-end — tying the gains figures to observed behaviour rather than
just formula evaluation.
"""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import ProvisioningStrategy, Scenario
from repro.core.gains import evaluate_gains
from repro.core.optimizer import optimal_strategy
from repro.simulation import SteadyStateSimulator
from repro.topology import load_topology

CAPACITY = 50
CATALOG = 5_000
REQUESTS = 30_000


def _simulated_gains(scenario: Scenario, level: float, topology, workload):
    """Measured (G_O, G_R) of a level vs the non-coordinated baseline."""
    latency = scenario.latency()

    def run(lvl: float):
        strategy = ProvisioningStrategy(
            capacity=CAPACITY, n_routers=topology.n_routers, level=lvl
        )
        metrics = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        ).run(workload, REQUESTS)
        local, peer, origin = metrics.tier_fractions()
        mean_latency = (
            local * latency.d0 + peer * latency.d1 + origin * latency.d2
        )
        return metrics.origin_load, mean_latency

    base_origin, base_latency = run(0.0)
    opt_origin, opt_latency = run(level)
    return 1 - opt_origin / base_origin, 1 - opt_latency / base_latency


@pytest.mark.parametrize("gamma", [2.0, 10.0])
def test_gains_match_simulation(benchmark, record_artifact, gamma):
    topology = load_topology("us-a")
    scenario = Scenario(
        alpha=0.8,
        gamma=gamma,
        capacity=float(CAPACITY),
        catalog_size=CATALOG,
        n_routers=topology.n_routers,
    )
    model = scenario.model()
    strategy = optimal_strategy(model, check_conditions=False)
    analytic = evaluate_gains(model, strategy)
    workload = IRMWorkload(
        ZipfModel(scenario.exponent, CATALOG), topology.nodes, seed=37
    )
    measured_go, measured_gr = benchmark.pedantic(
        lambda: _simulated_gains(scenario, strategy.level, topology, workload),
        rounds=1,
        iterations=1,
    )
    record_artifact(
        f"gains_vs_simulation_gamma{gamma:g}",
        f"Gains at the optimum, analytic vs simulated (US-A, gamma={gamma:g}, "
        f"alpha=0.8, l*={strategy.level:.3f})\n"
        f"G_O: analytic {analytic.origin_load_reduction:.4f}, "
        f"simulated {measured_go:.4f}\n"
        f"G_R: analytic {analytic.routing_improvement:.4f}, "
        f"simulated {measured_gr:.4f}",
    )
    assert measured_go == pytest.approx(
        analytic.origin_load_reduction, abs=0.03
    )
    assert measured_gr == pytest.approx(
        analytic.routing_improvement, abs=0.03
    )
    # Figures 8/12 shape at the instance level: gamma=10 beats gamma=2.
    # (Asserted across the two parametrized runs via the artifacts.)
