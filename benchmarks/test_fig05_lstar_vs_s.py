"""Benchmark + reproduction of Figure 5: ℓ* vs Zipf exponent s, per α.

Paper shape claims verified here:
- for α = 1, ℓ* decreases from ~1 (s→0) to ~0.35 (s→2);
- for α < 1, ℓ* → 0 as s → 0 and a hump peaks around s ∈ [0.5, 0.9];
- lower α gives a lower coordination level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.experiments import figure5_level_vs_exponent
from repro.analysis.tables import render_figure


def test_figure5(benchmark, record_artifact):
    fig = benchmark(figure5_level_vs_exponent)
    record_artifact("figure5", render_figure(fig))
    alpha1 = fig.series_by_label("alpha=1")
    assert alpha1.y[0] > 0.9
    assert alpha1.y[-1] == pytest.approx(0.35, abs=0.06)
    assert alpha1.is_monotone_decreasing(tolerance=1e-6)

    for label in ("alpha=0.2", "alpha=0.4", "alpha=0.6"):
        series = fig.series_by_label(label)
        assert series.y[0] < 0.05  # s -> 0 kills coordination for alpha < 1
        peak = series.x[int(np.argmax(series.y))]
        assert 0.3 <= peak <= 1.1  # the paper's 0.5~0.9 hump, with grid slack
