"""Benchmark: analytical model versus the event-level simulator.

The paper's evaluation is purely numerical; this reproduction also
builds the request-level simulator the model abstracts.  Here we verify
the model's origin-load prediction against simulation on the US-A
topology across coordination levels — the agreement is the strongest
internal check the reproduction has.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import model_vs_simulation
from repro.analysis.tables import render_table


def test_model_vs_simulation(benchmark, record_artifact):
    table = benchmark.pedantic(
        model_vs_simulation, kwargs={"requests": 30_000}, rounds=1, iterations=1
    )
    record_artifact("model_vs_simulation", render_table(table))
    for row in table.rows:
        level, model_origin, sim_origin = row[0], row[1], row[2]
        assert sim_origin == pytest.approx(model_origin, abs=0.02), level
    # Monotone: more coordination, less origin load — in both worlds.
    model_col = [row[1] for row in table.rows]
    sim_col = [row[2] for row in table.rows]
    assert model_col == sorted(model_col, reverse=True)
    assert sim_col == sorted(sim_col, reverse=True)
