"""Benchmark: coordination round latency vs w (§V-A's rationale).

The paper sets the unit coordination cost to the maximum pairwise
latency because parallel fan-out is gated by the slowest path.  This
bench measures the distributed protocol's actual round latency on all
four topologies and verifies it is a small multiple of w.
"""

from __future__ import annotations

from repro.analysis.experiments import coordination_convergence
from repro.analysis.tables import render_table


def test_convergence_vs_w(benchmark, record_artifact):
    table = benchmark(coordination_convergence)
    record_artifact("convergence", render_table(table))
    for row in table.rows:
        _, w, convergecast, dissemination, round_ms, ratio = row
        # One convergecast + one dissemination sweep, each gated by the
        # deepest root-path (<= w): the round fits within 2w.
        assert round_ms <= 2.0 * w + 1e-9
        assert ratio <= 2.0
        assert convergecast > 0 and dissemination > 0
