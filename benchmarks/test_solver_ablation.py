"""Ablation benchmark: the four solvers against each other.

DESIGN.md calls out three independent solution paths (Lemma 2 fixed
point, exact first-order bisection, direct convex minimization) plus
the brute-force grid baseline.  This bench times each on the Table IV
base point and verifies they agree on the solution, quantifying the
approximation error Lemma 2's ``n-1 ≈ n`` simplifications introduce.
"""

from __future__ import annotations

import pytest

from repro.baselines import grid_search_strategy
from repro.core import Scenario, optimal_strategy

SCENARIO = Scenario(alpha=0.7)


@pytest.mark.parametrize("method", ["first-order", "lemma2", "scalar-min"])
def test_solver_timing(benchmark, method):
    strategy = benchmark(
        lambda: optimal_strategy(SCENARIO.model(), method=method)
    )
    assert 0.0 <= strategy.level <= 1.0


def test_grid_search_timing(benchmark):
    strategy = benchmark(lambda: grid_search_strategy(SCENARIO.model()))
    assert 0.0 <= strategy.level <= 1.0


def test_solver_agreement(benchmark, record_artifact):
    model = SCENARIO.model()
    exact = benchmark(lambda: optimal_strategy(model, method="first-order"))
    rows = [f"{'solver':>12}  {'level':>10}  {'objective':>12}  {'vs exact':>10}"]
    for method in ("first-order", "lemma2", "scalar-min"):
        strategy = optimal_strategy(model, method=method)
        rows.append(
            f"{method:>12}  {strategy.level:>10.6f}  "
            f"{strategy.objective_value:>12.6f}  "
            f"{abs(strategy.level - exact.level):>10.6f}"
        )
        if method != "lemma2":
            assert strategy.level == pytest.approx(exact.level, abs=1e-4)
        else:
            assert strategy.level == pytest.approx(exact.level, abs=0.1)
    brute = grid_search_strategy(model)
    rows.append(
        f"{'grid':>12}  {brute.level:>10.6f}  {brute.objective_value:>12.6f}  "
        f"{abs(brute.level - exact.level):>10.6f}"
    )
    assert brute.level == pytest.approx(exact.level, abs=1e-3)
    record_artifact("solver_ablation", "\n".join(rows))
