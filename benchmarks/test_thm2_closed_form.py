"""Benchmark + verification of Theorem 2's asymptotics and accuracy.

Two checks: (a) the closed form's opposite n→∞ limits for s < 1
(ℓ* → 1) and s > 1 (ℓ* → 0); (b) its agreement with the exact
first-order optimum, which must tighten as n grows (the n-1 ≈ n
approximation vanishing).
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import theorem2_closed_form_vs_n
from repro.analysis.tables import render_figure
from repro.core import Scenario, closed_form_alpha1, optimal_strategy


def test_theorem2_asymptotics(benchmark, record_artifact):
    fig = benchmark(theorem2_closed_form_vs_n)
    record_artifact("theorem2", render_figure(fig))
    for series in fig.series:
        s = float(series.label.split("=")[1])
        if s < 1.0:
            assert series.is_monotone_increasing(tolerance=1e-12)
            assert series.y[-1] > 0.95
        else:
            assert series.is_monotone_decreasing(tolerance=1e-12)
            # Convergence to 0 is slow for s just above 1 (the exponent
            # of n is (s-1)/s); require clear decay on the plotted grid
            # and near-zero in the deep asymptotic regime.
            assert series.y[-1] < 0.7 * series.y[0]
            assert closed_form_alpha1(5.0, 10**12, s) < 0.05


def test_theorem2_accuracy_improves_with_n(benchmark, record_artifact):
    benchmark(lambda: closed_form_alpha1(5.0, 1000, 0.8))
    lines = ["Theorem 2 closed form vs exact first-order optimum (alpha=1)"]
    lines.append(f"{'n':>6}  {'closed form':>12}  {'exact':>12}  {'|error|':>10}")
    previous_error = None
    for n in (10, 50, 200, 1000):
        scenario = Scenario(
            alpha=1.0, n_routers=n, catalog_size=10**7, capacity=10**3
        )
        closed = closed_form_alpha1(scenario.gamma, n, scenario.exponent)
        exact = optimal_strategy(
            scenario.model(), check_conditions=False
        ).level
        error = abs(closed - exact)
        lines.append(f"{n:>6}  {closed:>12.6f}  {exact:>12.6f}  {error:>10.6f}")
        if previous_error is not None and n >= 50:
            assert error <= previous_error + 1e-9
        previous_error = error
    record_artifact("theorem2_accuracy", "\n".join(lines))
    assert previous_error == pytest.approx(0.0, abs=0.01)
