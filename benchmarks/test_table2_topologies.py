"""Benchmark + reproduction of Table II (topology statistics, §V-A)."""

from __future__ import annotations

from repro.analysis.experiments import table2_topologies
from repro.analysis.tables import render_table
from repro.topology import datasets


def _rebuild_table2():
    """Rebuild from scratch (cache cleared) so the benchmark measures
    the full topology construction + calibration pipeline."""
    datasets.load_abilene.cache_clear()
    datasets.load_cernet.cache_clear()
    datasets.load_geant.cache_clear()
    datasets.load_us_a.cache_clear()
    return table2_topologies()


def test_table2(benchmark, record_artifact):
    table = benchmark(_rebuild_table2)
    record_artifact("table2", render_table(table))
    assert table.column("|V|") == (11, 36, 23, 20)
    assert table.column("|E|") == (28, 112, 74, 80)
