"""Benchmark + reproduction of Figure 7: ℓ* vs unit coordination cost w.

Paper shape claims: at α = 1, ℓ* is a constant close to 1; for small α
(< 0.4) ℓ* decreases drastically as w grows; a larger α gives a larger
ℓ* at every w.
"""

from __future__ import annotations

from repro.analysis.experiments import figure7_level_vs_unit_cost
from repro.analysis.tables import render_figure


def test_figure7(benchmark, record_artifact):
    fig = benchmark(figure7_level_vs_unit_cost)
    record_artifact("figure7", render_figure(fig))
    alpha1 = fig.series_by_label("alpha=1")
    assert max(alpha1.y) - min(alpha1.y) < 1e-9
    assert alpha1.y[0] > 0.9
    small_alpha = fig.series_by_label("alpha=0.2")
    assert small_alpha.is_monotone_decreasing(tolerance=1e-6)
    assert small_alpha.y[0] > 2 * small_alpha.y[-1] + 1e-12
    for i in range(len(fig.series[0].x)):
        levels = [s.y[i] for s in fig.series]
        assert levels == sorted(levels)
