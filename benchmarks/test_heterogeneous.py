"""Extension benchmark: heterogeneous storage capacities (§VII).

The paper's second future-work item.  We compare the free per-router
optimum against the uniform-level strategy (the paper's homogeneous
result applied naively) as capacity dispersion grows, keeping the
aggregate storage fixed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Scenario
from repro.hetero import (
    HeterogeneousModel,
    optimize_shares,
    optimize_uniform_level,
)

TOTAL_CAPACITY = 20_000.0
N_ROUTERS = 20


def _model(spread: float, alpha: float = 0.6) -> HeterogeneousModel:
    """Capacities linear in rank with the given max/min spread, fixed sum."""
    scenario = Scenario(alpha=alpha)
    base = np.linspace(1.0, spread, N_ROUTERS)
    capacities = base / base.sum() * TOTAL_CAPACITY
    return HeterogeneousModel(
        scenario.popularity(),
        scenario.latency(),
        capacities,
        scenario.cost_model(),
        alpha,
    )


def test_heterogeneous_vs_uniform(benchmark, record_artifact):
    lines = [
        "Heterogeneous optimum vs uniform-level strategy "
        "(fixed aggregate storage, alpha=0.6)",
        f"{'spread':>7}  {'uniform obj':>12}  {'free obj':>12}  {'improvement':>12}",
    ]
    improvements = []
    for spread in (1.0, 3.0, 9.0):
        model = _model(spread)
        uniform = optimize_uniform_level(model)
        free = optimize_shares(model)
        gain = uniform.objective_value - free.objective_value
        improvements.append(gain)
        lines.append(
            f"{spread:>7.1f}  {uniform.objective_value:>12.6f}  "
            f"{free.objective_value:>12.6f}  {gain:>12.6f}"
        )
        assert free.objective_value <= uniform.objective_value + 1e-9
    record_artifact("heterogeneous", "\n".join(lines))
    # Homogeneous case: nothing to gain.  Dispersed case: real gain.
    assert improvements[0] == pytest.approx(0.0, abs=1e-3)
    assert improvements[-1] > improvements[0]
    benchmark.pedantic(
        lambda: optimize_shares(_model(9.0)), rounds=1, iterations=1
    )
