"""Ablation benchmark: the α-sensitive range of ℓ* per γ (§V-B.1).

The paper highlights that ℓ*'s sensitivity to α is concentrated in a
γ-dependent interval (quoting [0.2, 0.4] and [0.6, 0.8] as examples).
This bench computes the interval for every Figure-4 γ and asserts the
self-consistent direction: higher γ moves the sensitive range to lower
α (see EXPERIMENTS.md note C for why the paper's attribution of the
two quoted intervals must be swapped).
"""

from __future__ import annotations

from repro.analysis.sensitivity import sensitive_range
from repro.core import Scenario


def test_sensitive_ranges(benchmark, record_artifact):
    gammas = (2.0, 4.0, 6.0, 8.0, 10.0)

    def compute():
        return {g: sensitive_range(Scenario(gamma=g), grid_size=101) for g in gammas}

    ranges = benchmark(compute)
    lines = ["Alpha-sensitive range of l* per gamma (25%-75% of full swing)"]
    lines.append(f"{'gamma':>6}  {'alpha range':>16}  {'width':>6}  {'steepest at':>11}")
    for g in gammas:
        r = ranges[g]
        lines.append(
            f"{g:>6.1f}  [{r.alpha_low:.3f}, {r.alpha_high:.3f}]  "
            f"{r.width:>6.3f}  {r.max_slope_alpha:>11.3f}"
        )
    record_artifact("sensitive_range", "\n".join(lines))

    lows = [ranges[g].alpha_low for g in gammas]
    highs = [ranges[g].alpha_high for g in gammas]
    assert lows == sorted(lows, reverse=True)
    assert highs == sorted(highs, reverse=True)
    # The two paper-quoted interval scales both appear across the sweep.
    assert ranges[10.0].alpha_low < 0.3
    assert ranges[2.0].alpha_high > 0.6
