"""Extension benchmark: online self-adaptive coordination (§VII).

The paper names "online self-adaptive algorithms to adjust the
coordination level" as future work.  This benchmark runs the two
controllers of :mod:`repro.adaptive` against drifting Zipf traffic on a
ring topology and reports tracking error, regret and placement churn
versus a clairvoyant oracle.
"""

from __future__ import annotations

from repro.adaptive import (
    AdaptiveSimulation,
    DriftingPopularity,
    GradientController,
    ModelBasedController,
    linear_drift,
)
from repro.core import Scenario
from repro.topology import ring_topology

N_ROUTERS = 8
CATALOG = 4_000
EPOCHS = 12


def _scenario() -> Scenario:
    return Scenario(
        alpha=0.7, n_routers=N_ROUTERS, capacity=40.0, catalog_size=CATALOG
    )


def _run(controller) -> "AdaptationTrace":
    simulation = AdaptiveSimulation(
        ring_topology(N_ROUTERS),
        _scenario(),
        DriftingPopularity(linear_drift(0.6, 1.3, EPOCHS), CATALOG),
        controller,
        requests_per_epoch=1_500,
        seed=4,
    )
    return simulation.run(EPOCHS)


def test_model_based_adaptation(benchmark, record_artifact):
    trace = benchmark.pedantic(
        lambda: _run(ModelBasedController(_scenario(), memory=0.3)),
        rounds=1,
        iterations=1,
    )
    lines = ["Model-based adaptation under linear drift s: 0.6 -> 1.3"]
    lines.append(f"{'epoch':>5}  {'s_true':>7}  {'deployed':>9}  {'oracle':>7}  {'regret':>8}")
    for r in trace.records:
        lines.append(
            f"{r.epoch:>5}  {r.true_exponent:>7.3f}  {r.deployed_level:>9.4f}  "
            f"{r.oracle_level:>7.4f}  {r.regret:>8.4f}"
        )
    lines.append(
        f"tail tracking error: {trace.tracking_error(tail=6):.4f}; "
        f"total churn: {trace.total_churn()}"
    )
    record_artifact("adaptive_model_based", "\n".join(lines))
    assert trace.tracking_error(tail=6) < 0.1


def test_gradient_adaptation(benchmark, record_artifact):
    trace = benchmark.pedantic(
        lambda: _run(
            GradientController(initial_level=0.2, step_gain=0.5, probe_gain=0.15)
        ),
        rounds=1,
        iterations=1,
    )
    record_artifact(
        "adaptive_gradient",
        "Gradient (Kiefer-Wolfowitz) adaptation under the same drift\n"
        f"start gap: {abs(trace.records[0].deployed_level - trace.records[0].oracle_level):.4f}\n"
        f"tail tracking error: {trace.tracking_error(tail=4):.4f}\n"
        f"total churn: {trace.total_churn()}",
    )
    # Model-free control is slower; require clear movement toward the oracle.
    start_gap = abs(
        trace.records[0].deployed_level - trace.records[0].oracle_level
    )
    assert trace.tracking_error(tail=4) < start_gap
