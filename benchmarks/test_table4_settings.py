"""Benchmark + reproduction of Table IV (evaluation parameter grid)."""

from __future__ import annotations

from repro.analysis.experiments import table4_settings
from repro.analysis.tables import render_table


def test_table4(benchmark, record_artifact):
    table = benchmark(table4_settings)
    record_artifact("table4", render_table(table))
    assert len(table.rows) == 4
    # The base point parameters appear verbatim.
    flat = [cell for row in table.rows for cell in row]
    assert "26.7" in flat
    assert "2.2842" in flat
