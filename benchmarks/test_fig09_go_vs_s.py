"""Benchmark + reproduction of Figure 9: origin load reduction G_O vs s.

Paper shape claims: for relatively small α the maximum G_O sits above
s = 1 (the paper reports ~1.3); s = 1 itself is excluded (singular).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure9_origin_gain_vs_exponent
from repro.analysis.tables import render_figure


def test_figure9(benchmark, record_artifact):
    fig = benchmark(figure9_origin_gain_vs_exponent)
    record_artifact("figure9", render_figure(fig))
    for label in ("alpha=0.4", "alpha=0.6"):
        series = fig.series_by_label(label)
        peak_s = series.x[int(np.argmax(series.y))]
        assert peak_s > 1.0, f"{label} peaks at {peak_s}"
    # Gains stay in [0, 1] across the sweep.
    for series in fig.series:
        assert all(0.0 <= y <= 1.0 for y in series.y)
