"""Benchmark: the full reproduction scorecard.

Evaluates every registered paper claim live against the library and
prints the PASS/FAIL table — the one-artifact summary of what this
reproduction establishes.
"""

from __future__ import annotations

from repro.analysis.claims import scorecard_table
from repro.analysis.tables import render_table


def test_scorecard(benchmark, record_artifact):
    table = benchmark.pedantic(scorecard_table, rounds=1, iterations=1)
    record_artifact("scorecard", render_table(table))
    statuses = table.column("status")
    assert set(statuses) == {"PASS"}, "some paper claims failed verification"
    assert len(table.rows) >= 16
