"""Benchmark + reproduction of Table I (the motivating example, §II).

Paper values: origin load 33% vs 0%, hop count ~0.67 vs 0.5,
coordination cost 0 vs 1 message.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import table1_motivating
from repro.analysis.tables import render_table


def test_table1(benchmark, record_artifact):
    table = benchmark(table1_motivating)
    record_artifact("table1", render_table(table))
    non_coord = table.column("Non-coordinated caching")
    coord = table.column("Coordinated caching")
    assert non_coord[0] == pytest.approx(1 / 3)
    assert coord[0] == 0.0
    assert non_coord[1] == pytest.approx(2 / 3)
    assert coord[1] == pytest.approx(0.5)
    assert (non_coord[2], coord[2]) == (0, 1)
