"""Benchmark: hop-count vs millisecond distance metric (§V-A).

The paper evaluated both metrics and "observed similar results"; this
bench quantifies the similarity on all four reconstructed topologies.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import metric_duality
from repro.analysis.tables import render_table


def test_metric_duality(benchmark, record_artifact):
    table = benchmark(metric_duality)
    record_artifact("metric_duality", render_table(table))
    diffs = table.column("|diff|")
    # Dual metrics agree within ~0.1 level everywhere, exactly at the
    # reference topology and at alpha = 1 (scale-free regime).
    assert max(diffs) < 0.12
    for row in table.rows:
        topology, alpha, _, _, diff = row
        if alpha == 1.0:
            assert diff == pytest.approx(0.0, abs=1e-9), topology
