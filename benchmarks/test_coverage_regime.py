"""Benchmark: storage coverage vs gains — locating the 60-90% G_R band.

Resolves the Figure 12 magnitude discrepancy constructively: sweeping
the aggregate-storage-to-catalog ratio n·c/N shows the paper's claimed
60-90% routing improvement emerging only as coverage approaches 1,
while Table IV's stated parameters (coverage 0.02) cap it below 28%.
"""

from __future__ import annotations

from repro.analysis.experiments import coverage_regime
from repro.analysis.tables import render_table


def test_coverage_regime(benchmark, record_artifact):
    table = benchmark(coverage_regime)
    record_artifact("coverage_regime", render_table(table))
    coverage = table.column("coverage")
    gains_r = table.column("G_R")
    gains_o = table.column("G_O")
    # Table IV's regime is capped; full coverage reaches the paper's band.
    by_ratio = dict(zip(coverage, gains_r))
    assert by_ratio[0.02] < 0.30
    assert 0.6 <= by_ratio[1.0] <= 0.95
    # Origin gain is monotone in coverage and saturates at 1.
    assert list(gains_o) == sorted(gains_o)
    assert gains_o[-1] == 1.0
