"""Ablation benchmark: popularity misspecification robustness.

The paper's optimizer assumes pure Zipf popularity.  This bench scores
the Zipf-assumed strategy under Zipf-Mandelbrot traffic with growing
head plateaus and reports the regret against the true optimum.
"""

from __future__ import annotations

from repro.analysis.experiments import popularity_robustness
from repro.analysis.tables import render_table


def test_popularity_robustness(benchmark, record_artifact):
    table = benchmark.pedantic(popularity_robustness, rounds=1, iterations=1)
    record_artifact("robustness", render_table(table))
    regrets = table.column("rel regret")
    # The Zipf-assumed strategy stays within ~1% of the true optimum
    # even under heavy head flattening — robust misspecification.
    assert all(r < 0.02 for r in regrets)
    # The true optimum never moves below the assumed one (flatter head
    # favors more coordination).
    assumed = table.column("assumed l*")
    true = table.column("true l*")
    assert all(t >= a - 0.05 for a, t in zip(assumed, true))
