"""Ablation benchmark: temporal locality vs the model's IRM assumption.

Two effects bracket the analytical model's per-router prediction:
under pure IRM, plain LRU falls short of the model's top-c ceiling
(LRU is not an optimal placement); with realistic temporal locality,
LRU sails past it.  The model's IRM assumption is thus conservative
for real traffic on the local tier.
"""

from __future__ import annotations

from repro.analysis.experiments import irm_vs_locality
from repro.analysis.tables import render_table


def test_irm_vs_locality(benchmark, record_artifact):
    table = benchmark.pedantic(
        irm_vs_locality,
        kwargs={"requests": 6_000, "warmup": 4_000},
        rounds=1,
        iterations=1,
    )
    record_artifact("irm_vs_locality", render_table(table))
    fractions = table.column("sim local frac")
    excess = table.column("excess")
    # Hit fraction rises monotonically with locality...
    assert list(fractions) == sorted(fractions)
    # ...starting below the IRM ceiling (LRU < optimal placement) and
    # ending far above it (re-references are cheap hits).
    assert excess[0] < 0
    assert excess[-1] > 0.3
