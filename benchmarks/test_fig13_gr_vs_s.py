"""Benchmark + reproduction of Figure 13: routing improvement G_R vs s.

Paper shape claims: G_R is small when s is far from 1 (towards 0 or 2)
and largest for s close to 1.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.experiments import figure13_routing_gain_vs_exponent
from repro.analysis.tables import render_figure


def test_figure13(benchmark, record_artifact):
    fig = benchmark(figure13_routing_gain_vs_exponent)
    record_artifact("figure13", render_figure(fig))
    for label in ("alpha=0.8", "alpha=1"):
        series = fig.series_by_label(label)
        peak_s = series.x[int(np.argmax(series.y))]
        assert 0.6 <= peak_s <= 1.4, f"{label} peaks at {peak_s}"
        assert series.y[0] < max(series.y)
        assert series.y[-1] < max(series.y)
