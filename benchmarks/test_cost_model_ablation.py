"""Ablation benchmark: linear vs piece-wise linear coordination cost.

The paper adopts a linear communication-cost model (eq. 3), citing
ISPs' piece-wise linear cost practice.  This ablation quantifies how
much the linearity assumption matters: we minimize the objective under
a convex piece-wise linear cost with the same average slope and compare
the resulting optimal level.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PerformanceCostModel, Scenario
from repro.core.cost import PiecewiseLinearCostModel


def _piecewise_objective_minimum(scenario: Scenario) -> float:
    """Grid-minimize alpha*T + (1-alpha)*W_pw for a 3-segment cost."""
    perf = scenario.performance_model()
    unit = scenario.unit_cost * scenario.cost_scale
    cost = PiecewiseLinearCostModel(
        breakpoints=[scenario.capacity / 3, 2 * scenario.capacity / 3],
        slopes=[0.5 * unit, 1.0 * unit, 1.5 * unit],
    )
    xs = np.linspace(0.0, scenario.capacity, 4001)
    t = np.asarray(perf.mean_latency(xs))
    w = np.asarray(cost.cost(xs, scenario.n_routers))
    objective = scenario.alpha * t + (1 - scenario.alpha) * w
    return float(xs[int(np.argmin(objective))] / scenario.capacity)


def test_piecewise_vs_linear(benchmark, record_artifact):
    scenario = Scenario(alpha=0.5)
    linear_level = scenario.solve().level
    piecewise_level = benchmark(lambda: _piecewise_objective_minimum(scenario))
    record_artifact(
        "cost_model_ablation",
        "Cost-model ablation (alpha=0.5, Table IV base point)\n"
        f"linear cost optimal level:          {linear_level:.4f}\n"
        f"piece-wise linear optimal level:    {piecewise_level:.4f}\n"
        f"difference:                         {abs(linear_level - piecewise_level):.4f}",
    )
    # Same average slope -> the optimum moves, but stays in a sane band.
    assert 0.0 <= piecewise_level <= 1.0
    # The linear optimum (~0.73) falls in the steep third segment
    # (slope 1.5w), so the piece-wise optimum retreats and pins at the
    # 2/3 capacity breakpoint — the classic kink-capture of convex
    # piece-wise costs.  It must sit between the second breakpoint and
    # the linear optimum.
    assert 2 / 3 - 0.01 <= piecewise_level <= linear_level + 0.01
