"""Ablation benchmark: coordinated-rank assignment disciplines.

The model is agnostic to how coordinated ranks map onto routers; the
routers are not.  Round-robin interleaving balances the peer-service
load; contiguous blocks concentrate the popular coordinated head on
one router — same aggregate performance, very different hot spots.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import assignment_balance
from repro.analysis.tables import render_table


def test_assignment_balance(benchmark, record_artifact):
    table = benchmark.pedantic(
        assignment_balance, kwargs={"requests": 10_000}, rounds=1, iterations=1
    )
    record_artifact("assignment_balance", render_table(table))
    by_assignment = {row[0]: row for row in table.rows}
    round_robin = by_assignment["round-robin"]
    contiguous = by_assignment["contiguous"]
    # Aggregate performance identical (the model's agnosticism)...
    assert round_robin[1] == pytest.approx(contiguous[1], abs=0.01)
    # ...but the load distribution differs drastically.
    assert contiguous[5] > 3 * round_robin[5]
