"""Ablation benchmark: distributed protocol vs the linear cost model.

Eq. 3 charges coordination at ``w·n·x`` — one unit per coordinated slot
per router.  The distributed spanning-tree protocol actually sends each
directive over the custodian's tree depth.  This bench measures the gap
on all four paper topologies, quantifying how faithful the linear
abstraction is to a concrete protocol.
"""

from __future__ import annotations

from repro.core import ProvisioningStrategy
from repro.simulation import DistributedCoordinator
from repro.topology import load_topology

TOPOLOGIES = ("abilene", "cernet", "geant", "us-a")


def test_protocol_vs_linear_model(benchmark, record_artifact):
    def run_all():
        results = {}
        for name in TOPOLOGIES:
            topology = load_topology(name)
            coordinator = DistributedCoordinator(topology)
            strategy = ProvisioningStrategy(
                capacity=20, n_routers=topology.n_routers, level=0.5
            )
            outcome = coordinator.run_round(strategy)
            results[name] = (
                strategy.coordination_messages(),
                outcome.directive_messages,
                outcome.state_messages,
                outcome.round_latency_ms,
            )
        return results

    results = benchmark(run_all)
    lines = [
        "Distributed spanning-tree protocol vs eq. 3 linear cost model "
        "(level 0.5, c=20)",
        f"{'topology':>9}  {'model n*x':>9}  {'protocol':>9}  {'state':>6}  "
        f"{'round ms':>9}  {'ratio':>6}",
    ]
    for name, (modeled, actual, state, latency) in results.items():
        lines.append(
            f"{name:>9}  {modeled:>9}  {actual:>9}  {state:>6}  "
            f"{latency:>9.2f}  {actual / modeled:>6.3f}"
        )
        # The tree protocol stays within a small constant of the model.
        assert 0.3 <= actual / modeled <= 3.0, name
    record_artifact("protocol_fidelity", "\n".join(lines))
