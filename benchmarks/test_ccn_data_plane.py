"""Validation benchmark: the packet-level CCN data plane.

Cross-checks all three levels of the reproduction on the US-A topology
at one coordination level: the analytical model's origin load, the
flow-level nearest-replica simulator, and the packet-level CCN network
with custodian FIB routes.  Also compares the classic en-route caching
strategies under dynamic (LRU) stores.
"""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.ccn import CCNNetwork, NoCache, make_enroute_strategy
from repro.core import (
    LatencyModel,
    ProvisioningStrategy,
    RoutingPerformanceModel,
    ZipfPopularity,
)
from repro.simulation import SteadyStateSimulator
from repro.topology import load_topology

CAPACITY = 50
CATALOG = 5_000
EXPONENT = 0.8
REQUESTS = 5_000


def test_three_level_agreement(benchmark, record_artifact):
    topology = load_topology("us-a")
    level = 0.5
    strategy = ProvisioningStrategy(
        capacity=CAPACITY, n_routers=topology.n_routers, level=level
    )
    workload = IRMWorkload(ZipfModel(EXPONENT, CATALOG), topology.nodes, seed=3)

    perf = RoutingPerformanceModel(
        popularity=ZipfPopularity(EXPONENT, CATALOG),
        latency=LatencyModel(1.0, 2.0, 3.0),
        capacity=float(CAPACITY),
        n_routers=topology.n_routers,
    )
    analytical = float(perf.origin_load(strategy.coordinated_slots, exact=True))

    flow = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    ).run(workload, REQUESTS)

    def packet_level():
        net = CCNNetwork(
            topology, origin_gateway=topology.nodes[0], enroute=NoCache()
        )
        net.install_strategy(strategy)
        return net.run_workload(workload, REQUESTS, interarrival_ms=1_000.0)

    packet = benchmark.pedantic(packet_level, rounds=1, iterations=1)

    record_artifact(
        "ccn_three_level",
        "Origin load at level 0.5 across abstraction levels (US-A)\n"
        f"analytical model:        {analytical:.4f}\n"
        f"flow-level simulator:    {flow.origin_load:.4f}\n"
        f"packet-level CCN plane:  {packet.origin_load:.4f}\n"
        f"CCN mean interest hops:  {packet.mean_interest_hops:.4f}\n"
        f"CCN directive messages:  {packet.requests_completed and ''}"
        f"{packet.pit_aggregations} PIT aggregations",
    )
    assert flow.origin_load == pytest.approx(analytical, abs=0.02)
    assert packet.origin_load == pytest.approx(analytical, abs=0.03)
    assert packet.requests_completed == REQUESTS


def test_enroute_strategy_comparison(benchmark, record_artifact):
    """LCE / LCD / prob(0.5) / edge under dynamic LRU stores."""
    topology = load_topology("geant")
    workload = IRMWorkload(ZipfModel(1.0, 2_000), topology.nodes, seed=9)

    def run(strategy_name: str):
        net = CCNNetwork(
            topology,
            origin_gateway=topology.nodes[0],
            enroute=make_enroute_strategy(strategy_name, probability=0.5, seed=1),
            default_capacity=30,
        )
        return net.run_workload(workload, 4_000, interarrival_ms=2.0)

    results = {name: run(name) for name in ("lce", "lcd", "prob", "edge")}
    benchmark.pedantic(lambda: run("lce"), rounds=1, iterations=1)

    lines = [
        "En-route caching strategies, dynamic LRU stores (GEANT, c=30, "
        "Zipf 1.0, 4k requests)",
        f"{'strategy':>9}  {'origin load':>11}  {'cs hits':>8}  {'mean hops':>9}",
    ]
    for name, metrics in results.items():
        lines.append(
            f"{name:>9}  {metrics.origin_load:>11.4f}  {metrics.cs_hits:>8}  "
            f"{metrics.mean_interest_hops:>9.4f}"
        )
        assert metrics.requests_completed == 4_000
    record_artifact("ccn_enroute", "\n".join(lines))
    # Any caching beats the empty network; LCE caches most aggressively.
    assert results["lce"].origin_load < 1.0
