"""Performance benchmark: simulator request throughput.

Not a paper artifact — this guards the simulator's performance so the
model-validation experiments stay fast as the library evolves.
"""

from __future__ import annotations

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import ProvisioningStrategy
from repro.simulation import DynamicSimulator, SteadyStateSimulator
from repro.topology import load_topology


def _steady_state_simulator(capacity: int = 100) -> SteadyStateSimulator:
    topology = load_topology("us-a")
    strategy = ProvisioningStrategy(
        capacity=capacity, n_routers=topology.n_routers, level=0.5
    )
    return SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )


def test_steady_state_throughput(benchmark):
    """The default (batched-kernel) steady-state path."""
    simulator = _steady_state_simulator()
    workload = IRMWorkload(
        ZipfModel(0.8, 10_000), simulator.topology.nodes, seed=0
    )

    metrics = benchmark(lambda: simulator.run(workload, 10_000))
    assert metrics.requests == 10_000


def test_steady_state_scalar_throughput(benchmark):
    """The scalar reference path (one resolve per request)."""
    simulator = _steady_state_simulator()
    workload = IRMWorkload(
        ZipfModel(0.8, 10_000), simulator.topology.nodes, seed=0
    )

    metrics = benchmark(lambda: simulator.run_scalar(workload, 10_000))
    assert metrics.requests == 10_000


def test_steady_state_large_catalog_throughput(benchmark):
    """Batched path at a paper-scale catalog (N = 10^6, c = 10^3)."""
    simulator = _steady_state_simulator(capacity=1_000)
    workload = IRMWorkload(
        ZipfModel(0.8, 1_000_000), simulator.topology.nodes, seed=0
    )

    metrics = benchmark(lambda: simulator.run(workload, 50_000))
    assert metrics.requests == 50_000


def test_dynamic_lru_throughput(benchmark):
    topology = load_topology("us-a")
    simulator = DynamicSimulator(
        topology, capacity=100, policy="lru", coordination_level=0.5, seed=0
    )
    workload = IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=1)

    metrics = benchmark(lambda: simulator.run(workload, 5_000))
    assert metrics.requests == 5_000
