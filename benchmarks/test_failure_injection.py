"""Ablation benchmark: the coordination/redundancy trade-off.

Coordination stores each rank once — higher coverage, zero redundancy.
This bench fails one custodian store at a sweep of coordination levels
and reports the origin-load damage, verified against the analytical
prediction (the failed router's coordinated request mass).
"""

from __future__ import annotations

import pytest

from repro.catalog import IRMWorkload, ZipfModel
from repro.core import ProvisioningStrategy
from repro.simulation import SteadyStateSimulator
from repro.simulation.failures import (
    build_degraded_simulator,
    coordinated_mass_lost,
)
from repro.topology import load_topology

CAPACITY = 50
CATALOG = 5_000
EXPONENT = 0.8
REQUESTS = 20_000


def test_failure_damage_vs_level(benchmark, record_artifact):
    topology = load_topology("us-a")
    popularity = ZipfModel(EXPONENT, CATALOG)
    workload = IRMWorkload(popularity, topology.nodes, seed=31)

    def run_level(level: float):
        strategy = ProvisioningStrategy(
            capacity=CAPACITY, n_routers=topology.n_routers, level=level
        )
        healthy = SteadyStateSimulator.from_strategy(
            topology, strategy, message_accounting="none"
        ).run(workload, REQUESTS)
        degraded = build_degraded_simulator(topology, strategy, [0]).run(
            workload, REQUESTS
        )
        predicted = coordinated_mass_lost(strategy, popularity, [0])
        return healthy.origin_load, degraded.origin_load, predicted

    levels = (0.0, 0.25, 0.5, 1.0)
    results = {level: run_level(level) for level in levels}
    benchmark.pedantic(lambda: run_level(0.5), rounds=1, iterations=1)

    lines = [
        "One failed custodian store: origin-load damage vs coordination "
        "level (US-A, c=50)",
        f"{'level':>6}  {'healthy':>8}  {'degraded':>9}  {'damage':>7}  "
        f"{'predicted':>9}",
    ]
    previous_damage = -1.0
    for level in levels:
        healthy, degraded, predicted = results[level]
        damage = degraded - healthy
        lines.append(
            f"{level:>6.2f}  {healthy:>8.4f}  {degraded:>9.4f}  "
            f"{damage:>7.4f}  {predicted:>9.4f}"
        )
        assert damage == pytest.approx(predicted, abs=0.01)
        # More coordination -> more mass at risk per custodian.
        assert predicted >= previous_damage - 0.01
        previous_damage = predicted
    record_artifact("failure_injection", "\n".join(lines))
