"""Benchmark + reproduction of Figure 12: routing improvement G_R vs α.

Paper shape claims: G_R increases with α and higher γ raises the curve.

Absolute-magnitude note (detailed in EXPERIMENTS.md): the paper claims
G_R of 60-90% for α ≥ 0.5, γ ≥ 8, but under Table IV's own parameters
(N = 1e6, c = 1e3, n = 20) aggregate storage covers only 2% of the
catalog, so at least ~58% of requests always reach the origin and eq. 2
caps G_R below ~28% — the claim is inconsistent with the paper's own
formula.  We reproduce (and assert) the shape, report the measured
magnitudes, and verify the analytical cap.
"""

from __future__ import annotations

from repro.analysis.experiments import figure12_routing_gain_vs_alpha
from repro.analysis.tables import render_figure


def test_figure12(benchmark, record_artifact):
    fig = benchmark(figure12_routing_gain_vs_alpha)
    record_artifact("figure12", render_figure(fig))
    for series in fig.series:
        assert series.is_monotone_increasing(tolerance=1e-6)
    for i in range(len(fig.series[0].x)):
        gains = [s.y[i] for s in fig.series]
        assert gains == sorted(gains)
    # The analytical cap under Table IV parameters (see module docstring).
    for series in fig.series:
        assert max(series.y) < 0.30
