"""Performance regression gate against the last committed BENCH file.

Re-measures the two throughput-gated paths — the batched steady-state
kernel and the batched dynamic (LRU) kernel — with the *same request
counts* the committed baseline recorded, and fails (exit 1) when either
throughput drops more than the tolerance (default 20%).  Numbers are
only comparable on the machine that produced the baseline, so a
machine-fingerprint mismatch skips the check (exit 0 with a notice)
instead of failing spuriously.

Usage::

    python benchmarks/check_regression.py               # newest BENCH_*.json
    python benchmarks/check_regression.py --baseline BENCH_pr4.json
    python benchmarks/check_regression.py --tolerance 0.3
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT / "benchmarks") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.obs import machine_provenance, session as obs_session  # noqa: E402

#: Benchmark cases the gate re-measures, with the key holding their
#: requests-per-second figure.  ``dynamic_lru``'s primary ``rps`` is
#: kernel-only from this PR on; older baselines recorded wall rps under
#: the same key, which only makes the gate stricter for one transition.
#: ``solver_batch`` gates the batched analytical solver's points/s.
#: ``sharded_dynamic_lru`` gates the region-sharded scale run's
#: kernel-only throughput (sum of per-shard kernel spans).
#: ``approx_grid`` gates the Che-approximation layer's points/s over
#: the same grid (the 1000x-simulation-bypass headline).
#: ``ccn_packet_batched`` gates the batched packet-level engine's
#: requests/s (the >=50x-over-scalar-CCNNetwork headline).
#: ``solver_warm_resolve`` gates the incremental re-solver's effective
#: points/s (full grid over warm wall time — the online-service path).
GUARDED_CASES = (
    "steady_state_batched",
    "dynamic_lru",
    "solver_batch",
    "solver_warm_resolve",
    "sharded_dynamic_lru",
    "approx_grid",
    "ccn_packet_batched",
)

#: Provenance fields that must match for numbers to be comparable.
FINGERPRINT_FIELDS = (
    "platform",
    "machine",
    "cpu_count",
    "python",
    "implementation",
    "numpy",
)


def find_baseline(path: str | None) -> Path | None:
    """The BENCH file to compare against: explicit path or newest label.

    Labels sort by their trailing integer (``pr2`` < ``pr10``); files
    without a numeric suffix fall back behind numbered ones.
    """
    if path:
        return Path(path)
    candidates = sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not candidates:
        return None

    def label_key(p: Path):
        match = re.search(r"(\d+)", p.stem)
        return (1, int(match.group(1))) if match else (0, 0)

    return max(candidates, key=label_key)


def fingerprint(provenance: dict) -> dict:
    return {k: provenance.get(k) for k in FINGERPRINT_FIELDS}


def measure(case: str, baseline_case: dict) -> dict:
    """Re-run one guarded case with the baseline's request count.

    Best-of-three on both cases: a throughput gate must not flap on
    scheduler noise, and only a *sustained* drop is a regression.
    """
    from run_bench import (
        _bench_approx_grid,
        _bench_ccn_packet_batched,
        _bench_dynamic,
        _bench_sharded_dynamic,
        _bench_solver_batch,
        _bench_solver_warm_resolve,
        _bench_steady,
    )

    if case == "steady_state_batched":
        requests = int(baseline_case["requests"])
        return max(
            (_bench_steady(requests, batched=True) for _ in range(3)),
            key=lambda result: result["rps"],
        )
    if case == "dynamic_lru":
        return _bench_dynamic(int(baseline_case["requests"]), repeats=3)
    if case == "solver_batch":
        # Full-size grid iff the baseline recorded the full 10k points.
        return _bench_solver_batch(
            quick=int(baseline_case.get("points", 0)) < 10_000, repeats=3
        )
    if case == "solver_warm_resolve":
        # Full-size grid iff the baseline recorded the full 10k points.
        return _bench_solver_warm_resolve(
            quick=int(baseline_case.get("points", 0)) < 10_000
        )
    if case == "sharded_dynamic_lru":
        # Full-scale run iff the baseline recorded the 10^7-request run;
        # a single pass — the case is minutes long and kernel-only rps
        # is already averaged over 100 per-region spans.
        return _bench_sharded_dynamic(
            quick=int(baseline_case.get("requests", 0)) < 10_000_000
        )
    if case == "approx_grid":
        # Full-size grid iff the baseline recorded the full 10k points.
        return _bench_approx_grid(
            quick=int(baseline_case.get("points", 0)) < 10_000, repeats=3
        )
    if case == "ccn_packet_batched":
        return _bench_ccn_packet_batched(
            int(baseline_case["requests"]), repeats=3
        )
    raise ValueError(f"unknown guarded case {case!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="JSON",
        help="baseline BENCH file (default: newest BENCH_*.json by label)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional throughput drop (default: 0.20)",
    )
    args = parser.parse_args(argv)

    baseline_path = find_baseline(args.baseline)
    if baseline_path is None or not baseline_path.exists():
        print("bench-check: no committed BENCH_*.json baseline; skipping")
        return 0
    baseline = json.loads(baseline_path.read_text())
    if baseline.get("quick"):
        print(f"bench-check: {baseline_path.name} is a --quick run; skipping")
        return 0

    current_fp = fingerprint(machine_provenance())
    baseline_fp = fingerprint(baseline.get("provenance", {}))
    if current_fp != baseline_fp:
        print(
            "bench-check: machine fingerprint differs from "
            f"{baseline_path.name}; numbers not comparable, skipping\n"
            f"  baseline: {baseline_fp}\n  current:  {current_fp}"
        )
        return 0

    failures = []
    for case in GUARDED_CASES:
        recorded = baseline.get("after", {}).get(case)
        if not recorded or "rps" not in recorded:
            print(f"bench-check: {case} absent from baseline; skipping case")
            continue
        # The dynamic case reads its kernel-only rps from the
        # ``sim.dynamic.rps`` gauge, which only records inside an
        # active obs session.
        with obs_session():
            result = measure(case, recorded)
        old_rps = float(recorded["rps"])
        new_rps = float(result["rps"])
        floor = old_rps * (1.0 - args.tolerance)
        verdict = "ok" if new_rps >= floor else "REGRESSION"
        print(
            f"bench-check: {case}: {new_rps:,.0f} rps vs baseline "
            f"{old_rps:,.0f} (floor {floor:,.0f}) -> {verdict}"
        )
        if new_rps < floor:
            failures.append(case)

    if failures:
        print(
            f"bench-check: FAILED — {', '.join(failures)} regressed more "
            f"than {args.tolerance:.0%} vs {baseline_path.name}"
        )
        return 1
    print(f"bench-check: passed vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
