"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table or figure, times it via
pytest-benchmark, prints the rendered rows/series, and writes them to
``benchmarks/results/<id>.txt`` so runs can be diffed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    """Directory collecting the rendered tables/figures of this run."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(artifact_dir):
    """Write one experiment's rendered output to disk and stdout."""

    def _record(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
