"""Benchmark + reproduction of Figure 4: ℓ* vs α, one curve per γ.

Paper shape claims verified here:
- ℓ* increases monotonically from ~0 to ~1 as α grows;
- for the same α, a higher γ gives a higher coordination level;
- the α-sensitive range shifts with γ.
"""

from __future__ import annotations

from repro.analysis.experiments import figure4_level_vs_alpha
from repro.analysis.tables import render_figure


def test_figure4(benchmark, record_artifact):
    fig = benchmark(figure4_level_vs_alpha)
    record_artifact("figure4", render_figure(fig))
    for series in fig.series:
        assert series.is_monotone_increasing(tolerance=1e-6)
    # Gamma-dominance at every grid alpha.
    for i in range(len(fig.series[0].x)):
        levels = [s.y[i] for s in fig.series]
        assert levels == sorted(levels)
    # Full range: ~0 at small alpha (low gamma), ~1 at alpha=1 (high gamma).
    assert fig.series[0].y[0] < 0.05
    assert fig.series[-1].y[-1] > 0.9
