"""Benchmark: the performance/cost Pareto frontier and its knee.

The α sweep of eq. 4 traces the bi-objective frontier; the knee is the
operating point capturing most of the latency gain at a fraction of
the coordination budget — the recommendation a carrier without a
preferred α would take.
"""

from __future__ import annotations

from repro.analysis.experiments import pareto_tradeoff
from repro.analysis.tables import render_table


def test_pareto_frontier(benchmark, record_artifact):
    table = benchmark(pareto_tradeoff)
    record_artifact("pareto", render_table(table))
    latencies = table.column("T(x*)")
    costs = table.column("W(x*)")
    assert all(b <= a + 1e-9 for a, b in zip(latencies, latencies[1:]))
    assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))
    knee_rows = [row for row in table.rows if row[-1]]
    assert len(knee_rows) == 1
    knee = knee_rows[0]
    # The knee is interior and captures most of the achievable gain.
    assert 0.0 < knee[0] < 1.0
    total_gain = latencies[0] - latencies[-1]
    knee_gain = latencies[0] - knee[2]
    assert knee_gain >= 0.5 * total_gain
