"""Throughput/latency benchmark harness writing BENCH_<label>.json.

Measures the three performance-critical paths of the reproduction —
steady-state simulation (batched kernel and scalar reference), dynamic
cache-replacement simulation, and the analysis sweep engine — plus the
Zipf table-cache statistics, and writes one JSON snapshot at the repo
root so the performance trajectory is versioned alongside the code.

Usage::

    python benchmarks/run_bench.py --label pr2          # full run
    python benchmarks/run_bench.py --quick --no-write   # CI smoke

The workload/topology configuration mirrors
``benchmarks/test_simulator_throughput.py`` (US-A topology, c=100,
level 0.5, IRM Zipf(0.8) traffic) so numbers are comparable across
harness and pytest-benchmark runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.defaults import BASE_SCENARIO  # noqa: E402
from repro.analysis.sweep import sweep  # noqa: E402
from repro.catalog import IRMWorkload, ZipfModel  # noqa: E402
from repro.core import ProvisioningStrategy, ZipfPopularity  # noqa: E402
from repro.core import clear_zipf_caches, zipf_table_stats  # noqa: E402
from repro.core.batch_solver import ScenarioGrid, solve_batch  # noqa: E402
from repro.core.optimizer import optimal_strategy  # noqa: E402
from repro.obs import (  # noqa: E402
    get_session,
    machine_provenance,
    session as obs_session,
)
from repro.simulation import DynamicSimulator, SteadyStateSimulator  # noqa: E402
from repro.topology import load_topology  # noqa: E402


def _steady_simulator() -> SteadyStateSimulator:
    topology = load_topology("us-a")
    strategy = ProvisioningStrategy(
        capacity=100, n_routers=topology.n_routers, level=0.5
    )
    return SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )


def _bench_steady(requests: int, *, batched: bool, repeats: int = 1) -> dict:
    """One steady-state case, best-of-``repeats``.

    The regression gate (``benchmarks/check_regression.py``) compares
    best-of-N against this recorded figure, so the baseline must be the
    same statistic — a lucky single shot would set an unmeetable floor.
    """
    best = None
    for _ in range(repeats):
        simulator = _steady_simulator()
        workload = IRMWorkload(
            ZipfModel(0.8, 10_000), simulator.topology.nodes, seed=0
        )
        start = time.perf_counter()
        metrics = simulator.run(workload, requests, batched=batched)
        elapsed = time.perf_counter() - start
        assert metrics.requests == requests
        best = elapsed if best is None else min(best, elapsed)
    return {
        "requests": requests,
        "repeats": repeats,
        "seconds": round(best, 4),
        "rps": round(requests / best, 1),
    }


def _bench_large_catalog(requests: int, catalog_size: int) -> dict:
    """Batched steady state at paper-scale catalog (N = 10^6 by default)."""
    topology = load_topology("us-a")
    strategy = ProvisioningStrategy(
        capacity=1_000, n_routers=topology.n_routers, level=0.5
    )
    simulator = SteadyStateSimulator.from_strategy(
        topology, strategy, message_accounting="none"
    )
    workload = IRMWorkload(
        ZipfModel(0.8, catalog_size), topology.nodes, seed=0
    )
    start = time.perf_counter()
    metrics = simulator.run(workload, requests)
    elapsed = time.perf_counter() - start
    assert metrics.requests == requests
    return {
        "catalog_size": catalog_size,
        "requests": requests,
        "seconds": round(elapsed, 4),
        "rps": round(requests / elapsed, 1),
    }


def _dynamic_kernel_rps() -> float:
    """The kernel-only throughput the last dynamic run recorded.

    ``DynamicSimulator.run`` times its replacement/aggregation work in a
    ``sim.dynamic.kernel`` span and publishes requests-per-kernel-second
    as the ``sim.dynamic.rps`` gauge, so batched and scalar numbers
    compare like-for-like (workload generation excluded from both).
    """
    snapshot = get_session().snapshot()
    return float(snapshot.get("gauges", {}).get("sim.dynamic.rps", 0.0))


def _bench_dynamic(
    requests: int,
    *,
    policy: str = "lru",
    level: float = 0.5,
    batched: bool = True,
    repeats: int = 3,
) -> dict:
    """One dynamic-simulation case, best-of-``repeats`` per metric.

    The primary ``rps`` figure is kernel-only (see
    :func:`_dynamic_kernel_rps`); ``wall_rps`` keeps the end-to-end
    number including workload generation.  Repeats damp scheduler noise
    on shared machines — each metric reports its best repeat.
    """
    topology = load_topology("us-a")
    best_wall = None
    best_kernel = 0.0
    for _ in range(repeats):
        simulator = DynamicSimulator(
            topology,
            capacity=100,
            policy=policy,
            coordination_level=level,
            seed=0,
        )
        workload = IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=1)
        start = time.perf_counter()
        metrics = simulator.run(workload, requests, batched=batched)
        elapsed = time.perf_counter() - start
        assert metrics.requests == requests
        best_wall = elapsed if best_wall is None else min(best_wall, elapsed)
        best_kernel = max(best_kernel, _dynamic_kernel_rps())
    return {
        "policy": policy,
        "coordination_level": level,
        "batched": batched,
        "requests": requests,
        "repeats": repeats,
        "wall_s": round(best_wall, 4),
        "wall_rps": round(requests / best_wall, 1),
        "rps": round(best_kernel, 1),
    }


def _bench_sweep(parallel: int | str | None) -> dict:
    alphas = [round(0.05 + 0.9 * i / 11, 4) for i in range(12)]
    start = time.perf_counter()
    series = sweep(
        BASE_SCENARIO,
        x_field="alpha",
        x_values=alphas,
        quantity="level",
        curve_field="gamma",
        curve_values=(2.0, 5.0, 10.0),
        parallel=parallel,
    )
    elapsed = time.perf_counter() - start
    points = sum(len(s.x) for s in series)
    return {
        "grid_points": points,
        "parallel": parallel,
        "wall_s": round(elapsed, 4),
    }


def _solver_grid(quick: bool) -> ScenarioGrid:
    """The eq. 5 scenario grid both solver benches share.

    Full mode: 25 α × 20 s × 20 γ = 10,000 points around the Table IV
    base (the batched-solver acceptance grid); quick mode shrinks each
    axis for CI smoke runs.
    """
    n_alpha, n_s, n_gamma = (8, 5, 5) if quick else (25, 20, 20)
    alphas = [round(0.02 + 0.98 * i / (n_alpha - 1), 6) for i in range(n_alpha)]
    exponents = [
        round(0.5 + 1.4 * i / (n_s - 1), 6) for i in range(n_s)
    ]
    # Keep the grid off the s = 1 singularity (existence excludes it).
    exponents = [s if abs(s - 1.0) > 0.01 else 1.02 for s in exponents]
    gammas = [round(1.0 + 11.0 * i / (n_gamma - 1), 6) for i in range(n_gamma)]
    return ScenarioGrid.from_product(
        BASE_SCENARIO, alpha=alphas, exponent=exponents, gamma=gammas
    )


def _bench_solver_batch(quick: bool, *, repeats: int = 3) -> dict:
    """Batched eq. 7/first-order solve over the whole grid, best-of-N."""
    grid = _solver_grid(quick)
    best = None
    iterations = 0
    for _ in range(repeats):
        start = time.perf_counter()
        strategy = solve_batch(grid, check_conditions=False)
        elapsed = time.perf_counter() - start
        iterations = strategy.iterations
        best = elapsed if best is None else min(best, elapsed)
    return {
        "points": len(grid),
        "repeats": repeats,
        "bisection_iterations": iterations,
        "seconds": round(best, 4),
        "rps": round(len(grid) / best, 1),
    }


def _bench_solver_warm_resolve(quick: bool, *, repeats: int = 7) -> dict:
    """Warm incremental re-solve of a slightly perturbed grid, best-of-N.

    The online-service scenario: the 10k-point grid was solved once,
    then ~5% of its points drift (a ~3% γ move) and only those are
    re-solved, seeded from the previous optimum.  Headline: the warm
    path's speedup over a cold ``solve_batch`` of the same perturbed
    grid, with per-point agreement within 1e-9.
    """
    import numpy as np

    from repro.core.batch_solver import resolve_incremental

    grid = _solver_grid(quick)
    prev = solve_batch(grid, check_conditions=False)
    rng = np.random.default_rng(7)
    changed = rng.choice(len(grid), size=max(1, len(grid) // 20), replace=False)
    mask = np.zeros(len(grid), dtype=bool)
    mask[changed] = True
    columns = {
        name: getattr(grid, name).copy() for name in ScenarioGrid._COLUMNS
    }
    columns["gamma"][changed] *= 1.03
    perturbed = ScenarioGrid(**columns)

    warm_best = cold_best = None
    warm = cold = None
    for _ in range(repeats):
        start = time.perf_counter()
        warm = resolve_incremental(perturbed, prev, mask, check_conditions=False)
        elapsed = time.perf_counter() - start
        warm_best = elapsed if warm_best is None else min(warm_best, elapsed)
        start = time.perf_counter()
        cold = solve_batch(perturbed, check_conditions=False)
        elapsed = time.perf_counter() - start
        cold_best = elapsed if cold_best is None else min(cold_best, elapsed)
    max_diff = float(np.max(np.abs(warm.level - cold.level)))
    return {
        "points": len(grid),
        "changed": int(mask.sum()),
        "repeats": repeats,
        "newton_iterations": warm.iterations,
        "warm_seconds": round(warm_best, 5),
        "cold_seconds": round(cold_best, 5),
        "speedup_vs_cold": round(cold_best / warm_best, 1),
        "max_level_diff": max_diff,
        "rps": round(len(grid) / warm_best, 1),
    }


def _bench_serve_control_loop(quick: bool) -> dict:
    """The `repro serve` loop end-to-end: estimate -> dead-band -> warm solve.

    A drifting Zipf stream (s sweeping 0.6 -> 1.4 and back) is replayed
    through :class:`~repro.service.loop.OptimizerService`; the figure of
    merit is control-loop ticks/s including estimation, policy and the
    warm re-provisioning solve.
    """
    import math

    import numpy as np

    from repro.core.scenario import Scenario
    from repro.service import DeadBandPolicy, MeasurementBatch, OptimizerService

    ticks = 50 if quick else 200
    catalog = 50_000
    per_tick = 500
    scenario = Scenario(
        alpha=0.6, n_routers=20, capacity=500.0, catalog_size=catalog
    )
    rng = np.random.default_rng(11)
    ranks = np.arange(1, catalog + 1, dtype=np.float64)
    batches = []
    for tick in range(ticks):
        s = 1.0 + 0.4 * math.sin(2.0 * math.pi * tick / ticks)
        weights = ranks ** -s
        weights /= weights.sum()
        batches.append(
            MeasurementBatch(
                ranks=rng.choice(
                    np.arange(1, catalog + 1), size=per_tick, p=weights
                )
            )
        )
    service = OptimizerService(
        scenario, memory=0.6, policy=DeadBandPolicy(dead_band=0.01)
    )
    start = time.perf_counter()
    for _ in service.run(batches):
        pass
    elapsed = time.perf_counter() - start
    tracker = service.tracker
    return {
        "ticks": ticks,
        "requests_per_tick": per_tick,
        "catalog": catalog,
        "cold_solves": tracker.cold_solves,
        "warm_solves": tracker.warm_solves,
        "skipped": tracker.skipped,
        "seconds": round(elapsed, 4),
        "ticks_per_s": round(ticks / elapsed, 1),
    }


def _bench_solver_scalar(quick: bool, *, limit: int | None = None) -> dict:
    """Per-point scalar oracle over (a subset of) the same grid.

    The scalar path costs ~1 ms/point, so the full 10k-point grid takes
    ~10 s — acceptable once per BENCH run; ``limit`` caps it for the
    quick mode.  Throughput extrapolates linearly (points are
    independent), so the subset rps is comparable.
    """
    grid = _solver_grid(quick)
    count = len(grid) if limit is None else min(limit, len(grid))
    scenarios = [grid.scenario_at(i) for i in range(count)]
    start = time.perf_counter()
    for scenario in scenarios:
        optimal_strategy(scenario.model(), check_conditions=False)
    elapsed = time.perf_counter() - start
    return {
        "points": count,
        "grid_points": len(grid),
        "seconds": round(elapsed, 4),
        "rps": round(count / elapsed, 1),
    }


def _bench_approx_grid(quick: bool, *, repeats: int = 3) -> dict:
    """Che-approximation sweep over the eq. 5 grid vs per-point simulation.

    ``approx_batch`` answers "best coordination level under LRU" for
    every point of the same 10k-point grid the solver benches use
    (best-of-N, cold memo each repeat so the figure includes the
    fixed-point work).  The dynamic route needs one simulation per
    (point, level) pair, so the speedup figure times ONE representative
    point through the simulator — the ``dynamic_lru`` traffic config at
    the cross-validation request count, once per level on the default
    21-level grid — and extrapolates linearly: points are independent,
    so per-point cost is constant.
    """
    from repro.approx import approx_batch, clear_approx_caches

    grid = _solver_grid(quick)
    best = None
    unique_solves = 0
    for _ in range(repeats):
        clear_approx_caches()
        start = time.perf_counter()
        result = approx_batch(grid, policy="lru")
        elapsed = time.perf_counter() - start
        unique_solves = result.unique_solves
        best = elapsed if best is None else min(best, elapsed)

    n_levels, requests = (3, 5_000) if quick else (21, 40_000)
    topology = load_topology("us-a")
    start = time.perf_counter()
    for index in range(n_levels):
        simulator = DynamicSimulator(
            topology,
            capacity=100,
            policy="lru",
            coordination_level=index / (n_levels - 1),
            seed=0,
        )
        workload = IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=1)
        metrics = simulator.run(workload, requests)
        assert metrics.requests == requests
    dynamic_point_s = time.perf_counter() - start

    points_per_s = len(grid) / best
    dynamic_points_per_s = 1.0 / dynamic_point_s
    return {
        "points": len(grid),
        "repeats": repeats,
        "unique_solves": unique_solves,
        "seconds": round(best, 4),
        "rps": round(points_per_s, 1),
        "dynamic_levels": n_levels,
        "dynamic_requests_per_level": requests,
        "dynamic_point_s": round(dynamic_point_s, 4),
        "speedup_vs_dynamic": round(points_per_s / dynamic_points_per_s, 1),
    }


def _bench_sweep_dense(quick: bool) -> dict:
    """A dense figure-style sweep through the batched dispatch path."""
    n_alpha = 20 if quick else 80
    alphas = [round(0.01 + 0.98 * i / (n_alpha - 1), 6) for i in range(n_alpha)]
    start = time.perf_counter()
    series = sweep(
        BASE_SCENARIO,
        x_field="alpha",
        x_values=alphas,
        quantity="level",
        curve_field="gamma",
        curve_values=(1.0, 2.0, 5.0, 10.0, 12.0),
        parallel="auto",
    )
    elapsed = time.perf_counter() - start
    points = sum(len(s.x) for s in series)
    return {
        "grid_points": points,
        "parallel": "auto",
        "wall_s": round(elapsed, 4),
        "rps": round(points / elapsed, 1),
    }


def _bench_topology_generate(quick: bool) -> dict:
    """Seeded hierarchical generator at (near-)Internet scale.

    Full mode builds the 5k-router / 100-region three-tier graph the
    sharded-simulation bench consumes; quick mode shrinks to 1k/20 for
    CI smoke runs.  Generation is deterministic, so the figure is pure
    construction cost (points, Waxman draws, betweenness, origin BFS).
    """
    from repro.topology import generate_hierarchy

    routers, regions = (1_000, 20) if quick else (5_000, 100)
    start = time.perf_counter()
    topology = generate_hierarchy(0, routers=routers, regions=regions)
    elapsed = time.perf_counter() - start
    return {
        "routers": topology.n_routers,
        "regions": topology.region_count,
        "links": topology.n_links,
        "seconds": round(elapsed, 4),
        "routers_per_s": round(routers / elapsed, 1),
    }


def _bench_sharded_dynamic(quick: bool) -> dict:
    """Region-sharded dynamic LRU at scale (same traffic as dynamic_lru).

    The primary ``rps`` figure is kernel-only and per-shard comparable
    with ``dynamic_lru``: it divides total requests by the sum of every
    shard's ``sim.dynamic.kernel`` span, so pool spin-up, workload
    generation, and the deterministic merge are all excluded (``wall_s``
    keeps the end-to-end number).  Full mode is the ISSUE 7 acceptance
    run: 5k routers, 100 regions, 10^7 requests.
    """
    from repro.simulation import run_sharded
    from repro.topology import generate_hierarchy

    routers, regions, requests = (
        (600, 12, 100_000) if quick else (5_000, 100, 10_000_000)
    )
    topology = generate_hierarchy(0, routers=routers, regions=regions)
    start = time.perf_counter()
    result = run_sharded(
        topology,
        requests=requests,
        capacity=100,
        policy="lru",
        coordination_level=0.5,
        exponent=0.8,
        catalog_size=10_000,
        seed=0,
        shards="auto",
    )
    elapsed = time.perf_counter() - start
    return {
        "routers": routers,
        "regions": regions,
        "requests": requests,
        "shards": result.shards,
        "origin_load": round(result.metrics.origin_load, 6),
        "kernel_s": round(result.kernel_seconds, 4),
        "wall_s": round(elapsed, 4),
        "wall_rps": round(requests / elapsed, 1),
        "rps": round(result.kernel_rps, 1),
    }


def _ccn_packet_workload(topology):
    return IRMWorkload(ZipfModel(0.8, 10_000), topology.nodes, seed=7)


def _bench_ccn_packet_scalar(requests: int) -> dict:
    """Scalar packet-level CCNNetwork reference (US-A, c=100, l=0.5)."""
    from repro.ccn import CCNNetwork

    topology = load_topology("us-a")
    network = CCNNetwork(topology, origin_gateway=topology.nodes[0])
    network.install_strategy(
        ProvisioningStrategy(
            capacity=100, n_routers=topology.n_routers, level=0.5
        )
    )
    start = time.perf_counter()
    metrics = network.run_workload(
        _ccn_packet_workload(topology), requests, interarrival_ms=1.0
    )
    elapsed = time.perf_counter() - start
    assert metrics.requests_issued == requests
    return {
        "requests": requests,
        "seconds": round(elapsed, 4),
        "rps": round(requests / elapsed, 1),
    }


def _bench_ccn_packet_batched(requests: int, *, repeats: int = 3) -> dict:
    """Batched packet engine on the scalar case's exact traffic, best-of-N."""
    from repro.ccn import BatchedCCNEngine

    topology = load_topology("us-a")
    best = None
    aggregations = 0
    simulated = 0
    for _ in range(repeats):
        engine = BatchedCCNEngine(topology, origin_gateway=topology.nodes[0])
        engine.install_strategy(
            ProvisioningStrategy(
                capacity=100, n_routers=topology.n_routers, level=0.5
            )
        )
        start = time.perf_counter()
        result = engine.run_workload(
            _ccn_packet_workload(topology), requests, interarrival_ms=1.0
        )
        elapsed = time.perf_counter() - start
        assert result.requests_issued == requests
        aggregations = result.pit_aggregations
        simulated = result.simulated_requests
        best = elapsed if best is None else min(best, elapsed)
    return {
        "requests": requests,
        "repeats": repeats,
        "pit_aggregations": aggregations,
        "simulated_requests": simulated,
        "seconds": round(best, 4),
        "rps": round(requests / best, 1),
    }


def _bench_lint_full_tree() -> dict:
    """Cold vs warm whole-tree lint (the incremental-engine headline).

    Cold parses every file and runs all ten rules; warm serves per-file
    results from the content-hash cache and re-runs only the cheap
    summary-level project rules.  Uses a throwaway cache directory so
    the bench never touches the working tree's ``.lint-cache/``.
    """
    import tempfile

    from repro.lint import lint_paths

    targets = [REPO_ROOT / "src", REPO_ROOT / "tests"]
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = Path(cache_dir) / "lint-cache"
        start = time.perf_counter()
        cold = lint_paths(targets, cache_dir=cache)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = lint_paths(targets, cache_dir=cache)
        warm_s = time.perf_counter() - start
    return {
        "files": cold.files_checked,
        "findings": len(cold.diagnostics),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_relinted": warm.files_relinted,
        "speedup": round(cold_s / warm_s, 1) if warm_s > 0 else float("inf"),
    }


def _bench_zipf_tables(catalog_size: int) -> dict:
    """Cold table build vs memoized rebuild for ``ZipfPopularity``."""
    import numpy as np

    clear_zipf_caches()

    def build() -> None:
        popularity = ZipfPopularity(0.8, catalog_size)
        popularity.cdf(catalog_size)
        # sample() forces the N-length pmf/cdf tables (the expensive part)
        popularity.sample(1, np.random.default_rng(0))

    start = time.perf_counter()
    build()
    cold = time.perf_counter() - start
    start = time.perf_counter()
    build()
    warm = time.perf_counter() - start
    return {
        "catalog_size": catalog_size,
        "cold_build_s": round(cold, 6),
        "memoized_s": round(warm, 6),
        "speedup": round(cold / warm, 1) if warm > 0 else float("inf"),
    }


def run(quick: bool) -> dict:
    clear_zipf_caches()
    # The batched path gets a larger count so the one-time kernel build
    # amortizes the way it does in real model-validation runs.
    steady_requests = 20_000 if quick else 1_000_000
    dynamic_requests = 5_000 if quick else 200_000
    dynamic_scalar_requests = 5_000 if quick else 50_000
    scalar_requests = 10_000 if quick else 100_000

    results = {
        "steady_state_batched": _bench_steady(
            steady_requests, batched=True, repeats=1 if quick else 3
        ),
        "steady_state_scalar": _bench_steady(scalar_requests, batched=False),
        "dynamic_lru": _bench_dynamic(dynamic_requests),
        "dynamic_lru_scalar": _bench_dynamic(
            dynamic_scalar_requests, batched=False, repeats=2
        ),
        "sweep_serial": _bench_sweep(None),
        "sweep_auto": _bench_sweep("auto"),
        "sweep_dense": _bench_sweep_dense(quick),
        "solver_batch": _bench_solver_batch(quick),
        "solver_warm_resolve": _bench_solver_warm_resolve(quick),
        "serve_control_loop": _bench_serve_control_loop(quick),
        "solver_scalar": _bench_solver_scalar(
            quick, limit=200 if quick else None
        ),
        "approx_grid": _bench_approx_grid(quick, repeats=1 if quick else 3),
        "topology_generate_5k": _bench_topology_generate(quick),
        "sharded_dynamic_lru": _bench_sharded_dynamic(quick),
        "ccn_packet_scalar": _bench_ccn_packet_scalar(
            5_000 if quick else 20_000
        ),
        "ccn_packet_batched": _bench_ccn_packet_batched(
            50_000 if quick else 1_000_000, repeats=1 if quick else 3
        ),
    }
    results["solver_batch"]["speedup_vs_scalar"] = round(
        results["solver_batch"]["rps"] / results["solver_scalar"]["rps"], 1
    )
    results["ccn_packet_batched"]["speedup_vs_scalar"] = round(
        results["ccn_packet_batched"]["rps"]
        / results["ccn_packet_scalar"]["rps"],
        1,
    )
    if not quick:
        results["dynamic_lfu"] = _bench_dynamic(dynamic_requests, policy="lfu")
        results["dynamic_perfect_lfu"] = _bench_dynamic(
            dynamic_requests, policy="perfect-lfu"
        )
        results["dynamic_fifo"] = _bench_dynamic(
            dynamic_requests, policy="fifo"
        )
        results["dynamic_random"] = _bench_dynamic(
            dynamic_requests, policy="random"
        )
        results["dynamic_lru_uncoordinated"] = _bench_dynamic(
            dynamic_requests, level=0.0
        )
        results["dynamic_lru_fully_coordinated"] = _bench_dynamic(
            dynamic_requests, level=1.0
        )
        results["sweep_parallel_4"] = _bench_sweep(4)
        results["large_catalog"] = _bench_large_catalog(200_000, 1_000_000)
    results["lint_full_tree"] = _bench_lint_full_tree()
    results["zipf_tables"] = _bench_zipf_tables(
        100_000 if quick else 1_000_000
    )
    results["zipf_table_stats"] = zipf_table_stats()
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--label", default="local", help="suffix for BENCH_<label>.json"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small request counts (CI smoke test; numbers not comparable)",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without writing the BENCH file",
    )
    parser.add_argument(
        "--before",
        default=None,
        metavar="JSON",
        help="path to a baseline JSON to embed under the 'before' key",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output path (default: <repo root>/BENCH_<label>.json)",
    )
    args = parser.parse_args(argv)

    # Benchmarks run inside a capture session so the instrumented
    # library paths (batch counters, per-tier hits, sweep spans, Zipf
    # memo deltas) land in the BENCH payload as an obs snapshot.
    with obs_session(annotations={"bench_label": args.label}) as capture:
        results = run(quick=args.quick)
    payload: dict = {
        "label": args.label,
        "quick": args.quick,
        "provenance": machine_provenance(),
        "after": results,
        "obs": capture.snapshot(),
    }
    if args.before:
        payload["before"] = json.loads(Path(args.before).read_text())

    text = json.dumps(payload, indent=2)
    print(text)
    if not args.no_write:
        out = Path(args.out) if args.out else REPO_ROOT / f"BENCH_{args.label}.json"
        out.write_text(text + "\n")
        print(f"\nwrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
