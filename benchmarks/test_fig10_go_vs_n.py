"""Benchmark + reproduction of Figure 10: origin load reduction G_O vs n.

Paper shape claims: for small α the gain is roughly flat in n; for
α → 1 the gain grows with network size; higher α means higher gain.
"""

from __future__ import annotations

from repro.analysis.experiments import figure10_origin_gain_vs_routers
from repro.analysis.tables import render_figure


def test_figure10(benchmark, record_artifact):
    fig = benchmark(figure10_origin_gain_vs_routers)
    record_artifact("figure10", render_figure(fig))
    flat = fig.series_by_label("alpha=0.4")
    assert max(flat.y) - min(flat.y) < 0.2  # roughly constant
    growing = fig.series_by_label("alpha=1")
    assert growing.y[-1] > growing.y[0]  # network size effect emerges
    for i in range(len(fig.series[0].x)):
        gains = [s.y[i] for s in fig.series]
        assert gains == sorted(gains)
