"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError` so that callers can catch library failures with a
single ``except`` clause while letting programming errors (``TypeError``
and friends) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParameterError",
    "SingularExponentError",
    "ExistenceConditionError",
    "ConvergenceError",
    "TopologyError",
    "CatalogError",
    "SimulationError",
    "ObservabilityError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ParameterError(ReproError, ValueError):
    """A model parameter is outside its admissible range.

    Raised, for example, when a latency model violates ``d0 < d1 <= d2``
    or when a cache capacity is negative.
    """


class SingularExponentError(ParameterError):
    """The Zipf exponent hit the singular point ``s = 1``.

    The paper's continuous approximation (eq. 6) and the optimality
    equation (eq. 7) are undefined at ``s = 1``; callers that need the
    limit behaviour should use the dedicated ``*_limit`` helpers in
    :mod:`repro.core.zipf`.
    """


class ExistenceConditionError(ReproError):
    """Lemma 1's existence conditions do not hold for the given inputs."""

    def __init__(self, violations: list[str]):
        self.violations = list(violations)
        summary = "; ".join(self.violations) or "unknown violation"
        super().__init__(f"optimal strategy existence conditions violated: {summary}")


class ConvergenceError(ReproError):
    """A numerical solver failed to converge to the requested tolerance."""


class TopologyError(ReproError):
    """A topology is malformed (disconnected, missing latency, ...)."""


class CatalogError(ReproError):
    """A content catalog or popularity model is malformed."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ObservabilityError(ReproError):
    """The metrics/tracing layer was misused (bad metric, bad events file).

    Raised by :mod:`repro.obs` for caller errors — decreasing a
    counter, re-registering a histogram with different buckets,
    summarizing a malformed events file.  Instrumentation never raises
    on the recording hot path for *data* reasons; observability must
    not take down the run it observes.
    """
