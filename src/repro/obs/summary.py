"""Parsing and rendering of recorded observability event streams.

``repro obs summarize events.jsonl`` is backed by this module:
:func:`read_events` loads a JSONL (optionally ``.gz``) event file,
:func:`summarize_events` folds the raw timeline into per-span-name
aggregates plus the final metric values, and :func:`render_summary`
renders the human-readable report — per-phase wall time, derived rates
(Zipf memo hit rate, requests/s), per-tier hit counters, histograms,
and the run manifest.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Iterable, List, Union

from ..errors import ObservabilityError

__all__ = ["read_events", "summarize_events", "render_summary"]


def read_events(path: Union[str, Path]) -> List[dict]:
    """Load an events file (one JSON object per line; ``.gz`` supported)."""
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"events file {path} does not exist")
    opener = gzip.open if path.suffix == ".gz" else open
    events: List[dict] = []
    with opener(path, "rt", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"events file {path} line {line_number} is not valid JSON: {exc}"
                ) from exc
            if not isinstance(event, dict) or "type" not in event:
                raise ObservabilityError(
                    f"events file {path} line {line_number}: expected an "
                    f"object with a 'type' field, got {event!r}"
                )
            events.append(event)
    return events


def summarize_events(events: Iterable[dict]) -> dict:
    """Fold an event timeline into the snapshot-shaped summary dict.

    ``span``/``span_merge`` events aggregate per name (count, total
    seconds); ``counter``/``gauge``/``histogram``/``manifest`` events
    carry final values and pass through.  The result has the same shape
    as :meth:`repro.obs.ObsSession.snapshot`, so both render the same
    way.
    """
    spans: dict = {}
    phases: dict = {}
    counters: dict = {}
    gauges: dict = {}
    histograms: dict = {}
    manifest: dict = {}
    for event in events:
        kind = event.get("type")
        if kind == "span":
            entry = spans.setdefault(event["name"], {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += event["duration_s"]
            if event.get("depth", 0) == 0:
                phases[event["name"]] = (
                    phases.get(event["name"], 0.0) + event["duration_s"]
                )
        elif kind == "span_merge":
            entry = spans.setdefault(event["name"], {"count": 0, "total_s": 0.0})
            entry["count"] += event["count"]
            entry["total_s"] += event["total_s"]
        elif kind == "counter":
            counters[event["name"]] = counters.get(event["name"], 0) + event["value"]
        elif kind == "gauge":
            gauges[event["name"]] = event["value"]
        elif kind == "histogram":
            histograms[event["name"]] = {
                k: event[k] for k in ("bounds", "bucket_counts", "count", "total")
            }
        elif kind == "manifest":
            manifest = {k: v for k, v in event.items() if k != "type"}
            if "phases" in manifest and not phases:
                phases = dict(manifest["phases"])
        # Unknown event types pass through silently: newer writers must
        # not break older summarizers.
    return {
        "spans": {name: spans[name] for name in sorted(spans)},
        "phases": {name: phases[name] for name in sorted(phases)},
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "histograms": {name: histograms[name] for name in sorted(histograms)},
        "manifest": manifest,
    }


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.6g}" if value == int(value) else f"{value:,.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _derived_lines(counters: dict, gauges: dict) -> List[str]:
    """Headline rates computed from well-known metric names."""
    lines: List[str] = []
    hits = counters.get("zipf.cache.hits", 0)
    misses = counters.get("zipf.cache.misses", 0)
    if hits or misses:
        rate = hits / (hits + misses)
        lines.append(
            f"  zipf memo hit rate       = {rate:7.2%}  "
            f"({int(hits):,} hits / {int(misses):,} misses)"
        )
    for gauge, label in (
        ("sim.steady.rps", "steady-state requests/s"),
        ("sim.dynamic.rps", "dynamic requests/s"),
    ):
        if gauge in gauges:
            lines.append(f"  {label:<24} = {gauges[gauge]:,.0f}")
    tiers = [
        (tier, counters.get(f"sim.steady.{tier}_hits"))
        for tier in ("local", "peer", "origin")
    ]
    if any(v is not None for _, v in tiers):
        total = sum(v or 0 for _, v in tiers)
        parts = ", ".join(
            f"{tier} {int(v or 0):,} ({(v or 0) / total:.1%})" for tier, v in tiers
        )
        lines.append(f"  per-tier hits (steady)   : {parts}")
    return lines


def render_summary(summary: dict) -> str:
    """Human-readable report of a summarized event stream."""
    lines: List[str] = []
    phases = summary.get("phases", {})
    if phases:
        lines.append("phases (top-level spans, wall time):")
        width = max(len(name) for name in phases)
        for name, total in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<{width}}  {total:10.4f} s")
    spans = summary.get("spans", {})
    if spans:
        lines.append("spans:")
        width = max(len(name) for name in spans)
        lines.append(
            f"  {'name':<{width}}  {'count':>8}  {'total s':>10}  {'mean ms':>10}"
        )
        for name, agg in sorted(spans.items(), key=lambda kv: -kv[1]["total_s"]):
            mean_ms = 1e3 * agg["total_s"] / agg["count"] if agg["count"] else 0.0
            lines.append(
                f"  {name:<{width}}  {agg['count']:>8,}  "
                f"{agg['total_s']:>10.4f}  {mean_ms:>10.3f}"
            )
    derived = _derived_lines(summary.get("counters", {}), summary.get("gauges", {}))
    if derived:
        lines.append("derived:")
        lines.extend(derived)
    counters = summary.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            lines.append(f"  {name:<{width}}  {_format_value(value):>14}")
    gauges = summary.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {_format_value(value):>14}")
    histograms = summary.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, payload in histograms.items():
            count = payload["count"]
            mean = payload["total"] / count if count else 0.0
            lines.append(f"  {name}: n={count:,} mean={mean:,.1f}")
            bounds = payload["bounds"]
            labels = [f"<={_format_value(b)}" for b in bounds] + [
                f">{_format_value(bounds[-1])}"
            ]
            occupied = [
                (label, c)
                for label, c in zip(labels, payload["bucket_counts"])
                if c
            ]
            for label, c in occupied:
                lines.append(f"    {label:>12}  {c:>10,}")
    manifest = summary.get("manifest", {})
    provenance = manifest.get("provenance", {})
    if provenance:
        lines.append("manifest:")
        lines.append(
            f"  {provenance.get('platform', '?')} · "
            f"python {provenance.get('python', '?')} · "
            f"numpy {provenance.get('numpy', '?')} · "
            f"{provenance.get('cpu_count', '?')} cpus"
        )
        for key, value in manifest.get("annotations", {}).items():
            lines.append(f"  {key} = {value}")
    if not lines:
        lines.append("(no events)")
    return "\n".join(lines)
