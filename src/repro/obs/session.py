"""The ambient observability session instrumented code records into.

Instrumented library code never holds a session reference; it calls
:func:`get_session` and records into whatever is ambient.  By default
that is :data:`NULL_SESSION`, whose every operation is a shared no-op
singleton — the permanent instrumentation of the hot paths costs near
zero until someone opts in::

    with obs.session(JsonlSink("events.jsonl")) as s:
        run_everything()          # spans + metrics stream to the file
    # finalize ran: providers polled, metrics + manifest emitted.

Worker processes (``ProcessPoolExecutor`` sweeps) cannot share the
parent's session.  Instead each worker opens its own capture session
(default :class:`~repro.obs.sinks.NullSink`), does its slice of work,
and returns :meth:`ObsSession.snapshot` alongside its result; the
parent calls :meth:`ObsSession.merge_snapshot` on the returned
snapshots *in grid order*, so the merged registry is deterministic no
matter how the pool scheduled the work.

Providers bridge module-level statistics (the Zipf memo caches of
:mod:`repro.core.zipf`) into sessions without inverting the layering:
the owning module registers a callable returning cumulative per-process
counter values; each session samples it at open and again at finalize
and records the *delta*, so a session reports exactly the activity that
happened within it — in every process that contributed a snapshot.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, Iterator, Mapping, Optional, Sequence

from ..errors import ObservabilityError
from .manifest import run_manifest
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import NullSink, Sink
from .spans import SpanTracker

__all__ = [
    "ObsSession",
    "NULL_SESSION",
    "session",
    "get_session",
    "register_provider",
    "registered_providers",
]

#: Per-process statistic providers: name -> callable returning a flat
#: ``{counter_name: cumulative_value}`` mapping.
_PROVIDERS: Dict[str, Callable[[], Mapping[str, float]]] = {}


def register_provider(name: str, fn: Callable[[], Mapping[str, float]]) -> None:
    """Register a cumulative-counter statistics source (idempotent by name).

    ``fn`` must be cheap and must return monotonically non-decreasing
    per-process values; sessions record finalize-minus-open deltas.
    Re-registering the same name replaces the callable (supports module
    reloads in tests).
    """
    if not isinstance(name, str) or not name:
        raise ObservabilityError(f"provider name must be a non-empty string, got {name!r}")
    if not callable(fn):
        raise ObservabilityError(f"provider {name!r} must be callable, got {fn!r}")
    _PROVIDERS[name] = fn


def registered_providers() -> tuple[str, ...]:
    """Names of the providers registered in this process, sorted."""
    return tuple(sorted(_PROVIDERS))


class ObsSession:
    """One recording scope: registry + span tracker + sink + manifest.

    Parameters
    ----------
    sink:
        Event destination; defaults to :class:`NullSink` (a pure
        in-memory capture session, snapshot-only).
    annotations:
        Manifest key/values describing what this run is (command line,
        scenario fingerprint).  Extend later with :meth:`annotate`.
    """

    #: Instrumented code may branch on this to skip derived-metric
    #: computation (e.g. a requests/s division) when nobody records.
    enabled = True

    def __init__(
        self,
        sink: Optional[Sink] = None,
        *,
        annotations: Optional[Mapping[str, object]] = None,
    ):
        self.sink = sink if sink is not None else NullSink()
        self.registry = MetricsRegistry()
        self.tracker = SpanTracker(emit=self.sink.emit)
        self._annotations: Dict[str, object] = dict(annotations or {})
        self._provider_base = {
            name: dict(fn()) for name, fn in _PROVIDERS.items()
        }
        self._finalized = False

    # -- recording surface (mirrored by the null session) ------------------

    def counter(self, name: str) -> Counter:
        """Get-or-create the named monotone counter."""
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named last-write-wins gauge."""
        return self.registry.gauge(name)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create the named fixed-bucket histogram."""
        return self.registry.histogram(name, bounds)

    def span(self, name: str):
        """Open a nested timed span (use as a context manager)."""
        return self.tracker.span(name)

    def annotate(self, key: str, value: object) -> None:
        """Attach a manifest annotation (command, scenario fingerprint)."""
        self._annotations[str(key)] = value

    # -- merge + finalize ---------------------------------------------------

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a worker session's :meth:`snapshot` into this session.

        Counters/histograms/absorbed spans add; gauges take the
        snapshot value.  Callers must merge in a deterministic order
        (the parallel sweep merges in grid order).
        """
        self.registry.merge(snapshot)
        for name, agg in snapshot.get("spans", {}).items():
            self.tracker.absorb(name, agg["count"], agg["total_s"])

    def snapshot(self) -> dict:
        """Deterministic dict view: metrics, span aggregates, manifest."""
        snap = self.registry.snapshot()
        snap["spans"] = self.tracker.aggregate()
        snap["manifest"] = run_manifest(
            annotations=self._annotations, phases=self.tracker.phase_totals()
        )
        return snap

    def _poll_providers(self) -> None:
        for name, fn in sorted(_PROVIDERS.items()):
            base = self._provider_base.get(name, {})
            for key, value in sorted(dict(fn()).items()):
                delta = value - base.get(key, 0)
                if delta > 0:
                    self.counter(key).add(delta)

    def finalize(self) -> None:
        """Poll providers, emit metric + manifest events, close the sink.

        Idempotent; called automatically by the :func:`session` context
        manager.
        """
        if self._finalized:
            return
        self._finalized = True
        self._poll_providers()
        snap = self.registry.snapshot()
        emit = self.sink.emit
        for name, value in snap["counters"].items():
            emit({"type": "counter", "name": name, "value": value})
        for name, value in snap["gauges"].items():
            emit({"type": "gauge", "name": name, "value": value})
        for name, payload in snap["histograms"].items():
            emit({"type": "histogram", "name": name, **payload})
        emit(
            {
                "type": "manifest",
                **run_manifest(
                    annotations=self._annotations,
                    phases=self.tracker.phase_totals(),
                ),
            }
        )
        self.sink.close()


class _NullCounter(Counter):
    __slots__ = ()

    def add(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    """Shared reusable no-op span; ``duration_s`` stays 0."""

    __slots__ = ()
    name = ""
    start_s = 0.0
    duration_s = 0.0
    depth = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullSession(ObsSession):
    """The ambient default: every operation is a shared no-op singleton.

    This is what keeps permanently instrumented hot paths within noise
    of un-instrumented speed (see ``tests/obs/test_overhead.py``): no
    allocation, no dict lookups, no clock reads.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately does NOT call super()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")
        self._span = _NullSpan()

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str) -> Gauge:
        return self._gauge

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        return self._histogram

    def span(self, name: str):
        return self._span

    def annotate(self, key: str, value: object) -> None:
        pass

    def merge_snapshot(self, snapshot: Mapping) -> None:
        pass

    def snapshot(self) -> dict:
        return {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
            "manifest": {},
        }

    def finalize(self) -> None:
        pass


#: The ambient default session (recording disabled).
NULL_SESSION = _NullSession()

_current: ObsSession = NULL_SESSION


def get_session() -> ObsSession:
    """The session instrumentation records into right now."""
    return _current


@contextlib.contextmanager
def session(
    sink: Optional[Sink] = None,
    *,
    annotations: Optional[Mapping[str, object]] = None,
) -> Iterator[ObsSession]:
    """Install a recording session as the ambient one for the block.

    Finalizes (providers polled, metric/manifest events emitted, sink
    closed) and restores the previous ambient session on exit — also on
    exceptions, so a crashed run still leaves a readable event stream.
    Sessions may nest; the inner session shadows the outer until it
    exits (recorded data is not forwarded between them).
    """
    global _current
    new = ObsSession(sink, annotations=annotations)
    previous = _current
    _current = new
    try:
        yield new
    finally:
        _current = previous
        new.finalize()
