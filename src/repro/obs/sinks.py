"""Pluggable event sinks for the observability layer.

Every span close and every finalized metric becomes one small dict
event; a sink decides what happens to it.  Three implementations:

- :class:`NullSink` — the default; drops everything.  Instrumented
  code built against the null sink costs near zero, which is what lets
  the hot paths stay instrumented permanently.
- :class:`JsonlSink` — one JSON object per line, append-ordered, the
  interchange format ``repro obs summarize`` reads.  Supports ``.gz``
  paths transparently (frozen event streams stay shareable, like
  frozen workload traces).
- :class:`TextSummarySink` — buffers events and writes the
  human-readable summary rendering on close (quick look without a
  second command).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import IO, List, Optional, Union

from ..errors import ObservabilityError

__all__ = ["Sink", "NullSink", "JsonlSink", "TextSummarySink"]


class Sink:
    """Interface: receives events; closed exactly once at finalize."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        """Receive one event dict (a span close, a final metric, …)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class NullSink(Sink):
    """Discards every event (the near-zero-overhead default)."""

    def emit(self, event: dict) -> None:
        """Drop the event."""


def _open_text(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


class JsonlSink(Sink):
    """Writes one compact JSON object per event line to ``path``.

    Events are written in emission order, so the file is a faithful
    timeline: spans appear as they close, metric and manifest events
    at session finalize.  A trailing ``.gz`` suffix gzip-compresses
    the stream transparently.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        try:
            self._handle: Optional[IO[str]] = _open_text(self.path, "w")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open events file {self.path}: {exc}"
            ) from exc
        self.events_written = 0

    def emit(self, event: dict) -> None:
        """Append the event as one compact, key-sorted JSON line."""
        if self._handle is None:
            raise ObservabilityError(
                f"events file {self.path} is closed; cannot emit {event.get('type')!r}"
            )
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent); emits then raise."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TextSummarySink(Sink):
    """Buffers events; writes the rendered text summary on close."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._events: List[dict] = []

    def emit(self, event: dict) -> None:
        """Buffer the event for the close-time rendering."""
        self._events.append(event)

    def close(self) -> None:
        """Summarize the buffered events and write the text report."""
        from .summary import render_summary, summarize_events

        self.path.write_text(render_summary(summarize_events(self._events)) + "\n")
