"""Span-based tracing on the monotonic clock.

A *span* is one named, timed region of a run — an experiment, a sweep
grid point, an adaptive epoch.  Spans nest: the tracker keeps an open
stack, stamps each close with ``time.perf_counter`` (monotonic, so
spans survive wall-clock adjustments), emits one event per close to the
session's sink, and maintains constant-memory per-name aggregates so a
million grid-point spans summarize without storing a million records.

Per-worker tracing in ``ProcessPoolExecutor`` sweeps: each worker
records into its own tracker and ships the aggregate back with its
result; :meth:`SpanTracker.absorb` folds those worker aggregates into
the parent deterministically (grid order), emitting a ``span_merge``
event so the JSONL stream preserves where the time was spent.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..errors import ObservabilityError

__all__ = ["SpanHandle", "SpanTracker"]

_EmitFn = Callable[[dict], None]


class SpanHandle:
    """One open (then closed) span; usable as a context manager.

    ``duration_s`` is 0 while the span is open and the measured
    monotonic duration after close — instrumented code reads it to
    derive rates (requests/s) without touching the clock itself.
    """

    __slots__ = ("name", "start_s", "duration_s", "depth", "_tracker")

    def __init__(self, tracker: "SpanTracker", name: str, start_s: float, depth: int):
        self.name = name
        self.start_s = start_s
        self.duration_s = 0.0
        self.depth = depth
        self._tracker = tracker

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracker._close(self)
        return False


class SpanTracker:
    """Open-span stack + per-name aggregates for one session."""

    def __init__(self, emit: Optional[_EmitFn] = None):
        self._emit = emit
        self._epoch = time.perf_counter()
        self._stack: List[SpanHandle] = []
        #: name -> [count, total_s]; includes absorbed worker spans.
        self._aggregate: Dict[str, List[float]] = {}
        #: per-name total seconds of depth-0 spans only (run phases).
        self._phase_totals: Dict[str, float] = {}

    def span(self, name: str) -> SpanHandle:
        """Open a nested span; close it by exiting the ``with`` block."""
        if not isinstance(name, str) or not name:
            raise ObservabilityError(f"span name must be a non-empty string, got {name!r}")
        handle = SpanHandle(
            self, name, time.perf_counter() - self._epoch, len(self._stack)
        )
        self._stack.append(handle)
        return handle

    def _close(self, handle: SpanHandle) -> None:
        if not self._stack or self._stack[-1] is not handle:
            raise ObservabilityError(
                f"span {handle.name!r} closed out of order; spans must nest"
            )
        self._stack.pop()
        handle.duration_s = (time.perf_counter() - self._epoch) - handle.start_s
        entry = self._aggregate.setdefault(handle.name, [0, 0.0])
        entry[0] += 1
        entry[1] += handle.duration_s
        if handle.depth == 0:
            self._phase_totals[handle.name] = (
                self._phase_totals.get(handle.name, 0.0) + handle.duration_s
            )
        if self._emit is not None:
            self._emit(
                {
                    "type": "span",
                    "name": handle.name,
                    "start_s": round(handle.start_s, 6),
                    "duration_s": round(handle.duration_s, 6),
                    "depth": handle.depth,
                }
            )

    def absorb(self, name: str, count: int, total_s: float) -> None:
        """Fold a worker process's per-name span aggregate into this one."""
        if count < 0 or total_s < 0:
            raise ObservabilityError(
                f"absorbed span aggregate for {name!r} must be non-negative, "
                f"got count={count}, total_s={total_s}"
            )
        entry = self._aggregate.setdefault(name, [0, 0.0])
        entry[0] += count
        entry[1] += total_s
        if self._emit is not None:
            self._emit(
                {
                    "type": "span_merge",
                    "name": name,
                    "count": count,
                    "total_s": round(total_s, 6),
                }
            )

    @property
    def open_depth(self) -> int:
        """How many spans are currently open (0 between phases)."""
        return len(self._stack)

    def aggregate(self) -> dict:
        """Per-name ``{count, total_s}``, keys sorted (JSON-stable)."""
        return {
            name: {"count": int(entry[0]), "total_s": entry[1]}
            for name, entry in sorted(self._aggregate.items())
        }

    def phase_totals(self) -> dict:
        """Wall seconds per top-level (depth-0) span name, sorted."""
        return {name: self._phase_totals[name] for name in sorted(self._phase_totals)}
