"""Reproducible run manifests.

A manifest is the "what produced these numbers" snapshot embedded in
every recorded event stream and BENCH payload: platform, interpreter
and numpy versions, CPU count, plus caller-supplied annotations (the
CLI command line, a scenario fingerprint) and the per-phase wall-time
table the span tracker measured.  Two BENCH files or event streams are
comparable exactly when their provenance blocks agree.
"""

from __future__ import annotations

import hashlib
import os
import platform
import sys
from typing import Mapping, Optional

__all__ = ["available_cpus", "machine_provenance", "run_manifest", "fingerprint"]


def available_cpus() -> int:
    """CPUs this process may actually run on (never less than 1).

    ``os.cpu_count()`` reports the machine, not the process: under
    cgroup/affinity limits (containers, ``taskset``) it overstates what
    a worker pool can use.  Prefer ``os.process_cpu_count()`` (Python
    3.13+), fall back to the scheduling affinity mask, then to
    ``os.cpu_count()``.  Every parallel-worker heuristic in the project
    (grid solves, sharded simulation) sizes off this number, so it
    lives here in the foundation layer.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    count = process_cpu_count() if process_cpu_count is not None else None
    if not count:
        sched_getaffinity = getattr(os, "sched_getaffinity", None)
        if sched_getaffinity is not None:
            try:
                count = len(sched_getaffinity(0))
            except OSError:
                count = None
    if not count:
        count = os.cpu_count()
    return max(int(count or 1), 1)


def machine_provenance() -> dict:
    """Host/toolchain identity: platform, CPUs, python/numpy versions."""
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "process_cpu_count": available_cpus(),
        "python": platform.python_version(),
        "implementation": sys.implementation.name,
        "numpy": numpy.__version__,
    }


def run_manifest(
    *,
    annotations: Optional[Mapping[str, object]] = None,
    phases: Optional[Mapping[str, float]] = None,
) -> dict:
    """The manifest dict a session emits at finalize.

    ``annotations`` are caller-supplied key/values (command, scenario
    fingerprint); ``phases`` is the per-top-level-span wall-time table.
    """
    manifest = {"provenance": machine_provenance()}
    if annotations:
        manifest["annotations"] = {str(k): v for k, v in sorted(annotations.items())}
    if phases is not None:
        manifest["phases"] = {k: round(v, 6) for k, v in sorted(phases.items())}
    return manifest


def fingerprint(obj: object) -> str:
    """Short stable content hash of an object's ``repr`` (scenario hash).

    ``repr`` of the library's frozen dataclasses (``Scenario``,
    strategies) is a complete value rendering, so equal configurations
    fingerprint equally across processes and sessions.
    """
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]
