"""Counters, gauges and fixed-bucket histograms.

The registry is the numeric half of the observability layer: named
monotone counters (requests served, cache hits), last-value gauges
(requests/s, regret of the latest epoch) and fixed-bucket histograms
(batch sizes).  Snapshots are plain sorted dicts so they serialize to
JSON deterministically, and :meth:`MetricsRegistry.merge` folds a
worker process's snapshot into the parent with well-defined semantics
(counters and histograms add; gauges take the merged value, so a
deterministic merge order yields a deterministic result).
"""

from __future__ import annotations

import bisect
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..errors import ObservabilityError

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds: one decade per bucket, wide
#: enough for request counts and batch sizes alike.  Values above the
#: last bound land in the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
)


def _require_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise ObservabilityError(f"metric name must be a non-empty string, got {name!r}")
    return name


class Counter:
    """A monotone sum (requests served, hits, stores failed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (add({amount}))"
            )
        self.value += amount


class Gauge:
    """A last-write-wins instantaneous value (rps, current regret)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value (last write wins, also on merge)."""
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution (batch sizes, per-point solve counts).

    ``bounds`` are inclusive upper edges in strictly increasing order;
    one implicit overflow bucket catches everything above the last
    bound.  Only the bucket counts, the observation count and the value
    sum are kept — constant memory regardless of observation volume.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket (inclusive upper edge)."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean observed value (0 when nothing was observed)."""
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric store with deterministic snapshot/merge semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create the named counter."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[_require_name(name)] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the named gauge."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[_require_name(name)] = Gauge(name)
        return metric

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get-or-create the named histogram.

        Re-requesting an existing histogram with *different* explicit
        bounds is a caller bug and raises; omitting ``bounds`` always
        returns the existing instrument.
        """
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[_require_name(name)] = Histogram(
                name, DEFAULT_BUCKETS if bounds is None else bounds
            )
        elif bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
            raise ObservabilityError(
                f"histogram {name!r} already registered with bounds "
                f"{metric.bounds}, requested {tuple(bounds)}"
            )
        return metric

    def snapshot(self) -> dict:
        """Plain-dict view of every metric, keys sorted (JSON-stable)."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram buckets add; gauges take the snapshot's
        value (so merging worker snapshots in a deterministic order —
        grid order, in the parallel sweep — gives a deterministic
        result).  Histogram bounds must agree.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, payload["bounds"])
            counts = payload["bucket_counts"]
            if len(counts) != len(histogram.bucket_counts):
                raise ObservabilityError(
                    f"histogram {name!r} merge has {len(counts)} buckets, "
                    f"expected {len(histogram.bucket_counts)}"
                )
            for i, c in enumerate(counts):
                histogram.bucket_counts[i] += c
            histogram.count += payload["count"]
            histogram.total += payload["total"]
