"""repro.obs — metrics + tracing observability for the reproduction.

The ROADMAP's production north-star needs the layer every cache-network
evaluation framework treats as table stakes: where does a figure sweep
(eqs. 2–8) spend its wall time, what is the Zipf memo hit rate of a
real run, how many requests did each service tier absorb.  This package
provides that layer without perturbing the numbers it observes:

- :mod:`repro.obs.registry` — counters, gauges and fixed-bucket
  histograms in a :class:`MetricsRegistry` with deterministic
  snapshot/merge semantics;
- :mod:`repro.obs.spans` — nested span tracing on the monotonic clock
  (``time.perf_counter``), aggregated per span name;
- :mod:`repro.obs.sinks` — pluggable event sinks: :class:`NullSink`
  (the near-zero-overhead default), :class:`JsonlSink` (one JSON event
  per line) and :class:`TextSummarySink` (human-readable summary on
  close);
- :mod:`repro.obs.manifest` — reproducible run manifests (platform,
  python/numpy versions, per-phase wall time);
- :mod:`repro.obs.session` — the ambient :class:`ObsSession`
  instrumented code records into, plus the per-process provider
  registry and the worker-snapshot merge used by parallel sweeps;
- :mod:`repro.obs.summary` — parsing + rendering of recorded event
  streams (backs ``repro obs summarize``).

Design rule: when no session is active (the default), every
instrumentation call dispatches to shared no-op singletons — the
instrumented hot paths stay within noise of their un-instrumented
speed (guarded by ``tests/obs/test_overhead.py``).

Usage::

    from repro import obs

    with obs.session(obs.JsonlSink("events.jsonl")) as s:
        simulator.run(workload, 1_000_000)   # records spans + counters
    # events.jsonl now renders with `repro obs summarize events.jsonl`

Layering: ``obs`` sits at the foundation next to ``errors`` (it imports
nothing else from ``repro``), so every layer — core, catalog,
simulation, adaptive, analysis, cli — may record into it.
"""

from __future__ import annotations

from .manifest import available_cpus, fingerprint, machine_provenance, run_manifest
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .session import (
    NULL_SESSION,
    ObsSession,
    get_session,
    register_provider,
    registered_providers,
    session,
)
from .sinks import JsonlSink, NullSink, Sink, TextSummarySink
from .spans import SpanHandle, SpanTracker
from .summary import read_events, render_summary, summarize_events

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SpanHandle",
    "SpanTracker",
    "Sink",
    "NullSink",
    "JsonlSink",
    "TextSummarySink",
    "ObsSession",
    "NULL_SESSION",
    "session",
    "get_session",
    "register_provider",
    "registered_providers",
    "available_cpus",
    "machine_provenance",
    "run_manifest",
    "fingerprint",
    "read_events",
    "summarize_events",
    "render_summary",
]
