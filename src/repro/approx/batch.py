"""Grid-scale batching of the Che approximation (``approx_batch``).

The dynamic-policy counterpart of :func:`repro.core.batch_solver.solve_batch`:
where that solver optimizes the paper's *analytical* objective (eq. 5)
over a :class:`~repro.core.batch_solver.ScenarioGrid`, this one predicts
the objective under a *real replacement policy* (LRU / Random / FIFO /
perfect-LFU) for every grid point and picks the best coordination level
on a shared level grid — the question that previously cost one dynamic
simulation per (point, level) pair.

Two structural facts make this fast:

1. The Che fixed points depend only on ``(s, N, c, n)`` — not on the
   objective weights ``α``/``γ``/``w`` — so a dense evaluation grid
   (which typically sweeps α/γ around few popularity/storage settings)
   collapses to a handful of *unique* cache solves shared by thousands
   of points.
2. Each solve runs on a log-rank quadrature of the catalog (exact unit
   bins over the head, geometric bins over the tail, bin-mean rates
   from the memoized eq. 1 prefix sums) rather than all ``N`` ranks —
   the occupancy sum ``Σ w_j h(λ_j T)`` varies slowly within a log bin.

The pooled-custodian model: at level ``ℓ`` every router keeps a local
partition of ``c·(1-ℓ)`` slots fed the full Zipf stream, and the ``n``
custodian partitions act as one aggregate cache of ``n·c·ℓ`` slots fed
the thinned miss stream ``p_i (1 - h_loc,i)`` — the large-``N`` limit of
:func:`repro.approx.network.solve_custodian`'s per-custodian solves
(each custodian's residue class of ranks is a ``1/n`` self-similar
sample of the catalog).  Tier fractions then combine with the grid's
``d0``/``d1``/``d2`` and eq. 3/4 cost exactly like the analytical
batch solver, so results are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.batch_solver import ScenarioGrid
from ..core.objective import combine_objective
from ..core.zipf import harmonic_numbers
from ..errors import ParameterError
from ..obs import get_session
from .che import POLICIES, hit_probabilities, solve_fixed_point

__all__ = [
    "ApproxBatchResult",
    "approx_batch",
    "DEFAULT_LEVEL_COUNT",
    "DEFAULT_QUADRATURE",
]

#: Default coordination-level grid resolution (ℓ = 0, 0.05, ..., 1).
DEFAULT_LEVEL_COUNT = 21

#: Default log-rank quadrature resolution; 512 bins keep the aggregate
#: hit-rate quadrature error below ~1e-4 across the Table IV ranges
#: while making each fixed-point solve O(512) instead of O(N).
DEFAULT_QUADRATURE = 512


@dataclass(frozen=True)
class ApproxBatchResult:
    """Best predicted coordination level per grid point (read-only arrays).

    The :class:`~repro.core.batch_solver.BatchStrategy` analogue for the
    approximation layer: ``level[i]``/``storage[i]`` are the best level
    ``ℓ`` on the evaluated grid and its per-router coordinated storage
    ``ℓ·c``; ``objective_value[i]`` is the eq. 4 blend at that level;
    ``latency[i]``/``origin_load[i]``/``local_fraction[i]``/
    ``peer_fraction[i]`` describe the predicted tier behaviour there;
    ``origin_gain``/``routing_gain`` are the §IV-E gains against the
    non-coordinated ``ℓ = 0`` baseline under the *same* policy.
    """

    policy: str
    levels: np.ndarray
    level: np.ndarray
    storage: np.ndarray
    objective_value: np.ndarray
    latency: np.ndarray
    origin_load: np.ndarray
    local_fraction: np.ndarray
    peer_fraction: np.ndarray
    origin_gain: np.ndarray
    routing_gain: np.ndarray
    iterations: int
    unique_solves: int

    def __len__(self) -> int:
        return int(self.level.size)

    def point_at(self, index: int) -> Mapping[str, float]:
        """Scalar view of one grid point (keys match the array fields)."""
        return {
            "level": float(self.level[index]),
            "storage": float(self.storage[index]),
            "objective_value": float(self.objective_value[index]),
            "latency": float(self.latency[index]),
            "origin_load": float(self.origin_load[index]),
            "local_fraction": float(self.local_fraction[index]),
            "peer_fraction": float(self.peer_fraction[index]),
            "origin_gain": float(self.origin_gain[index]),
            "routing_gain": float(self.routing_gain[index]),
        }


def _rank_quadrature(
    exponent: float, catalog_size: int, quadrature: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(edges, weights, rates)`` of the log-rank catalog quadrature.

    ``edges`` are integer rank-bin boundaries ``[1, ..., N+1]``;
    ``weights[j]`` counts the ranks of bin ``j`` and ``rates[j]`` is the
    bin's *mean* eq. 1 probability, so ``Σ w_j λ_j = 1`` exactly and the
    head bins (where geometric spacing is sub-integer) degenerate to
    exact per-rank bins.
    """
    if catalog_size <= quadrature:
        edges = np.arange(1, catalog_size + 2, dtype=np.int64)
    else:
        edges = np.unique(
            np.round(np.geomspace(1.0, catalog_size + 1.0, quadrature + 1))
        ).astype(np.int64)
        edges[0] = 1
        edges[-1] = catalog_size + 1
    prefix = harmonic_numbers(catalog_size, exponent)
    total = prefix[catalog_size]
    mass = (prefix[edges[1:] - 1] - prefix[edges[:-1] - 1]) / total
    weights = (edges[1:] - edges[:-1]).astype(np.float64)
    rates = mass / weights
    return edges, weights, rates


def _pinned_fraction(
    edges: np.ndarray, threshold_lo: float, threshold_hi: float
) -> np.ndarray:
    """Per-bin occupied fraction of a pinned rank band ``(lo, hi]``.

    The perfect-LFU hit vector: ranks in ``(threshold_lo, threshold_hi]``
    are cached with probability 1, and a threshold falling inside a bin
    covers it fractionally (rank-uniform within the bin).
    """
    starts = edges[:-1].astype(np.float64)
    ends = edges[1:].astype(np.float64)
    overlap = np.minimum(ends, threshold_hi + 1.0) - np.maximum(
        starts, threshold_lo + 1.0
    )
    return np.clip(overlap, 0.0, None) / (ends - starts)


def _tier_fractions(
    edges: np.ndarray,
    weights: np.ndarray,
    rates: np.ndarray,
    local_capacity: float,
    pooled_capacity: float,
    n_routers: float,
    policy: str,
) -> tuple[float, float, int]:
    """``(f_local, f_peer, iterations)`` of one unique (s, N, c, n, ℓ) cell.

    ``f_origin`` is recovered as ``1 - f_local - f_peer`` by the caller.
    """
    iterations = 0
    if policy == "perfect-lfu":
        h_local = _pinned_fraction(edges, 0.0, local_capacity)
    else:
        solved = solve_fixed_point(
            rates, local_capacity, policy=policy, weights=weights
        )
        iterations += solved.iterations
        h_local = hit_probabilities(rates, solved.value, policy=policy)
    miss = 1.0 - h_local
    if pooled_capacity > 0.0:
        if policy == "perfect-lfu":
            h_pool = _pinned_fraction(
                edges, local_capacity, local_capacity + pooled_capacity
            )
            # Renormalize: within the pinned band the local tier misses
            # everything, so the conditional pool hit probability is 1.
            with np.errstate(divide="ignore", invalid="ignore"):
                h_pool = np.where(miss > 0.0, np.minimum(h_pool / miss, 1.0), 0.0)
        else:
            solved = solve_fixed_point(
                rates * miss, pooled_capacity, policy=policy, weights=weights
            )
            iterations += solved.iterations
            h_pool = hit_probabilities(
                rates * miss, solved.value, policy=policy
            )
    else:
        h_pool = np.zeros_like(h_local)
    served = weights * rates
    f_local = float((served * (h_local + miss * h_pool / n_routers)).sum())
    f_peer = float(
        (served * miss * h_pool * (n_routers - 1.0) / n_routers).sum()
    )
    return f_local, f_peer, iterations


def approx_batch(
    grid: ScenarioGrid,
    *,
    policy: str = "lru",
    levels: Optional[Sequence[float]] = None,
    quadrature: int = DEFAULT_QUADRATURE,
) -> ApproxBatchResult:
    """Predict the best coordination level per grid point (module docstring).

    Parameters
    ----------
    grid:
        The Table IV parameter grid (same object the analytical batch
        solver consumes).
    policy:
        Replacement policy of every store: one of :data:`POLICIES`.
    levels:
        Coordination-level grid to evaluate; defaults to 21 uniform
        points on ``[0, 1]``.  ``ℓ = 0`` is always solved internally as
        the §IV-E gains baseline, whether or not it is on the grid.
    quadrature:
        Log-rank catalog quadrature resolution (≥ 16 bins).

    Reports an ``approx.batch`` span with point/solve counters and a
    points/s gauge to :mod:`repro.obs`.
    """
    if not isinstance(grid, ScenarioGrid):
        raise ParameterError(
            f"approx_batch needs a ScenarioGrid, got {type(grid).__name__}"
        )
    policy = policy.strip().lower()
    if policy not in POLICIES:
        raise ParameterError(
            f"unknown replacement policy {policy!r}; expected one of "
            f"{list(POLICIES)}"
        )
    if levels is None:
        level_grid = np.linspace(0.0, 1.0, DEFAULT_LEVEL_COUNT)
    else:
        level_grid = np.asarray(list(levels), dtype=np.float64)
        if level_grid.size == 0:
            raise ParameterError("need at least one coordination level")
        if np.any(~np.isfinite(level_grid)) or np.any(
            (level_grid < 0.0) | (level_grid > 1.0)
        ):
            raise ParameterError("coordination levels must lie in [0, 1]")
    if quadrature < 16:
        raise ParameterError(f"quadrature must be >= 16 bins, got {quadrature}")

    obs = get_session()
    with obs.span("approx.batch") as span:
        result = _approx_batch_impl(grid, policy, level_grid, quadrature)
    if obs.enabled:
        obs.counter("approx.batch.grids").add()
        obs.counter("approx.batch.points").add(len(grid))
        obs.counter("approx.batch.unique_solves").add(result.unique_solves)
        if span.duration_s > 0:
            obs.gauge("approx.batch.points_per_s").set(
                len(grid) / span.duration_s
            )
    return result


def _approx_batch_impl(
    grid: ScenarioGrid,
    policy: str,
    level_grid: np.ndarray,
    quadrature: int,
) -> ApproxBatchResult:
    derived = grid.derived()
    keys = np.stack(
        [grid.exponent, grid.catalog_size, grid.capacity, grid.n_routers],
        axis=1,
    )
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    n_unique = unique_keys.shape[0]
    n_levels = level_grid.size

    # Tier fractions per (unique cell, level), plus the ℓ = 0 baseline.
    f_local = np.zeros((n_unique, n_levels))
    f_peer = np.zeros((n_unique, n_levels))
    base_local = np.zeros(n_unique)
    iterations = 0
    unique_solves = 0
    quad_cache: dict[tuple[float, int], tuple] = {}
    for u in range(n_unique):
        s, n_catalog, capacity, n_routers = unique_keys[u]
        quad_key = (float(s), int(n_catalog))
        quad = quad_cache.get(quad_key)
        if quad is None:
            quad = quad_cache[quad_key] = _rank_quadrature(
                float(s), int(n_catalog), quadrature
            )
        edges, weights, rates = quad
        for l, level in enumerate(level_grid):
            loc, peer, its = _tier_fractions(
                edges,
                weights,
                rates,
                capacity * (1.0 - level),
                n_routers * capacity * level,
                n_routers,
                policy,
            )
            f_local[u, l] = loc
            f_peer[u, l] = peer
            iterations += its
            unique_solves += 1
        loc0, _, its = _tier_fractions(
            edges, weights, rates, capacity, 0.0, n_routers, policy
        )
        base_local[u] = loc0
        iterations += its
        unique_solves += 1
    f_origin = np.clip(1.0 - f_local - f_peer, 0.0, 1.0)

    # Scatter to points and combine with the eq. 2/3/4 coefficients.
    d0 = derived["d0"][:, None]
    d1 = derived["d1"][:, None]
    d2 = derived["d2"][:, None]
    p_local = f_local[inverse]
    p_peer = f_peer[inverse]
    p_origin = f_origin[inverse]
    latency = p_local * d0 + p_peer * d1 + p_origin * d2
    storage = level_grid[None, :] * grid.capacity[:, None]
    cost = derived["marginal_cost"][:, None] * storage + derived[
        "fixed_scaled"
    ][:, None]
    objective = combine_objective(grid.alpha[:, None], latency, cost)
    best = np.argmin(objective, axis=1)
    rows = np.arange(len(grid))

    base_origin = np.clip(1.0 - base_local, 0.0, 1.0)[inverse]
    base_latency = (
        base_local[inverse] * derived["d0"]
        + base_origin * derived["d2"]
    )
    best_origin = p_origin[rows, best]
    degenerate = base_origin <= 0.0
    origin_gain = np.where(
        degenerate,
        0.0,
        1.0 - best_origin / np.where(degenerate, 1.0, base_origin),
    )
    routing_gain = 1.0 - latency[rows, best] / base_latency

    arrays = dict(
        levels=np.array(level_grid),
        level=level_grid[best],
        storage=storage[rows, best],
        objective_value=objective[rows, best],
        latency=latency[rows, best],
        origin_load=best_origin,
        local_fraction=p_local[rows, best],
        peer_fraction=p_peer[rows, best],
        origin_gain=origin_gain,
        routing_gain=routing_gain,
    )
    for arr in arrays.values():
        arr.flags.writeable = False
    return ApproxBatchResult(
        policy=policy,
        iterations=iterations,
        unique_solves=unique_solves,
        **arrays,
    )
