"""``repro.approx`` — Che/TTL networks-of-caches approximation layer.

The fidelity-vs-speed tier between the closed-form analytical model
(:mod:`repro.core`) and the dynamic simulators
(:mod:`repro.simulation`): per-cache Che characteristic-time fixed
points (LRU, and the Random/FIFO variants of Gallo et al.) composed
over a topology by miss-stream thinning.  Answers dynamic-policy
questions — LRU/Random hit rates, where the optimum coordination level
lands under real replacement — in milliseconds instead of full
simulation runs, within the error bands documented in DESIGN.md §15.

Module map: :mod:`.che` (single-cache fixed points), :mod:`.network`
(topology-aware custodian / en-route solvers), :mod:`.batch`
(grid-scale ``approx_batch``), :mod:`.metrics` (the
``SimulationMetrics``-shaped output type).  The cross-validation
harness lives in :mod:`repro.analysis.crossval`, above the simulation
layer.
"""

from .batch import (
    DEFAULT_LEVEL_COUNT,
    DEFAULT_QUADRATURE,
    ApproxBatchResult,
    approx_batch,
)
from .che import (
    MAX_FIXED_POINT_ITERATIONS,
    OCCUPANCY_TOLERANCE,
    POLICIES,
    CharacteristicTime,
    approx_memo_stats,
    characteristic_time,
    clear_approx_caches,
    hit_probabilities,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from .metrics import FRACTION_TOLERANCE, ApproxMetrics
from .network import (
    ApproxSolution,
    LevelCurve,
    OriginSpec,
    level_curve,
    solve_custodian,
    solve_en_route,
)

__all__ = [
    "POLICIES",
    "OCCUPANCY_TOLERANCE",
    "MAX_FIXED_POINT_ITERATIONS",
    "DEFAULT_LEVEL_COUNT",
    "DEFAULT_QUADRATURE",
    "FRACTION_TOLERANCE",
    "ApproxBatchResult",
    "ApproxMetrics",
    "ApproxSolution",
    "CharacteristicTime",
    "LevelCurve",
    "OriginSpec",
    "approx_batch",
    "approx_memo_stats",
    "characteristic_time",
    "clear_approx_caches",
    "hit_probabilities",
    "level_curve",
    "solve_custodian",
    "solve_en_route",
    "solve_fixed_point",
    "solve_fixed_point_batch",
]
