"""Che/TTL characteristic-time fixed points (networks-of-caches layer).

The paper's analytical model (eqs. 5-7) covers only provisioned
placements; the *dynamic* replacement policies it simulates (LRU,
Random, FIFO) admit a classical approximation instead of a closed form:
Che's characteristic time.  A cache of capacity ``C`` serving IRM
arrivals with per-content rates ``λ_i`` behaves like a TTL cache whose
timer ``T_C`` solves the occupancy fixed point

.. math::

    \\sum_i h_i(λ_i T_C) = C,

where the per-policy hit probability is

- **LRU** (Che & Tung):      ``h_i = 1 - exp(-λ_i T_C)``,
- **Random/FIFO** (Gallo et al., "Performance Evaluation of the Random
  Replacement Policy for Networks of Caches", see PAPERS.md):
  ``h_i = λ_i T_C / (1 + λ_i T_C)`` — under IRM the FIFO and Random
  eviction chains have the same stationary occupancy, so both map to
  the same formula,
- **perfect-LFU**: the degenerate limit — the top-``C`` contents are
  pinned, exactly the provisioned steady state of the paper's model.

``Σ_i h_i`` is continuous and strictly increasing in ``T_C`` wherever
some rate is positive, so the root is unique; :func:`solve_fixed_point`
finds it with a damped Newton iteration safeguarded by a maintained
bisection bracket, vectorized over the whole catalog (and, in the
``_batch`` variant, over whole scenario grids at once).

All formulas are scale-invariant in the rates (only the products
``λ_i·T_C`` matter), so callers may pass unnormalized rate vectors;
the returned ``T_C`` is then expressed in the reciprocal unit.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.validation import require_finite
from ..core.zipf import register_zipf_cache_clearer, validate_exponent, zipf_tables
from ..errors import ConvergenceError, ParameterError
from ..obs import get_session, register_provider

__all__ = [
    "POLICIES",
    "CharacteristicTime",
    "hit_probabilities",
    "solve_fixed_point",
    "solve_fixed_point_batch",
    "characteristic_time",
    "approx_memo_stats",
    "clear_approx_caches",
]

#: Replacement policies with a Che/TTL hit-probability form.  ``fifo``
#: aliases ``random`` (identical stationary occupancy under IRM);
#: ``perfect-lfu`` is handled as the pinned top-``C`` limit without a
#: timer.  In-cache ``lfu`` has no stationary TTL description (its state
#: depends on the full request history), so it is rejected.
POLICIES = ("lru", "random", "fifo", "perfect-lfu")

#: Convergence thresholds of the occupancy fixed point: the residual
#: ``|Σh - C|`` must drop below ``OCCUPANCY_TOLERANCE`` (absolute, in
#: cache slots) within ``MAX_FIXED_POINT_ITERATIONS`` damped-Newton
#: steps.  40 doubling steps bracket any representable root, and Newton
#: then converges quadratically, so the cap is generous.
OCCUPANCY_TOLERANCE = 1e-9
MAX_FIXED_POINT_ITERATIONS = 200

#: Memoized characteristic times keyed
#: ``(policy, exponent, catalog_size, capacity)`` — pure derived values
#: of the eq. 1 tables, so :func:`repro.core.zipf.clear_zipf_caches`
#: clears this memo too (registered below).
_CHARACTERISTIC_CACHE: "OrderedDict[tuple, float]" = OrderedDict()
_CHARACTERISTIC_CACHE_MAX = 512

_MEMO_STATS = {"hits": 0, "misses": 0}


def clear_approx_caches() -> None:
    """Drop the characteristic-time memo (and reset its counters)."""
    _CHARACTERISTIC_CACHE.clear()
    _MEMO_STATS["hits"] = 0
    _MEMO_STATS["misses"] = 0


def approx_memo_stats() -> dict:
    """Hit/miss statistics of the characteristic-time memo."""
    return {
        "hits": _MEMO_STATS["hits"],
        "misses": _MEMO_STATS["misses"],
        "entries": len(_CHARACTERISTIC_CACHE),
    }


def _approx_obs_provider() -> dict:
    """Obs provider: the fixed-point memo counters as per-process values."""
    stats = approx_memo_stats()
    return {
        "approx.memo.hits": stats["hits"],
        "approx.memo.misses": stats["misses"],
    }


register_provider("approx", _approx_obs_provider)
register_zipf_cache_clearer(clear_approx_caches)


def _validate_policy(policy: str) -> str:
    policy = policy.strip().lower()
    if policy not in POLICIES:
        raise ParameterError(
            f"no characteristic-time form for policy {policy!r}; "
            f"expected one of {POLICIES} (in-cache 'lfu' has no "
            f"stationary TTL description — use 'perfect-lfu')"
        )
    return policy


@dataclass(frozen=True)
class CharacteristicTime:
    """One solved occupancy fixed point.

    Attributes
    ----------
    value:
        The characteristic time ``T_C`` in reciprocal rate units
        (``0`` for an empty cache, ``inf`` when the cache holds the
        whole support).
    policy:
        The replacement policy the hit form belongs to.
    capacity:
        The occupancy target ``C`` the root satisfies.
    iterations:
        Damped-Newton steps spent (0 on the degenerate branches).
    residual:
        ``|Σ_i h_i(λ_i T_C) - C|`` at the returned root.
    """

    value: float
    policy: str
    capacity: float
    iterations: int
    residual: float


def hit_probabilities(
    rates: np.ndarray, t_c: float, *, policy: str = "lru"
) -> np.ndarray:
    """Per-content hit probabilities ``h_i(λ_i T_C)`` for one cache.

    Implements the Che (LRU) and Gallo et al. (Random/FIFO) forms
    quoted in the module docstring (see PAPERS.md); ``perfect-lfu``
    has no timer and is resolved by rank in the callers.
    """
    policy = _validate_policy(policy)
    if policy == "perfect-lfu":
        raise ParameterError(
            "perfect-lfu pins the top-C contents and has no characteristic "
            "time; resolve its hit vector by rank instead"
        )
    rates = np.asarray(rates, dtype=np.float64)
    if np.any(rates < 0.0) or np.any(~np.isfinite(rates)):
        raise ParameterError("arrival rates must be finite and non-negative")
    if t_c < 0.0:
        raise ParameterError(f"characteristic time must be non-negative, got {t_c}")
    if math.isinf(t_c):
        return np.where(rates > 0.0, 1.0, 0.0)
    x = rates * t_c
    if policy == "lru":
        return -np.expm1(-x)
    return x / (1.0 + x)


def _occupancy(
    x: np.ndarray, weights: Optional[np.ndarray], policy: str, axis: int = -1
) -> np.ndarray:
    """``Σ_i w_i h_i`` and its derivative factor input ``x = λ_i T``."""
    if policy == "lru":
        h = -np.expm1(-x)
    else:
        h = x / (1.0 + x)
    if weights is not None:
        h = h * weights
    return h.sum(axis=axis)


def _occupancy_slope(
    x: np.ndarray,
    rates: np.ndarray,
    weights: Optional[np.ndarray],
    policy: str,
    axis: int = -1,
) -> np.ndarray:
    """``d/dT Σ_i w_i h_i(λ_i T)`` evaluated at ``x = λ_i T``."""
    if policy == "lru":
        slope = rates * np.exp(-x)
    else:
        slope = rates / (1.0 + x) ** 2
    if weights is not None:
        slope = slope * weights
    return slope.sum(axis=axis)


def solve_fixed_point(
    rates: np.ndarray,
    capacity: float,
    *,
    policy: str = "lru",
    weights: Optional[np.ndarray] = None,
    tolerance: float = OCCUPANCY_TOLERANCE,
    max_iterations: int = MAX_FIXED_POINT_ITERATIONS,
) -> CharacteristicTime:
    """Solve ``Σ_i w_i h_i(λ_i T) = C`` for one cache (module docstring).

    Parameters
    ----------
    rates:
        Per-content arrival rates ``λ_i`` (any non-negative scale).
    capacity:
        Target occupancy ``C >= 0`` in slots; clamped branches handle
        ``C = 0`` (empty, ``T = 0``) and ``C >=`` the weighted support
        size (everything cached, ``T = inf``).
    policy:
        ``"lru"`` / ``"random"`` / ``"fifo"`` (see :data:`POLICIES`).
    weights:
        Optional per-entry multiplicities (the quadrature path of the
        batched grid solver); ``None`` means unit weight per content.
    tolerance / max_iterations:
        Residual target and damped-Newton step cap; a bracket that
        fails to converge raises :class:`~repro.errors.ConvergenceError`.
    """
    policy = _validate_policy(policy)
    if policy == "perfect-lfu":
        raise ParameterError(
            "perfect-lfu has no occupancy fixed point; its hit vector is "
            "the top-C indicator"
        )
    capacity = require_finite(capacity, "cache capacity")
    if capacity < 0.0:
        raise ParameterError(f"cache capacity must be non-negative, got {capacity}")
    rates = np.asarray(rates, dtype=np.float64)
    if rates.ndim != 1:
        raise ParameterError(f"rates must be a 1-D vector, got shape {rates.shape}")
    if np.any(rates < 0.0) or np.any(~np.isfinite(rates)):
        raise ParameterError("arrival rates must be finite and non-negative")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != rates.shape:
            raise ParameterError(
                f"weights shape {weights.shape} does not match rates "
                f"shape {rates.shape}"
            )
        if np.any(weights < 0.0) or np.any(~np.isfinite(weights)):
            raise ParameterError("weights must be finite and non-negative")
    active = rates > 0.0
    support = (
        float(np.count_nonzero(active))
        if weights is None
        else float(weights[active].sum())
    )
    if capacity <= 0.0:
        return CharacteristicTime(0.0, policy, capacity, 0, capacity)
    if capacity >= support:
        # Everything with positive rate fits: the timer never expires.
        return CharacteristicTime(
            math.inf, policy, capacity, 0, abs(support - capacity)
        )
    total_rate = (
        float(rates.sum()) if weights is None else float((rates * weights).sum())
    )
    # Small-T linearization Σwh ≈ T·Σwλ underestimates the root for both
    # concave hit forms, so it seeds the lower bracket edge; doubling
    # finds the upper edge.
    t_lo, t_hi = 0.0, capacity / total_rate
    for _ in range(1024):
        if _occupancy(rates * t_hi, weights, policy) >= capacity:
            break
        t_lo = t_hi
        t_hi *= 2.0
    t = 0.5 * (t_lo + t_hi)
    iterations = 0
    residual = math.inf
    for iterations in range(1, max_iterations + 1):
        x = rates * t
        g = _occupancy(x, weights, policy) - capacity
        residual = abs(float(g))
        if residual <= tolerance:
            break
        if g > 0.0:
            t_hi = t
        else:
            t_lo = t
        slope = float(_occupancy_slope(x, rates, weights, policy))
        step = t - g / slope if slope > 0.0 else math.nan
        # Damping: fall back to the bracket midpoint whenever Newton
        # leaves the bracket (or the slope degenerates).
        t = step if t_lo < step < t_hi else 0.5 * (t_lo + t_hi)
    else:
        raise ConvergenceError(
            f"characteristic-time fixed point did not reach |residual| <= "
            f"{tolerance} within {max_iterations} iterations "
            f"(policy {policy!r}, C={capacity}, residual={residual:.3e})"
        )
    obs = get_session()
    if obs.enabled:
        obs.counter("approx.fixed_point.iterations").add(iterations)
        obs.counter("approx.fixed_point.solves").add()
        obs.gauge("approx.fixed_point.residual").set(residual)
    return CharacteristicTime(float(t), policy, capacity, iterations, residual)


def solve_fixed_point_batch(
    rates: np.ndarray,
    capacities: np.ndarray,
    *,
    policy: str = "lru",
    weights: Optional[np.ndarray] = None,
    tolerance: float = OCCUPANCY_TOLERANCE,
    max_iterations: int = MAX_FIXED_POINT_ITERATIONS,
) -> tuple[np.ndarray, int, np.ndarray]:
    """Vectorized :func:`solve_fixed_point` over a stack of caches.

    ``rates`` has shape ``(P, K)`` — one row of per-content arrival
    rates per cache — and ``capacities`` shape ``(P,)``.  All rows
    iterate in lock step (a converged row simply stops moving), exactly
    like the batched bisection loops of
    :mod:`repro.core.batch_solver`.  Returns ``(T, iterations,
    residuals)`` where ``T[p]`` may be ``0``/``inf`` on the degenerate
    branches and ``iterations`` counts the shared damped-Newton sweeps.
    """
    policy = _validate_policy(policy)
    if policy == "perfect-lfu":
        raise ParameterError(
            "perfect-lfu has no occupancy fixed point; its hit vector is "
            "the top-C indicator"
        )
    rates = np.asarray(rates, dtype=np.float64)
    if rates.ndim != 2:
        raise ParameterError(f"rates must be (P, K), got shape {rates.shape}")
    capacities = np.asarray(capacities, dtype=np.float64)
    if capacities.shape != (rates.shape[0],):
        raise ParameterError(
            f"capacities shape {capacities.shape} does not match "
            f"{rates.shape[0]} rate rows"
        )
    if np.any(rates < 0.0) or np.any(~np.isfinite(rates)):
        raise ParameterError("arrival rates must be finite and non-negative")
    if np.any(capacities < 0.0) or np.any(~np.isfinite(capacities)):
        raise ParameterError("capacities must be finite and non-negative")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != rates.shape:
            raise ParameterError(
                f"weights shape {weights.shape} does not match rates "
                f"shape {rates.shape}"
            )
    support = (
        (rates > 0.0).sum(axis=1).astype(np.float64)
        if weights is None
        else np.where(rates > 0.0, weights, 0.0).sum(axis=1)
    )
    t = np.zeros(rates.shape[0], dtype=np.float64)
    empty = capacities <= 0.0
    full = ~empty & (capacities >= support)
    t[full] = np.inf
    solving = ~(empty | full)
    residuals = np.zeros(rates.shape[0], dtype=np.float64)
    residuals[full] = np.abs(support[full] - capacities[full])
    iterations = 0
    if np.any(solving):
        total_rate = (
            rates.sum(axis=1) if weights is None else (rates * weights).sum(axis=1)
        )
        t_lo = np.zeros(rates.shape[0], dtype=np.float64)
        t_hi = np.where(solving, capacities / np.where(solving, total_rate, 1.0), 1.0)
        for _ in range(1024):
            occ = _occupancy(rates * t_hi[:, None], weights, policy)
            grow = solving & (occ < capacities)
            if not np.any(grow):
                break
            t_lo[grow] = t_hi[grow]
            t_hi[grow] *= 2.0
        t_mid = 0.5 * (t_lo + t_hi)
        t[solving] = t_mid[solving]
        pending = solving.copy()
        for iterations in range(1, max_iterations + 1):
            x = rates * t[:, None]
            g = _occupancy(x, weights, policy) - capacities
            res = np.abs(g)
            residuals[pending] = res[pending]
            pending &= res > tolerance
            if not np.any(pending):
                break
            above = pending & (g > 0.0)
            below = pending & (g <= 0.0)
            t_hi[above] = t[above]
            t_lo[below] = t[below]
            slope = _occupancy_slope(x, rates, weights, policy)
            with np.errstate(divide="ignore", invalid="ignore"):
                step = t - g / slope
            inside = (slope > 0.0) & (t_lo < step) & (step < t_hi)
            t = np.where(
                pending, np.where(inside, step, 0.5 * (t_lo + t_hi)), t
            )
        else:
            raise ConvergenceError(
                f"batched characteristic-time solve left "
                f"{int(pending.sum())} of {rates.shape[0]} caches above "
                f"|residual| = {tolerance} after {max_iterations} iterations"
            )
    obs = get_session()
    if obs.enabled:
        obs.counter("approx.fixed_point.iterations").add(iterations)
        obs.counter("approx.fixed_point.solves").add(int(rates.shape[0]))
        obs.gauge("approx.fixed_point.residual").set(float(residuals.max()))
    return t, iterations, residuals


def characteristic_time(
    exponent: float,
    catalog_size: int,
    capacity: float,
    *,
    policy: str = "lru",
) -> float:
    """Memoized ``T_C`` of one cache under exact Zipf(``s``, ``N``) IRM.

    The arrival vector is the discrete eq. 1 pmf served read-only from
    the :func:`repro.core.zipf.zipf_tables` memo (``s = 1`` included —
    the discrete tables carry the singularity exactly, no eq. 6
    continuous approximation involved), so ``T_C`` is expressed in
    units of mean inter-request time.  Results are memoized per
    ``(policy, s, N, C)``; :func:`repro.core.zipf.clear_zipf_caches`
    clears this memo along with the tables it derives from.
    """
    policy = _validate_policy(policy)
    exponent = validate_exponent(exponent, allow_one=True)
    capacity = require_finite(capacity, "cache capacity")
    if capacity < 0.0:
        raise ParameterError(f"cache capacity must be non-negative, got {capacity}")
    key = (policy, exponent, int(catalog_size), capacity)
    cached = _CHARACTERISTIC_CACHE.get(key)
    if cached is not None:
        _MEMO_STATS["hits"] += 1
        _CHARACTERISTIC_CACHE.move_to_end(key)
        return cached
    _MEMO_STATS["misses"] += 1
    pmf, _ = zipf_tables(exponent, catalog_size)
    if policy == "perfect-lfu":
        raise ParameterError(
            "perfect-lfu has no characteristic time; its hit vector is "
            "the top-C indicator"
        )
    solved = solve_fixed_point(pmf, capacity, policy=policy)
    self_cache = _CHARACTERISTIC_CACHE
    self_cache[key] = solved.value
    while len(self_cache) > _CHARACTERISTIC_CACHE_MAX:
        self_cache.popitem(last=False)
    return solved.value
