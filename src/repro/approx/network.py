"""Networks-of-caches approximation over a concrete topology.

Extends the single-cache fixed points of :mod:`.che` to the two network
shapes this reproduction simulates, by *miss-stream thinning*: a cache
fed per-content rates ``λ_i`` forwards the thinned stream
``λ_i (1 - h_i)`` to the next cache on the request path (Gallo et al.;
Paschos et al. — see PAPERS.md).

- :func:`solve_custodian` mirrors
  :class:`repro.simulation.simulator.DynamicSimulator`'s coordination
  semantics exactly: every router's store splits into a local partition
  (capacity ``c - round(ℓ·c)``) fed the full client Zipf stream, and a
  hash-custodian partition (``round(ℓ·c)``) fed the *aggregated* local
  misses of every router for the ranks it custodies
  (``custodian(rank) = nodes[rank mod n]``).  Because the dynamic
  kernel admits on every miss, the local tier feels the full IRM
  stream regardless of downstream state — the sweep therefore
  converges in one local-then-custodian pass.

- :func:`solve_en_route` models the paper's en-route hierarchy: each
  client's requests walk its shortest path toward the origin gateway,
  each node caching what passes through it (one undivided store per
  node).  Per-node aggregated arrival rates are recomputed from the
  thinned streams of the downstream caches and the whole leaf→origin
  sweep repeats until the hit vectors stop moving — the fixed point of
  a DAG composition, reached within (diameter + 1) sweeps.

Layering note: ``approx`` sits beside ``core`` in the architecture DAG
(imports ``core``/``topology``/``obs``/``errors`` only), so it cannot
reuse :class:`repro.simulation.routing.NearestReplicaRouter`.  Instead
:func:`_path_matrices` replicates that class's per-pair accumulation
(hops *and* latency along the same metric-chosen paths, pair overhead
on non-self pairs) and :class:`OriginSpec` is attribute-compatible with
``simulation.routing.OriginModel`` — the ``origin`` parameter accepts
either, and the cross-validation suite asserts the accounting agrees.

Both solvers return an :class:`~repro.approx.metrics.ApproxMetrics`
whose hop/latency accounting therefore matches what the simulators
charge; see ``tests/approx/test_cross_validation.py`` and DESIGN.md §15
for the measured error bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

import networkx as nx
import numpy as np

from ..core.validation import require_capacity, require_probability
from ..core.zipf import validate_exponent, zipf_tables
from ..errors import ConvergenceError, ParameterError, TopologyError
from ..obs import get_session
from ..topology.graph import Topology
from .che import hit_probabilities, solve_fixed_point
from .metrics import ApproxMetrics

__all__ = [
    "ApproxSolution",
    "LevelCurve",
    "OriginSpec",
    "solve_custodian",
    "solve_en_route",
    "level_curve",
]

NodeId = Hashable

#: Sweep limits of the en-route fixed point: the composition is a DAG
#: of depth <= the topology diameter, so the Jacobi iteration is exact
#: after (depth + 1) sweeps — 64 covers any reproduction topology.
MAX_SWEEPS = 64
SWEEP_TOLERANCE = 1e-12


@dataclass(frozen=True)
class OriginSpec:
    """Origin placement: gateway router plus the beyond-gateway leg.

    Attribute-compatible with
    :class:`repro.simulation.routing.OriginModel` (same field names and
    defaults), so either type can be passed wherever the solvers take
    an ``origin`` — without ``approx`` importing the simulation layer.
    """

    gateway: NodeId
    extra_hops: float = 1.0
    extra_latency_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.extra_hops < 0:
            raise ParameterError(
                f"origin extra hops must be non-negative, got {self.extra_hops}"
            )
        if self.extra_latency_ms < 0:
            raise ParameterError(
                f"origin extra latency must be non-negative, "
                f"got {self.extra_latency_ms}"
            )


@dataclass(frozen=True)
class ApproxSolution:
    """One solved network approximation.

    Attributes
    ----------
    mode:
        ``"custodian"`` (the dynamic simulator's coordination shape) or
        ``"en-route"`` (the paper's hierarchical shape).
    policy / level:
        Replacement policy and coordination level ``ℓ`` the solution
        describes (``level`` is 0 for en-route solutions).
    metrics:
        The predicted per-tier fractions and mean fetch costs.
    iterations:
        Total fixed-point iterations across every per-cache solve,
        plus (en-route) the number of whole-network sweeps.
    residual:
        Worst absolute occupancy residual ``|Σh - C|`` across caches.
    characteristic_times:
        The solved ``T_C`` per cache — ``(local, custodian_0, ...)``
        for custodian mode, one per topology node for en-route
        (``inf`` marks a cache holding its whole arrival support,
        ``nan`` marks pinned perfect-LFU stores with no timer).
    """

    mode: str
    policy: str
    level: float
    metrics: ApproxMetrics
    iterations: int
    residual: float
    characteristic_times: tuple[float, ...]


@dataclass(frozen=True)
class LevelCurve:
    """The predicted ``T(ℓ)`` curve: one solution per coordination level."""

    levels: tuple[float, ...]
    solutions: tuple[ApproxSolution, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.solutions):
            raise ParameterError(
                f"level curve has {len(self.levels)} levels but "
                f"{len(self.solutions)} solutions"
            )

    def latencies_ms(self) -> tuple[float, ...]:
        """``T(ℓ)`` — mean fetch latency per level."""
        return tuple(s.metrics.mean_latency_ms for s in self.solutions)

    def mean_hops(self) -> tuple[float, ...]:
        """Mean fetch hops per level."""
        return tuple(s.metrics.mean_hops for s in self.solutions)

    def origin_loads(self) -> tuple[float, ...]:
        """Origin-served fraction per level (Table I row 1)."""
        return tuple(s.metrics.origin_load for s in self.solutions)


def _path_matrices(
    topology: Topology, metric: str
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair ``(hops, latency_ms)`` along the metric's shortest paths.

    Replicates ``NearestReplicaRouter._path_matrices`` operation for
    operation: both matrices describe the *same* path per pair (chosen
    by hop count or Dijkstra latency), and ``pair_overhead_ms`` is
    added to every non-self latency.
    """
    n = topology.n_routers
    hops = np.zeros((n, n), dtype=np.float64)
    latency = np.zeros((n, n), dtype=np.float64)
    graph = topology.graph
    if metric == "hops":
        paths_iter = nx.all_pairs_shortest_path(graph)
    else:
        paths_iter = nx.all_pairs_dijkstra_path(graph, weight="latency_ms")
    for source, paths in paths_iter:
        i = topology.index_of(source)
        for target, path in paths.items():
            j = topology.index_of(target)
            hops[i, j] = len(path) - 1
            latency[i, j] = sum(
                graph.edges[path[k], path[k + 1]]["latency_ms"]
                for k in range(len(path) - 1)
            )
    if topology.pair_overhead_ms > 0:
        latency += topology.pair_overhead_ms * (1.0 - np.eye(n))
    return hops, latency


def _resolve_network(
    topology: Topology, origin: Optional[OriginSpec], metric: str
) -> tuple[np.ndarray, np.ndarray, int, float, float]:
    """``(hops_m, lat_m, gateway_idx, extra_hops, extra_latency_ms)``.

    Defaults follow ``NearestReplicaRouter``: with no explicit origin,
    the gateway is the router minimizing the summed hop distance to all
    others (first index on ties) and the origin sits one hop / 50 ms
    beyond it.  ``origin`` may be an :class:`OriginSpec` or any object
    with the same attributes (e.g. ``simulation.routing.OriginModel``).
    """
    if metric not in ("hops", "latency"):
        raise ParameterError(
            f"metric must be 'hops' or 'latency', got {metric!r}"
        )
    hops_m, lat_m = _path_matrices(topology, metric)
    if origin is None:
        gateway = topology.nodes[int(np.argmin(hops_m.sum(axis=1)))]
        origin = OriginSpec(gateway=gateway)
    if origin.gateway not in topology.nodes:
        raise TopologyError(
            f"origin gateway {origin.gateway!r} is not a router of "
            f"{topology.name!r}"
        )
    return (
        hops_m,
        lat_m,
        topology.index_of(origin.gateway),
        float(origin.extra_hops),
        float(origin.extra_latency_ms),
    )


def _hit_vector(
    rates: np.ndarray,
    capacity: float,
    policy: str,
) -> tuple[np.ndarray, float, int, float]:
    """``(h, T_C, iterations, residual)`` for one cache of the network.

    ``perfect-lfu`` pins the ``capacity`` highest-rate contents (ties
    broken by index, matching the deterministic frequency order the
    dynamic kernel converges to); the timer policies go through the
    Che fixed point.
    """
    if policy == "perfect-lfu":
        h = np.zeros_like(rates)
        k = int(round(capacity))
        positive = np.flatnonzero(rates > 0.0)
        if k > 0 and positive.size:
            order = positive[np.argsort(-rates[positive], kind="stable")]
            h[order[:k]] = 1.0
        return h, float("nan"), 0, 0.0
    solved = solve_fixed_point(rates, capacity, policy=policy)
    return (
        hit_probabilities(rates, solved.value, policy=policy),
        solved.value,
        solved.iterations,
        solved.residual,
    )


def _validate_common(
    topology: Topology, capacity: int, policy: str, exponent: float, catalog_size: int
) -> tuple[int, str, float]:
    if int(capacity) != capacity or capacity < 1:
        raise ParameterError(f"capacity must be a positive integer, got {capacity}")
    policy = policy.strip().lower()
    exponent = validate_exponent(exponent, allow_one=True)
    if int(catalog_size) != catalog_size or catalog_size < topology.n_routers:
        raise ParameterError(
            f"catalog size must be an integer >= the router count "
            f"({topology.n_routers}), got {catalog_size}"
        )
    return int(capacity), policy, exponent


def solve_custodian(
    topology: Topology,
    *,
    capacity: int,
    coordination_level: float = 0.0,
    policy: str = "lru",
    exponent: float = 0.8,
    catalog_size: int = 10_000,
    origin: Optional[OriginSpec] = None,
    metric: str = "hops",
) -> ApproxSolution:
    """Approximate :class:`~repro.simulation.simulator.DynamicSimulator`.

    Same constructor surface as the simulator (module docstring has the
    model); clients are uniform IRM sources as in
    :class:`~repro.catalog.workload.IRMWorkload`.  The request flow per
    content ``i`` with custodian ``k``, local hit probability
    ``h_loc(i)`` (identical across routers — every local partition sees
    the same Zipf stream) and custodian hit probability ``h_k(i)``:

    - served locally with ``h_loc + (1/n)(1-h_loc)·h_k`` (the second
      term: the custodian's own clients find coordinated copies during
      the *local* lookup, which the simulator counts as a LOCAL hit);
    - served by the custodian peer with ``(1-1/n)(1-h_loc)·h_k``;
    - otherwise fetched from the origin *via the custodian's path*
      (``ℓ > 0``) or directly (``ℓ = 0``) — the simulator's exact
      charging.
    """
    capacity, policy, exponent = _validate_common(
        topology,
        int(require_capacity(capacity, integer=True)),
        policy,
        validate_exponent(exponent, allow_one=True),
        catalog_size,
    )
    coordination_level = require_probability(
        float(coordination_level), "coordination level"
    )
    obs = get_session()
    with obs.span("approx.solve"):
        hops_m, lat_m, gateway_idx, extra_hops, extra_lat = _resolve_network(
            topology, origin, metric
        )
        n = topology.n_routers
        coordinated_slots = int(round(coordination_level * capacity))
        local_slots = capacity - coordinated_slots
        pmf, _ = zipf_tables(exponent, int(catalog_size))

        iterations = 0
        residual = 0.0
        times = []
        if local_slots > 0:
            h_loc, t_loc, its, res = _hit_vector(pmf, float(local_slots), policy)
            iterations += its
            residual = max(residual, res)
            times.append(t_loc)
        else:
            h_loc = np.zeros_like(pmf)
            times.append(0.0)

        # Custodian tier: rank r (1-based) belongs to nodes[r mod n], so
        # content index i = r - 1 maps to custodian (i + 1) mod n.
        custodian_of = (np.arange(1, int(catalog_size) + 1) % n).astype(np.int64)
        h_coord = np.zeros_like(pmf)
        if coordinated_slots > 0:
            miss_rates = pmf * (1.0 - h_loc)
            for j in range(n):
                assigned = np.flatnonzero(custodian_of == j)
                h_j, t_j, its, res = _hit_vector(
                    miss_rates[assigned], float(coordinated_slots), policy
                )
                h_coord[assigned] = h_j
                iterations += its
                residual = max(residual, res)
                times.append(t_j)

        # Tier probabilities per content (docstring derivation).
        miss_local = 1.0 - h_loc
        p_local = pmf * (h_loc + miss_local * h_coord / n)
        p_peer = pmf * miss_local * h_coord * (n - 1) / n
        p_origin = pmf * miss_local * (1.0 - h_coord)

        og_hops = hops_m[:, gateway_idx] + extra_hops
        og_lat = lat_m[:, gateway_idx] + extra_lat
        if n > 1:
            # Mean client→custodian distance over the n-1 remote clients
            # (diagonals are zero, so the full column sum works).
            peer_hops = hops_m.sum(axis=0) / (n - 1)
            peer_lat = lat_m.sum(axis=0) / (n - 1)
        else:
            peer_hops = np.zeros(1)
            peer_lat = np.zeros(1)

        # Aggregate the per-content masses per custodian, then charge
        # the custodian-specific distances (one dot product per tier).
        peer_mass = np.bincount(custodian_of, weights=p_peer, minlength=n)
        origin_mass = np.bincount(custodian_of, weights=p_origin, minlength=n)
        total_peer = float(p_peer.sum())
        total_origin = float(p_origin.sum())
        total_local = float(p_local.sum())
        mean_hops = float(peer_mass @ peer_hops)
        mean_lat = float(peer_mass @ peer_lat)
        if coordinated_slots > 0:
            # Origin fetches route via the custodian: its own origin path
            # plus the client→custodian leg for the (n-1)/n remote share.
            origin_hops_via = og_hops + peer_hops * (n - 1) / n
            origin_lat_via = og_lat + peer_lat * (n - 1) / n
            mean_hops += float(origin_mass @ origin_hops_via)
            mean_lat += float(origin_mass @ origin_lat_via)
        else:
            mean_hops += total_origin * float(og_hops.mean())
            mean_lat += total_origin * float(og_lat.mean())

        metrics = ApproxMetrics(
            local_fraction=total_local,
            peer_fraction=total_peer,
            origin_load=total_origin,
            mean_hops=mean_hops,
            mean_latency_ms=mean_lat,
        )
        if obs.enabled:
            obs.counter("approx.network.solves").add()
            obs.gauge("approx.network.residual").set(residual)
    return ApproxSolution(
        mode="custodian",
        policy=policy,
        level=coordination_level,
        metrics=metrics,
        iterations=iterations,
        residual=residual,
        characteristic_times=tuple(times),
    )


def solve_en_route(
    topology: Topology,
    *,
    capacity: int,
    policy: str = "lru",
    exponent: float = 0.8,
    catalog_size: int = 10_000,
    origin: Optional[OriginSpec] = None,
    metric: str = "hops",
    max_sweeps: int = MAX_SWEEPS,
    tolerance: float = SWEEP_TOLERANCE,
) -> ApproxSolution:
    """Approximate the paper's en-route hierarchy (module docstring).

    Every node runs one undivided cache of ``capacity`` slots; client
    ``r``'s requests walk the hop-shortest path ``r → gateway`` and are
    served by the first cache holding the content (its own node counts
    as the local tier), else by the origin behind the gateway.  Misses
    install the content at every node of the path (the leave-copy-
    everywhere discipline the thinning model describes).  Per-node
    arrivals aggregate the thinned streams of all paths through the
    node; sweeps repeat leaf→origin until no hit vector moves by more
    than ``tolerance``.
    """
    capacity, policy, exponent = _validate_common(
        topology,
        int(require_capacity(capacity, integer=True)),
        policy,
        validate_exponent(exponent, allow_one=True),
        catalog_size,
    )
    if max_sweeps < 1:
        raise ParameterError(f"max_sweeps must be positive, got {max_sweeps}")
    obs = get_session()
    with obs.span("approx.solve"):
        _, _, gateway_idx, extra_hops, extra_lat = _resolve_network(
            topology, origin, metric
        )
        gateway = topology.nodes[gateway_idx]
        n = topology.n_routers
        pmf, _ = zipf_tables(exponent, int(catalog_size))
        exogenous = pmf / n

        # One hop-shortest path per client, as node indices, plus the
        # latency prefix of each hop (pair overhead charged like the
        # routing matrices: once per remote fetch).
        paths: list[list[int]] = []
        path_lat: list[np.ndarray] = []
        for node in topology.nodes:
            path = topology.shortest_path(node, gateway)
            idx = [topology.index_of(u) for u in path]
            prefix = np.zeros(len(path), dtype=np.float64)
            for j in range(1, len(path)):
                prefix[j] = prefix[j - 1] + topology.link_latency(
                    path[j - 1], path[j]
                )
            if topology.pair_overhead_ms > 0 and len(path) > 1:
                prefix[1:] += topology.pair_overhead_ms
            paths.append(idx)
            path_lat.append(prefix)

        h = np.zeros((n, pmf.size), dtype=np.float64)
        times = np.zeros(n, dtype=np.float64)
        iterations = 0
        residual = 0.0
        converged = False
        delta = float("inf")
        for sweep in range(1, max_sweeps + 1):
            arrivals = np.zeros_like(h)
            for idx in paths:
                stream = exogenous
                for v in idx:
                    arrivals[v] += stream
                    stream = stream * (1.0 - h[v])
            h_next = np.empty_like(h)
            residual = 0.0
            for v in range(n):
                h_v, t_v, its, res = _hit_vector(
                    arrivals[v], float(capacity), policy
                )
                h_next[v] = h_v
                times[v] = t_v
                iterations += its
                residual = max(residual, res)
            delta = float(np.max(np.abs(h_next - h)))
            h = h_next
            if obs.enabled:
                obs.counter("approx.network.sweeps").add()
            if delta <= tolerance:
                converged = True
                iterations += sweep
                break
        if not converged:
            raise ConvergenceError(
                f"en-route sweep did not converge within {max_sweeps} "
                f"sweeps on {topology.name!r} (last delta {delta:.3e})"
            )

        local = peer = origin_frac = 0.0
        mean_hops = mean_lat = 0.0
        for idx, prefix_lat in zip(paths, path_lat):
            stream = exogenous
            for j, v in enumerate(idx):
                served = stream * h[v]
                mass = float(served.sum())
                if j == 0:
                    local += mass
                else:
                    peer += mass
                    mean_hops += mass * j
                    mean_lat += mass * float(prefix_lat[j])
                stream = stream * (1.0 - h[v])
            mass = float(stream.sum())
            origin_frac += mass
            mean_hops += mass * (len(idx) - 1 + extra_hops)
            mean_lat += mass * (float(prefix_lat[-1]) + extra_lat)

        metrics = ApproxMetrics(
            local_fraction=local,
            peer_fraction=peer,
            origin_load=origin_frac,
            mean_hops=mean_hops,
            mean_latency_ms=mean_lat,
        )
        if obs.enabled:
            obs.counter("approx.network.solves").add()
            obs.gauge("approx.network.residual").set(residual)
    return ApproxSolution(
        mode="en-route",
        policy=policy,
        level=0.0,
        metrics=metrics,
        iterations=iterations,
        residual=residual,
        characteristic_times=tuple(float(t) for t in times),
    )


def level_curve(
    topology: Topology,
    levels: Sequence[float],
    *,
    capacity: int,
    policy: str = "lru",
    exponent: float = 0.8,
    catalog_size: int = 10_000,
    origin: Optional[OriginSpec] = None,
    metric: str = "hops",
) -> LevelCurve:
    """The predicted ``T(ℓ)`` curve over a grid of coordination levels.

    One :func:`solve_custodian` per level — the approximation-layer
    counterpart of sweeping ``coordination_level`` over dynamic
    simulation runs, at a fraction of the cost.
    """
    if not levels:
        raise ParameterError("need at least one coordination level")
    solutions = tuple(
        solve_custodian(
            topology,
            capacity=capacity,
            coordination_level=level,
            policy=policy,
            exponent=exponent,
            catalog_size=catalog_size,
            origin=origin,
            metric=metric,
        )
        for level in levels
    )
    return LevelCurve(levels=tuple(float(v) for v in levels), solutions=solutions)
