"""Predicted metrics of the approximation layer.

:class:`ApproxMetrics` mirrors the property surface of
:class:`repro.simulation.metrics.SimulationMetrics` — ``origin_load``,
``local_fraction``, ``peer_fraction``, ``mean_hops``,
``mean_latency_ms``, ``tier_fractions()`` — so cross-validation code
and the figure pipeline can consume either interchangeably.  The
difference is semantic: simulation reports *observed* tier counts over
a finite request stream, while the approximation reports *expected*
fractions of the stationary regime, so everything here is a float in
``[0, 1]`` rather than a counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["ApproxMetrics", "FRACTION_TOLERANCE"]

#: Allowed defect of ``local + peer + origin - 1`` — accumulated float64
#: rounding over million-entry catalog reductions stays far below this.
FRACTION_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ApproxMetrics:
    """Expected per-tier behaviour of one approximated configuration.

    Attributes
    ----------
    local_fraction / peer_fraction / origin_load:
        Expected request fractions served by the client's own store,
        by a peer router (the custodian / an en-route cache), and by
        the origin — the paper's Table I metric trio; they sum to 1.
    mean_hops / mean_latency_ms:
        Expected fetch-path cost per request, excluding the constant
        client access leg — the same convention as
        :class:`~repro.simulation.metrics.SimulationMetrics`.
    """

    local_fraction: float
    peer_fraction: float
    origin_load: float
    mean_hops: float
    mean_latency_ms: float

    def __post_init__(self) -> None:
        for name in ("local_fraction", "peer_fraction", "origin_load"):
            value = getattr(self, name)
            if not -FRACTION_TOLERANCE <= value <= 1.0 + FRACTION_TOLERANCE:
                raise ParameterError(
                    f"{name} must be a probability, got {value}"
                )
        total = self.local_fraction + self.peer_fraction + self.origin_load
        if abs(total - 1.0) > FRACTION_TOLERANCE:
            raise ParameterError(
                f"tier fractions must sum to 1, got {total} "
                f"({self.local_fraction} + {self.peer_fraction} + "
                f"{self.origin_load})"
            )
        if self.mean_hops < 0.0 or self.mean_latency_ms < 0.0:
            raise ParameterError(
                "mean hops/latency must be non-negative, got "
                f"({self.mean_hops}, {self.mean_latency_ms})"
            )

    def tier_fractions(self) -> tuple[float, float, float]:
        """``(local, peer, origin)`` — same layout as the simulator's."""
        return (self.local_fraction, self.peer_fraction, self.origin_load)

    @property
    def hit_rate(self) -> float:
        """Aggregate in-network hit rate ``1 - origin_load``."""
        return 1.0 - self.origin_load
