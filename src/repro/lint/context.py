"""Per-file context handed to every rule."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .project import ProjectIndex

#: Top-level modules of the ``repro`` package that the layering rule
#: treats as units alongside the subpackages.
ROOT_UNIT = "<root>"


def resolve_module_name(path: Path) -> Optional[str]:
    """Dotted module name of ``path``, derived from ``__init__.py`` markers.

    Walks upward while the containing directory is a package.  Returns
    ``None`` for scripts that live outside any package (e.g. loose
    fixture files), in which case the package-scoped rules do not apply.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(parts)


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one source file."""

    path: Path
    source: str
    tree: ast.Module
    module_name: Optional[str]

    #: Back-reference to the whole-program index (phase 1), populated by
    #: the engine when linting a full path set; ``None`` when a file is
    #: linted in isolation via :func:`repro.lint.lint_file`.  Per-file
    #: rules that can exploit cross-module facts should degrade
    #: gracefully when it is absent.
    project: Optional["ProjectIndex"] = None

    #: Cached split source lines (1-indexed access via ``line_at``).
    _lines: Tuple[str, ...] = field(default=(), repr=False)

    @classmethod
    def from_path(cls, path: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return cls(
            path=path,
            source=source,
            tree=tree,
            module_name=resolve_module_name(path),
        )

    @property
    def in_repro(self) -> bool:
        """Whether this file belongs to the ``repro`` package."""
        name = self.module_name
        return name is not None and (name == "repro" or name.startswith("repro."))

    @property
    def repro_unit(self) -> Optional[str]:
        """The architectural unit this module belongs to.

        Subpackage name (``core``, ``simulation``, ...), a top-level
        module name (``errors``, ``cli``, ``__main__``), ``<root>`` for
        ``repro/__init__.py``, or ``None`` outside the package.
        """
        if not self.in_repro:
            return None
        segments = (self.module_name or "").split(".")
        if len(segments) == 1:
            return ROOT_UNIT
        return segments[1]

    def line_at(self, lineno: int) -> str:
        if not self._lines:
            self._lines = tuple(self.source.splitlines())
        if 1 <= lineno <= len(self._lines):
            return self._lines[lineno - 1]
        return ""
