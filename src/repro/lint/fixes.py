"""Auto-fix application for the mechanical rules (``repro lint --fix``).

Only findings carrying a :class:`~repro.lint.diagnostics.Fix` payload
are touched; everything else (layering violations, missing overflow
comments, genuine design findings) still requires a human.  Supported
payloads:

- ``insert`` — splice text into one position (R8's missing
  ``dtype=np.int64`` keyword);
- ``span_try_finally`` — wrap the statements following a manual span
  open in ``try:``/``finally: <handle>.__exit__(None, None, None)``
  (R9's unclosed-span rewrite).

Fixes are applied bottom-up per file so earlier edits never shift the
line numbers of later ones, and the rewritten source is re-parsed
before writing: a fix that would produce a syntax error is dropped and
reported instead of destroying the file.  ``--fix`` is best-effort by
design — always re-lint (the CLI does automatically) and re-run the
equivalence suites after applying.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .diagnostics import Diagnostic

__all__ = ["apply_fixes", "fixable"]


def fixable(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The subset of findings that carry a mechanical fix."""
    return [d for d in diagnostics if d.fix is not None]


def _apply_insert(lines: List[str], data: dict) -> None:
    line_idx = int(data["line"]) - 1
    col = int(data["col"])
    text = data["text"]
    line = lines[line_idx]
    col = max(0, min(col, len(line)))
    lines[line_idx] = line[:col] + text + line[col:]


def _apply_span_try_finally(lines: List[str], data: dict) -> None:
    start = int(data["block_start_line"]) - 1
    end = int(data["block_end_line"]) - 1
    indent = " " * int(data["indent"])
    handle = data["handle"]
    # Indent the guarded block one level deeper.
    for i in range(start, end + 1):
        if lines[i].strip():
            lines[i] = "    " + lines[i]
    closer = [
        f"{indent}finally:",
        f"{indent}    {handle}.__exit__(None, None, None)",
    ]
    lines[end + 1 : end + 1] = closer
    lines[start:start] = [f"{indent}try:"]


def apply_fixes(
    diagnostics: Iterable[Diagnostic],
) -> Tuple[List[str], List[Diagnostic]]:
    """Apply every carried fix, grouped per file, bottom-up.

    Returns ``(fixed_paths, dropped)`` where ``dropped`` are findings
    whose fix was skipped because the rewritten file would no longer
    parse (each file's edits are validated together before writing).
    """
    by_file: Dict[str, List[Diagnostic]] = {}
    for diagnostic in fixable(diagnostics):
        by_file.setdefault(diagnostic.path, []).append(diagnostic)
    fixed_paths: List[str] = []
    dropped: List[Diagnostic] = []
    for path, findings in sorted(by_file.items()):
        source = Path(path).read_text(encoding="utf-8")
        lines = source.splitlines()
        trailing_newline = source.endswith("\n")
        # Bottom-up: apply the fix anchored lowest in the file first.
        def anchor(d: Diagnostic) -> int:
            assert d.fix is not None
            return int(
                d.fix.data.get("line", d.fix.data.get("assign_line", d.line))
            )

        for diagnostic in sorted(findings, key=anchor, reverse=True):
            assert diagnostic.fix is not None
            if diagnostic.fix.kind == "insert":
                _apply_insert(lines, diagnostic.fix.data)
            elif diagnostic.fix.kind == "span_try_finally":
                _apply_span_try_finally(lines, diagnostic.fix.data)
            else:  # unknown kind: leave for a newer tool version
                dropped.append(diagnostic)
        new_source = "\n".join(lines) + ("\n" if trailing_newline else "")
        try:
            ast.parse(new_source)
        except SyntaxError:
            dropped.extend(findings)
            continue
        Path(path).write_text(new_source, encoding="utf-8")
        fixed_paths.append(path)
    return fixed_paths, dropped
