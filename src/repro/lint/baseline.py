"""Committed-baseline support: fail on *new* findings only.

The CI gate must be able to adopt a new rule before the tree is fully
clean under it: the known findings are recorded in a committed baseline
file (``lint-baseline.json`` at the repo root) and the gate fails only
on findings *not* in the baseline.  This keeps ``make test`` strict for
regressions while allowing incremental adoption.

A baseline entry matches on ``(rule, path, message)`` — deliberately
not on line numbers, so unrelated edits above a baselined finding do
not resurrect it.  The repo policy (DESIGN.md §13) is that the shipped
baseline stays *empty*: findings are fixed or suppressed in place with
a justification, and the baseline exists as CI machinery, not as a
dumping ground.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from .diagnostics import Diagnostic

__all__ = ["Baseline", "DEFAULT_BASELINE_NAME"]

DEFAULT_BASELINE_NAME = "lint-baseline.json"

_Key = Tuple[str, str, str]


def _normalize_path(path: str) -> str:
    rel = os.path.relpath(path) if os.path.isabs(path) else path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


class Baseline:
    """An accepted-findings set loaded from / saved to JSON."""

    def __init__(self, keys: Set[_Key]):
        self._keys = keys

    def __len__(self) -> int:
        return len(self._keys)

    @staticmethod
    def key_of(diagnostic: Diagnostic) -> _Key:
        return (
            diagnostic.rule_id,
            _normalize_path(diagnostic.path),
            diagnostic.message,
        )

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; raises OSError/ValueError on bad input."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        keys: Set[_Key] = set()
        for entry in payload.get("entries", []):
            keys.add((entry["rule"], entry["path"], entry["message"]))
        return cls(keys)

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "Baseline":
        return cls({cls.key_of(d) for d in diagnostics})

    def contains(self, diagnostic: Diagnostic) -> bool:
        """Whether this finding is recorded (and therefore accepted)."""
        return self.key_of(diagnostic) in self._keys

    def split(
        self, diagnostics: Iterable[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Partition into ``(new, baselined)``."""
        new: List[Diagnostic] = []
        baselined: List[Diagnostic] = []
        for diagnostic in diagnostics:
            (baselined if self.contains(diagnostic) else new).append(diagnostic)
        return new, baselined

    def save(self, path: Path) -> None:
        """Write the baseline as sorted, stable JSON (diff-friendly)."""
        entries = [
            {"rule": rule, "path": rel_path, "message": message}
            for rule, rel_path, message in sorted(self._keys)
        ]
        Path(path).write_text(
            json.dumps({"version": 1, "entries": entries}, indent=2) + "\n",
            encoding="utf-8",
        )
