"""Diagnostic records produced by lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not affect the exit code (reserved for advisory rules).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Fix:
    """A mechanical edit that resolves a finding (``repro lint --fix``).

    Fixes are deliberately line/column-textual rather than AST-rewrites
    so they survive serialisation through the incremental cache.  Two
    kinds exist today:

    - ``insert`` — splice ``data["text"]`` into position
      (``data["line"]``, ``data["col"]``); used for missing
      ``dtype=np.int64`` keywords (R8).
    - ``span_try_finally`` — wrap the statements after a manual span
      open (``data["assign_line"]``) up to ``data["block_end_line"]``
      in ``try:``/``finally: <handle>.__exit__(None, None, None)``;
      used for unclosed spans (R9).
    """

    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form (cache + ``--format json``)."""
        return {"kind": self.kind, "data": dict(self.data)}

    @classmethod
    def from_json(cls, payload: Mapping) -> "Fix":
        return cls(kind=payload["kind"], data=dict(payload["data"]))


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    severity: Severity = Severity.ERROR
    #: Optional mechanical auto-fix applied by ``--fix``.
    fix: Optional[Fix] = None

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report ordering: by path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        """GCC-style one-line rendering used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form used by ``--format json`` and the cache."""
        payload: Dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.fix is not None:
            payload["fix"] = self.fix.to_json()
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "Diagnostic":
        """Inverse of :meth:`to_json` (incremental-cache reload path)."""
        return cls(
            path=payload["path"],
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=payload["rule"],
            rule_name=payload["name"],
            message=payload["message"],
            severity=Severity(payload.get("severity", "error")),
            fix=Fix.from_json(payload["fix"]) if payload.get("fix") else None,
        )
