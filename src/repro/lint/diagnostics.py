"""Diagnostic records produced by lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings fail the build; ``WARNING`` findings are reported
    but do not affect the exit code (reserved for advisory rules).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    severity: Severity = Severity.ERROR

    def sort_key(self) -> tuple[str, int, int, str]:
        """Stable report ordering: by path, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)

    def format_text(self) -> str:
        """GCC-style one-line rendering used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable form used by ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
        }
