"""Incremental lint cache: content-hash keyed, import-graph invalidated.

A full-tree lint parses ~180 files and runs nine per-file rules over
each — seconds of work that CI and pre-commit hooks repeat on trees
that have not changed.  The cache removes that cost: after a clean run,
every file has an entry recording

- ``hash`` — sha256 of the file's bytes,
- ``dep_hash`` — sha256 over the *transitive import closure's* content
  hashes (computed from the phase-1 project index), so editing a leaf
  module invalidates every importer without any timestamp games,
- the file's serialised diagnostics, suppression count, and
  :class:`~repro.lint.project.ModuleSummary`.

On a warm run the engine hashes the files (cheap), rebuilds the project
index *from cached summaries without parsing anything*, recomputes each
dep-hash, and re-lints only files whose own hash or dep-hash moved.  A
clean tree therefore re-parses zero files and the whole-tree lint takes
milliseconds; project rules (R10) still run every time, against the
summary-level index.

The cache lives under ``.lint-cache/`` (git-ignorable, safe to delete
at any time) and is versioned: a registry change — new rules, changed
rule order — abandons stale caches wholesale rather than risking a
stale finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from .diagnostics import Diagnostic
from .project import ModuleSummary

__all__ = ["CacheEntry", "IncrementalCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".lint-cache"

#: Bump when the cache payload shape changes incompatibly.
CACHE_FORMAT = 1


@dataclass
class CacheEntry:
    """One file's cached lint outcome + index contribution."""

    hash: str
    dep_hash: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed_count: int = 0
    summary: Optional[ModuleSummary] = None

    def to_json(self) -> dict:
        return {
            "hash": self.hash,
            "dep_hash": self.dep_hash,
            "diagnostics": [d.to_json() for d in self.diagnostics],
            "suppressed": self.suppressed_count,
            "summary": self.summary.to_json() if self.summary else None,
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "CacheEntry":
        return cls(
            hash=payload["hash"],
            dep_hash=payload["dep_hash"],
            diagnostics=[
                Diagnostic.from_json(d) for d in payload["diagnostics"]
            ],
            suppressed_count=int(payload["suppressed"]),
            summary=(
                ModuleSummary.from_json(payload["summary"])
                if payload.get("summary")
                else None
            ),
        )


class IncrementalCache:
    """Load/store for the per-file cache under ``cache_dir``.

    The cache key space is the *resolved* file path; the rules key binds
    entries to the rule selection they were produced under, so
    ``--select R1`` runs and full runs never cross-contaminate.
    """

    def __init__(self, cache_dir: Path, rules_key: str):
        self.cache_dir = Path(cache_dir)
        self.rules_key = rules_key
        self.entries: Dict[str, CacheEntry] = {}
        self._loaded_ok = False

    @property
    def path(self) -> Path:
        return self.cache_dir / "cache.json"

    # -- persistence ----------------------------------------------------
    def load(self) -> bool:
        """Read the cache; an unreadable/mismatched cache is just empty."""
        self.entries = {}
        self._loaded_ok = False
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        if (
            payload.get("format") != CACHE_FORMAT
            or payload.get("rules_key") != self.rules_key
        ):
            return False
        try:
            self.entries = {
                path: CacheEntry.from_json(entry)
                for path, entry in payload.get("files", {}).items()
            }
        except (KeyError, TypeError, ValueError):
            self.entries = {}
            return False
        self._loaded_ok = True
        return True

    def save(self) -> None:
        """Atomically persist every entry under ``cache_dir``."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "rules_key": self.rules_key,
            "files": {
                path: entry.to_json() for path, entry in self.entries.items()
            },
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.path)

    # -- lookups ---------------------------------------------------------
    def summary_for(self, path: str, file_hash: str) -> Optional[ModuleSummary]:
        """Cached index contribution, valid only if the content matches."""
        entry = self.entries.get(path)
        if entry is not None and entry.hash == file_hash and entry.summary:
            return entry.summary
        return None

    def result_for(
        self, path: str, file_hash: str, dep_hash: str
    ) -> Optional[Tuple[List[Diagnostic], int]]:
        """Cached diagnostics, valid only if content AND deps match."""
        entry = self.entries.get(path)
        if (
            entry is not None
            and entry.hash == file_hash
            and entry.dep_hash == dep_hash
        ):
            return list(entry.diagnostics), entry.suppressed_count
        return None

    def store(
        self,
        path: str,
        file_hash: str,
        dep_hash: str,
        diagnostics: List[Diagnostic],
        suppressed_count: int,
        summary: Optional[ModuleSummary],
    ) -> None:
        """Record one file's fresh lint outcome + index contribution."""
        self.entries[path] = CacheEntry(
            hash=file_hash,
            dep_hash=dep_hash,
            diagnostics=list(diagnostics),
            suppressed_count=suppressed_count,
            summary=summary,
        )

    def prune(self, live_paths: set) -> None:
        """Drop entries for files no longer part of the lint target set."""
        for stale in set(self.entries) - set(live_paths):
            del self.entries[stale]
