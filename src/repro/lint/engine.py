"""Two-phase whole-program lint engine.

Phase 1 (*index*): every discovered file is reduced to a
:class:`~repro.lint.project.ModuleSummary` — parsed fresh, or loaded
from the incremental cache when the file's content hash is unchanged —
and the summaries combine into the shared
:class:`~repro.lint.project.ProjectIndex` (import graph, reference
index).

Phase 2 (*rules*): per-file rules run over each file that needs
re-linting (content changed, or anything in its transitive import
closure changed — the cache stores a dependency hash per file), with
``ctx.project`` pointing at the phase-1 index; project rules
(:class:`~repro.lint.rules.ProjectRule`, e.g. R10 dead-public-API) run
once over the index itself, every run — they are cheap against
summaries and their findings depend on global state no per-file cache
entry could own.

``--changed`` mode narrows phase 2a to the files reported by
``git diff --name-only HEAD`` (plus untracked files) *and their
transitive importers*, which is the fast pre-commit path.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .cache import IncrementalCache
from .context import ModuleContext, resolve_module_name
from .diagnostics import Diagnostic, Severity
from .project import ModuleSummary, ProjectIndex, content_hash, summarize
from .rules import PROJECT_RULES, RULES, ProjectRule, Rule, rule_ids
from .suppress import SuppressionIndex

#: Directory components never descended into during discovery.  Lint
#: fixtures are deliberately-bad code; they are linted only when named
#: explicitly on the command line (as the fixture tests do).
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        "fixtures",
        ".git",
        ".venv",
        "venv",
        "build",
        "dist",
        ".pytest_cache",
        ".lint-cache",
    }
)


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0
    #: Incremental-engine accounting: how many files were re-parsed and
    #: re-linted this run vs. served wholesale from the cache.
    files_relinted: int = 0
    files_from_cache: int = 0
    #: ``--changed`` mode: files outside the changed set with no valid
    #: cache entry are skipped (their findings are unknown this run).
    files_skipped: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any error-severity finding remains."""
        return 1 if self.error_count else 0


def discover_files(
    paths: Sequence[Path],
    *,
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Exclusion applies to directory components *below* each named root,
    so an explicitly named path is always linted — a file, or a
    directory that itself sits under ``fixtures/`` — while walking
    ``tests/`` still skips ``tests/lint/fixtures/``.
    """
    excluded = frozenset(excluded_dirs)
    found: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (
                    set(p.relative_to(path).parts[:-1]) & excluded
                    or p.name.endswith(".egg-info")
                )
            )
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                found.append(candidate)
    return found


def git_changed_files(repo_root: Optional[Path] = None) -> Optional[Set[Path]]:
    """Files differing from HEAD plus untracked files, resolved.

    Returns ``None`` when git is unavailable or the directory is not a
    work tree; callers decide whether that is an error (the CLI treats
    it as one for ``--changed``).
    """
    root = Path(repo_root) if repo_root is not None else Path.cwd()
    changed: Set[Path] = set()
    for args in (
        ("git", "diff", "--name-only", "HEAD"),
        ("git", "ls-files", "--others", "--exclude-standard"),
    ):
        try:
            proc = subprocess.run(
                args,
                cwd=root,
                capture_output=True,
                text=True,
                timeout=30,
                check=False,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        for line in proc.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add((root / line).resolve())
    return changed


def _parse_error_diagnostic(path: Path, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=str(path),
        line=exc.lineno or 1,
        col=exc.offset or 0,
        rule_id="E001",
        rule_name="parse-error",
        message=f"file does not parse: {exc.msg}",
    )


def lint_file(
    path: Path,
    *,
    rules: Sequence[Rule] = RULES,
    selected_ids: Optional[Iterable[str]] = None,
    project: Optional[ProjectIndex] = None,
) -> Tuple[List[Diagnostic], int]:
    """Lint one file in isolation; returns ``(diagnostics, suppressed)``.

    A file that fails to parse yields a single ``E001`` diagnostic so a
    syntax error cannot silently pass the lint gate.  Project rules do
    not run here — they need :func:`lint_paths`' whole-program index.
    """
    try:
        ctx = ModuleContext.from_path(path)
    except SyntaxError as exc:
        return [_parse_error_diagnostic(path, exc)], 0
    ctx.project = project
    return _run_file_rules(ctx, rules, _selection(selected_ids))


def _selection(selected_ids: Optional[Iterable[str]]) -> Optional[Set[str]]:
    if selected_ids is None:
        return None
    return {rid.upper() for rid in selected_ids}


def _run_file_rules(
    ctx: ModuleContext,
    rules: Sequence[Rule],
    selected: Optional[Set[str]],
) -> Tuple[List[Diagnostic], int]:
    suppressions = SuppressionIndex.from_source(ctx.source)
    kept: List[Diagnostic] = []
    suppressed = 0
    for rule in rules:
        if selected is not None and rule.id.upper() not in selected:
            continue
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic.rule_id, diagnostic.line):
                suppressed += 1
            else:
                kept.append(diagnostic)
    return kept, suppressed


def _run_project_rules(
    index: ProjectIndex,
    project_rules: Sequence[ProjectRule],
    selected: Optional[Set[str]],
    linted_paths: Set[str],
) -> Tuple[List[Diagnostic], int]:
    kept: List[Diagnostic] = []
    suppressed = 0
    for rule in project_rules:
        if selected is not None and rule.id.upper() not in selected:
            continue
        for diagnostic in rule.check_project(index):
            if diagnostic.path not in linted_paths:
                continue
            summary = index.summaries.get(diagnostic.path)
            if summary is not None and summary.is_suppressed(
                diagnostic.rule_id, diagnostic.line
            ):
                suppressed += 1
            else:
                kept.append(diagnostic)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: Sequence[Rule] = RULES,
    project_rules: Sequence[ProjectRule] = PROJECT_RULES,
    selected_ids: Optional[Iterable[str]] = None,
    cache_dir: Optional[Path] = None,
    changed_only: bool = False,
    repo_root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file reachable from ``paths`` (two phases).

    With ``cache_dir`` the incremental cache is consulted and updated;
    with ``changed_only`` per-file rules run only on git-changed files
    plus their transitive importers (project rules always run).
    """
    result = LintResult()
    files = discover_files(paths)
    selected = _selection(selected_ids)

    # ---- hash every file (cheap, and the cache key space). ----------
    sources: Dict[str, bytes] = {}
    hashes: Dict[str, str] = {}
    for path in files:
        raw = path.read_bytes()
        key = str(path)
        sources[key] = raw
        hashes[key] = content_hash(raw)

    cache: Optional[IncrementalCache] = None
    if cache_dir is not None:
        rules_key = "|".join(rule_ids()) + "//" + (
            ",".join(sorted(selected)) if selected is not None else "all"
        )
        cache = IncrementalCache(Path(cache_dir), rules_key)
        cache.load()

    # ---- phase 1: summaries (cached or parsed) -> project index. ----
    contexts: Dict[str, ModuleContext] = {}
    parse_errors: Dict[str, Diagnostic] = {}
    summaries: Dict[str, ModuleSummary] = {}

    def _parse(path: Path) -> Optional[ModuleContext]:
        key = str(path)
        if key in contexts:
            return contexts[key]
        if key in parse_errors:
            return None
        try:
            source = sources[key].decode("utf-8")
            ctx = ModuleContext.from_path(path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            if isinstance(exc, SyntaxError):
                parse_errors[key] = _parse_error_diagnostic(path, exc)
            else:
                parse_errors[key] = Diagnostic(
                    path=key,
                    line=1,
                    col=0,
                    rule_id="E001",
                    rule_name="parse-error",
                    message=f"file is not valid UTF-8: {exc}",
                )
            return None
        del source  # decoded only to surface unicode errors here
        contexts[key] = ctx
        return ctx

    for path in files:
        key = str(path)
        summary = cache.summary_for(key, hashes[key]) if cache else None
        if summary is None:
            ctx = _parse(path)
            if ctx is None:
                summary = ModuleSummary(
                    path=key,
                    module_name=resolve_module_name(path),
                    hash=hashes[key],
                    is_init=path.name == "__init__.py",
                )
            else:
                summary = summarize(ctx, hashes[key])
        summaries[key] = summary
    index = ProjectIndex(summaries.values())
    dep_hashes = {key: index.dependency_hash(key) for key in summaries}

    # ---- phase 2a: per-file rules (incremental). --------------------
    targets: Set[str] = set(summaries)
    if changed_only:
        changed = git_changed_files(repo_root)
        if changed is None:
            raise RuntimeError(
                "--changed requires git and a work tree (git diff failed)"
            )
        changed_keys = {
            key for key, path in ((str(p), p) for p in files)
            if path.resolve() in changed
        }
        expanded = set(changed_keys)
        for key in changed_keys:
            expanded |= index.transitive_importers(key)
        targets = expanded & set(summaries)

    for path in files:
        key = str(path)
        if key not in targets:
            cached = (
                cache.result_for(key, hashes[key], dep_hashes[key])
                if cache
                else None
            )
            if cached is not None:
                diagnostics, suppressed = cached
                result.diagnostics.extend(diagnostics)
                result.suppressed_count += suppressed
                result.files_from_cache += 1
                result.files_checked += 1
            else:
                result.files_skipped += 1
            continue
        cached = (
            cache.result_for(key, hashes[key], dep_hashes[key])
            if cache
            else None
        )
        if cached is not None:
            diagnostics, suppressed = cached
            result.files_from_cache += 1
        else:
            if key in parse_errors:
                diagnostics, suppressed = [parse_errors[key]], 0
            else:
                ctx = _parse(path)
                if ctx is None:
                    diagnostics, suppressed = [parse_errors[key]], 0
                else:
                    ctx.project = index
                    diagnostics, suppressed = _run_file_rules(
                        ctx, rules, selected
                    )
            result.files_relinted += 1
            if cache is not None:
                cache.store(
                    key,
                    hashes[key],
                    dep_hashes[key],
                    diagnostics,
                    suppressed,
                    summaries[key],
                )
        result.diagnostics.extend(diagnostics)
        result.suppressed_count += suppressed
        result.files_checked += 1

    # ---- phase 2b: project rules (always run, summary-level). -------
    project_diagnostics, project_suppressed = _run_project_rules(
        index, project_rules, selected, set(summaries)
    )
    result.diagnostics.extend(project_diagnostics)
    result.suppressed_count += project_suppressed

    if cache is not None:
        cache.prune(set(summaries))
        cache.save()

    result.diagnostics.sort(key=Diagnostic.sort_key)
    return result
