"""File discovery, rule dispatch, and suppression filtering."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .context import ModuleContext
from .diagnostics import Diagnostic, Severity
from .rules import RULES, Rule
from .suppress import SuppressionIndex

#: Directory components never descended into during discovery.  Lint
#: fixtures are deliberately-bad code; they are linted only when named
#: explicitly on the command line (as the fixture tests do).
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        "fixtures",
        ".git",
        ".venv",
        "venv",
        "build",
        "dist",
        ".pytest_cache",
    }
)


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    suppressed_count: int = 0

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def exit_code(self) -> int:
        """0 when clean, 1 when any error-severity finding remains."""
        return 1 if self.error_count else 0


def discover_files(
    paths: Sequence[Path],
    *,
    excluded_dirs: Iterable[str] = DEFAULT_EXCLUDED_DIRS,
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    Exclusion applies to directory components *below* each named root,
    so an explicitly named path is always linted — a file, or a
    directory that itself sits under ``fixtures/`` — while walking
    ``tests/`` still skips ``tests/lint/fixtures/``.
    """
    excluded = frozenset(excluded_dirs)
    found: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (
                    set(p.relative_to(path).parts[:-1]) & excluded
                    or p.name.endswith(".egg-info")
                )
            )
        else:
            raise FileNotFoundError(f"lint target does not exist: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                found.append(candidate)
    return found


def lint_file(
    path: Path,
    *,
    rules: Sequence[Rule] = RULES,
    selected_ids: Optional[Iterable[str]] = None,
) -> Tuple[List[Diagnostic], int]:
    """Lint one file; returns ``(diagnostics, suppressed_count)``.

    A file that fails to parse yields a single ``E001`` diagnostic so a
    syntax error cannot silently pass the lint gate.
    """
    try:
        ctx = ModuleContext.from_path(path)
    except SyntaxError as exc:
        return (
            [
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    rule_id="E001",
                    rule_name="parse-error",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    selected = {rid.upper() for rid in selected_ids} if selected_ids is not None else None
    suppressions = SuppressionIndex.from_source(ctx.source)
    kept: List[Diagnostic] = []
    suppressed = 0
    for rule in rules:
        if selected is not None and rule.id.upper() not in selected:
            continue
        for diagnostic in rule.check(ctx):
            if suppressions.is_suppressed(diagnostic.rule_id, diagnostic.line):
                suppressed += 1
            else:
                kept.append(diagnostic)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path],
    *,
    rules: Sequence[Rule] = RULES,
    selected_ids: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every python file reachable from ``paths``."""
    result = LintResult()
    for path in discover_files(paths):
        diagnostics, suppressed = lint_file(
            path, rules=rules, selected_ids=selected_ids
        )
        result.diagnostics.extend(diagnostics)
        result.suppressed_count += suppressed
        result.files_checked += 1
    result.diagnostics.sort(key=Diagnostic.sort_key)
    return result
