"""Phase 1 of the whole-program analysis: the project index.

``repro.lint`` originally checked each file in isolation, which is
enough for syntactic invariants (R1, R3-R6) but cannot see properties
that live *between* modules: which module imports which (transitive
cache invalidation, ``--changed`` mode), which exported name is actually
referenced anywhere (R10 dead-public-API), and which file must be
re-examined when a dependency changes.

This module builds that shared view.  Every linted file is reduced to a
:class:`ModuleSummary` — a small, JSON-serialisable record of the facts
project rules need (imports, definitions, exports, referenced
identifiers, suppression directives).  The summaries combine into a
:class:`ProjectIndex` holding the import graph and a string-level
reference index.  Because summaries serialise losslessly, the
incremental cache can rebuild the index for an unchanged tree without
re-parsing a single file — that is what makes warm whole-tree lints
drop from seconds to milliseconds.

Like the rest of the lint package this module imports only the standard
library, so it can index a broken tree and nothing at runtime may
depend on it.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from .context import ModuleContext

__all__ = ["ModuleSummary", "ProjectIndex", "content_hash", "summarize"]


def content_hash(data: bytes) -> str:
    """Stable content fingerprint used by the incremental cache."""
    return hashlib.sha256(data).hexdigest()


@dataclass
class ModuleSummary:
    """Everything the project index needs to know about one file.

    The record is deliberately string-level: it stores *names*, not AST
    nodes, so it can round-trip through the cache as JSON and so the
    index stays cheap to rebuild (~180 files in well under a
    millisecond).
    """

    path: str
    module_name: Optional[str]
    hash: str
    is_init: bool
    #: Absolute dotted import targets inside ``repro`` (modules only).
    imports: Tuple[str, ...] = ()
    #: Top-level names defined in the module (def/class/assign).
    defined: Tuple[str, ...] = ()
    #: ``(name, line, col)`` of each exported name: ``__all__`` entries,
    #: plus (for ``__init__.py`` without ``__all__``) public re-exports.
    exports: Tuple[Tuple[str, int, int], ...] = ()
    #: Identifiers the module mentions (Name loads + attribute names).
    #: For ``__init__.py`` files, names that appear *only* as re-export
    #: imports are excluded so re-export plumbing does not count as use.
    refs: Tuple[str, ...] = ()
    #: Rules suppressed file-wide (``# repro-lint: disable-file=...``).
    suppress_file: Tuple[str, ...] = ()
    #: line -> rules suppressed on that line.
    suppress_lines: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def to_json(self) -> dict:
        """JSON-serialisable form stored in the incremental cache."""
        return {
            "path": self.path,
            "module": self.module_name,
            "hash": self.hash,
            "is_init": self.is_init,
            "imports": list(self.imports),
            "defined": list(self.defined),
            "exports": [list(e) for e in self.exports],
            "refs": list(self.refs),
            "suppress_file": list(self.suppress_file),
            "suppress_lines": {
                str(line): list(rules)
                for line, rules in self.suppress_lines.items()
            },
        }

    @classmethod
    def from_json(cls, payload: Mapping) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            module_name=payload["module"],
            hash=payload["hash"],
            is_init=payload["is_init"],
            imports=tuple(payload["imports"]),
            defined=tuple(payload["defined"]),
            exports=tuple(
                (name, int(line), int(col))
                for name, line, col in payload["exports"]
            ),
            refs=tuple(payload["refs"]),
            suppress_file=tuple(payload["suppress_file"]),
            suppress_lines={
                int(line): tuple(rules)
                for line, rules in payload["suppress_lines"].items()
            },
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Suppression check usable without re-reading the source."""
        rule_id = rule_id.upper()
        if "ALL" in self.suppress_file or rule_id in self.suppress_file:
            return True
        at_line = self.suppress_lines.get(line, ())
        return "ALL" in at_line or rule_id in at_line


def _absolute_import_targets(ctx: ModuleContext) -> List[str]:
    """Absolute dotted targets of every ``repro`` import in the module."""
    targets: List[str] = []
    is_init = ctx.path.name == "__init__.py"
    module_name = ctx.module_name
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    targets.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level and module_name:
                segments = module_name.split(".")
                if not is_init:
                    segments = segments[:-1]
                drop = node.level - 1
                if drop > len(segments):
                    continue
                base = segments[: len(segments) - drop] if drop else segments
                target = ".".join(
                    base + (node.module.split(".") if node.module else [])
                )
            else:
                target = node.module or ""
            if target == "repro" or target.startswith("repro."):
                targets.append(target)
                # ``from repro.core import zipf`` imports the *submodule*
                # repro.core.zipf; record it so the edge is precise.
                for alias in node.names:
                    if alias.name != "*":
                        targets.append(f"{target}.{alias.name}")
    return targets


def _imported_names(tree: ast.Module) -> Set[str]:
    """Local names bound by import statements."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    names.add(alias.asname or alias.name)
    return names


def _defined_names(tree: ast.Module) -> List[str]:
    defined: List[str] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.append(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.append(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.append(node.target.id)
    return defined


def _all_entries(tree: ast.Module) -> Optional[List[Tuple[str, int, int]]]:
    """``__all__`` entries with their source positions, if declared."""
    for node in tree.body:
        value = None
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                value = node.value
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                value = node.value
        if value is None:
            continue
        if isinstance(value, (ast.List, ast.Tuple)):
            entries = []
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    entries.append((elt.value, elt.lineno, elt.col_offset))
            return entries
    return None


def _references(ctx: ModuleContext) -> Set[str]:
    """Identifiers the module *uses* (string level, deliberately broad).

    Includes every loaded ``Name`` and every attribute name, so both
    ``foo(...)`` and ``pkg.foo`` count as references to ``foo``.  For
    ``__init__.py`` files, names bound only by import statements are
    dropped: a bare re-export is plumbing, not a use, and counting it
    would hide genuinely dead exports from R10.
    """
    refs: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
    if ctx.path.name != "__init__.py":
        # A plain module importing a name is a (weak) use; in an
        # __init__.py the same statement is re-export plumbing, and
        # import bindings produce no Name load, so inits naturally
        # contribute only names their own code actually touches.
        refs |= _imported_names(ctx.tree)
    return refs


def summarize(ctx: ModuleContext, file_hash: str) -> ModuleSummary:
    """Reduce a parsed module to its project-index record."""
    from .suppress import SuppressionIndex  # local: avoid import cycle

    is_init = ctx.path.name == "__init__.py"
    explicit_all = _all_entries(ctx.tree)
    if explicit_all is not None:
        exports = explicit_all
    elif is_init and ctx.in_repro:
        # No __all__: the public surface of a package init is its
        # public (non-underscore) imports and definitions.
        exports = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name != "*" and not name.startswith("_"):
                        exports.append((name, node.lineno, node.col_offset))
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_"):
                    exports.append((node.name, node.lineno, node.col_offset))
    else:
        exports = []
    suppressions = SuppressionIndex.from_source(ctx.source)
    return ModuleSummary(
        path=str(ctx.path),
        module_name=ctx.module_name,
        hash=file_hash,
        is_init=is_init,
        imports=tuple(sorted(set(_absolute_import_targets(ctx)))),
        defined=tuple(_defined_names(ctx.tree)),
        exports=tuple(exports),
        refs=tuple(sorted(_references(ctx))),
        suppress_file=tuple(sorted(suppressions.file_rules)),
        suppress_lines={
            line: tuple(sorted(rules))
            for line, rules in suppressions.line_rules.items()
        },
    )


class ProjectIndex:
    """The whole-program view shared by every rule (phase 1 output).

    Holds one :class:`ModuleSummary` per linted file plus the derived
    import graph (both directions) and a reference index.  Project rules
    (R10) read it directly; the incremental engine uses
    :meth:`transitive_imports` for cache invalidation and
    :meth:`transitive_importers` for ``--changed`` expansion.
    """

    def __init__(self, summaries: Iterable[ModuleSummary]):
        self.summaries: Dict[str, ModuleSummary] = {}
        self._by_module: Dict[str, str] = {}
        for summary in summaries:
            self.summaries[summary.path] = summary
            if summary.module_name:
                self._by_module[summary.module_name] = summary.path
        self._imports: Dict[str, FrozenSet[str]] = {}
        self._importers: Dict[str, Set[str]] = {p: set() for p in self.summaries}
        for path, summary in self.summaries.items():
            resolved: Set[str] = set()
            for target in summary.imports:
                dep = self.resolve_module(target)
                if dep is not None and dep != path:
                    resolved.add(dep)
            self._imports[path] = frozenset(resolved)
            for dep in resolved:
                self._importers[dep].add(path)
        self._ref_index: Dict[str, Set[str]] = {}
        for path, summary in self.summaries.items():
            for name in summary.refs:
                self._ref_index.setdefault(name, set()).add(path)

    # -- module / path resolution -------------------------------------
    def resolve_module(self, dotted: str) -> Optional[str]:
        """Path of the project file providing ``dotted``, if any.

        Falls back to the deepest known prefix so ``repro.core.zipf.foo``
        resolves to ``repro/core/zipf.py`` and ``repro.core`` to the
        package ``__init__``.
        """
        parts = dotted.split(".")
        while parts:
            hit = self._by_module.get(".".join(parts))
            if hit is not None:
                return hit
            parts.pop()
        return None

    def path_of(self, module_name: str) -> Optional[str]:
        """The file path backing a module name, if it is in the index."""
        return self._by_module.get(module_name)

    # -- import graph ---------------------------------------------------
    def imports_of(self, path: str) -> FrozenSet[str]:
        """Project files ``path`` imports directly."""
        return self._imports.get(path, frozenset())

    def importers_of(self, path: str) -> FrozenSet[str]:
        """Project files that import ``path`` directly."""
        return frozenset(self._importers.get(path, ()))

    def _closure(self, start: str, edges: Mapping[str, Iterable[str]]) -> FrozenSet[str]:
        seen: Set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in edges.get(node, ()):  # type: ignore[call-overload]
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        seen.discard(start)
        return frozenset(seen)

    def transitive_imports(self, path: str) -> FrozenSet[str]:
        """Everything ``path`` depends on, directly or indirectly."""
        return self._closure(path, self._imports)

    def transitive_importers(self, path: str) -> FrozenSet[str]:
        """Everything that depends on ``path``, directly or indirectly."""
        return self._closure(path, self._importers)

    def dependency_hash(self, path: str) -> str:
        """Fingerprint of a file's transitive import closure.

        Folded into each cache entry: when any dependency's content
        changes, the hash changes and the file is re-linted — the
        "edit a leaf module, importers re-lint" contract.
        """
        closure = sorted(self.transitive_imports(path) | {path})
        digest = hashlib.sha256()
        for dep in closure:
            summary = self.summaries.get(dep)
            if summary is not None:
                digest.update(dep.encode())
                digest.update(summary.hash.encode())
        return digest.hexdigest()

    # -- reference index ------------------------------------------------
    def referencing_files(self, name: str) -> FrozenSet[str]:
        """Files whose source mentions identifier ``name``."""
        return frozenset(self._ref_index.get(name, ()))

    def __len__(self) -> int:
        return len(self.summaries)
