"""SARIF 2.1.0 rendering for CI annotation.

SARIF (Static Analysis Results Interchange Format) is the lingua franca
CI systems use to surface linter findings as inline annotations.  This
module renders a :class:`~repro.lint.engine.LintResult` as a minimal but
schema-valid SARIF 2.1.0 log: one ``run``, a ``tool.driver`` carrying
the full rule catalogue (so viewers can show rule help without another
lookup), and one ``result`` per diagnostic with a physical location.

Produced by ``repro lint --format sarif`` / ``python -m repro.lint
--format sarif`` and consumed by the CI gate (see Makefile ``lint``).
"""

from __future__ import annotations

import os
from typing import Dict, List

from .diagnostics import Diagnostic, Severity
from .rules import PROJECT_RULES, RULES

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS: Dict[Severity, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
}


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.description},
    }


def _artifact_uri(path: str) -> str:
    """Relative, forward-slash URI as SARIF viewers expect."""
    rel = os.path.relpath(path) if os.path.isabs(path) else path
    # Outside-the-tree paths keep their absolute form (file scheme is
    # unnecessary for the viewers we target; relative is preferred).
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def _result(diagnostic: Diagnostic, rule_index: Dict[str, int]) -> dict:
    result = {
        "ruleId": diagnostic.rule_id,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": _artifact_uri(diagnostic.path)},
                    "region": {
                        "startLine": max(1, diagnostic.line),
                        # SARIF columns are 1-based; AST cols are 0-based.
                        "startColumn": diagnostic.col + 1,
                    },
                }
            }
        ],
    }
    if diagnostic.rule_id in rule_index:
        result["ruleIndex"] = rule_index[diagnostic.rule_id]
    return result


def to_sarif(diagnostics: List[Diagnostic]) -> dict:
    """Render findings as a SARIF 2.1.0 log (a JSON-ready dict)."""
    catalogue = list(RULES) + list(PROJECT_RULES)
    rule_index = {rule.id: i for i, rule in enumerate(catalogue)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        # The tool ships with the repository; DESIGN.md
                        # §8/§13 is its documentation of record.
                        "rules": [_rule_descriptor(r) for r in catalogue],
                    }
                },
                "results": [
                    _result(d, rule_index) for d in diagnostics
                ],
            }
        ],
    }
