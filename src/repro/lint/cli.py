"""Command-line interface: ``python -m repro.lint [paths...]``.

Also reachable as ``repro lint ...`` through the package CLI.  Exit
codes follow the usual linter convention: 0 clean, 1 findings, 2 usage
or internal error.  Noteworthy flags:

- ``--format sarif`` renders a SARIF 2.1.0 log for CI annotation;
- ``--fix`` applies the mechanical fixes (R8 dtype kwargs, R9
  try/finally span closure) and re-lints;
- ``--changed`` lints only git-changed files plus their transitive
  importers (pre-commit fast path);
- ``--baseline FILE`` suppresses findings recorded in a committed
  baseline and fails only on new ones;
- ``--no-cache`` / ``--cache-dir`` control the incremental cache
  (enabled by default, under ``.lint-cache/``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .cache import DEFAULT_CACHE_DIR
from .engine import LintResult, lint_paths
from .fixes import apply_fixes
from .rules import PROJECT_RULES, RULES, rule_ids
from .sarif import to_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "Whole-program invariant & layering checks for the repro "
            "package (per-file rules R1-R9 plus project rule R10; see "
            "DESIGN.md 'Static analysis & invariants')"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R3); default all",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count to text output",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical fixes (R8 dtype, R9 span closure), then re-lint",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only git-changed files and their transitive importers",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental cache (full re-lint, nothing written)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help=f"incremental cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "suppress findings recorded in this baseline file; fail only "
            f"on new ones (conventionally {DEFAULT_BASELINE_NAME})"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record the current findings as the baseline file and exit 0",
    )
    return parser


def _print_rules(out: IO[str]) -> None:
    for rule in list(RULES) + list(PROJECT_RULES):
        print(f"{rule.id}  {rule.name:24s} {rule.description}", file=out)


def _render_text(result: LintResult, *, statistics: bool, out: IO[str]) -> None:
    for diagnostic in result.diagnostics:
        print(diagnostic.format_text(), file=out)
    if statistics and result.diagnostics:
        counts: dict[str, int] = {}
        for diagnostic in result.diagnostics:
            counts[diagnostic.rule_id] = counts.get(diagnostic.rule_id, 0) + 1
        print("--", file=out)
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}", file=out)
    summary = (
        f"repro-lint: {len(result.diagnostics)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed_count:
        summary += f", {result.suppressed_count} suppressed"
    if result.files_from_cache:
        summary += f", {result.files_from_cache} from cache"
    print(summary, file=out)


def _render_json(result: LintResult, out: IO[str]) -> None:
    payload = {
        "findings": [d.to_json() for d in result.diagnostics],
        "files_checked": result.files_checked,
        "files_relinted": result.files_relinted,
        "files_from_cache": result.files_from_cache,
        "suppressed": result.suppressed_count,
        "rules": rule_ids(),
    }
    json.dump(payload, out, indent=2)
    print(file=out)


def _render_sarif(result: LintResult, out: IO[str]) -> None:
    json.dump(to_sarif(result.diagnostics), out, indent=2)
    print(file=out)


def main(argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(out)
        return EXIT_CLEAN
    selected: Optional[list[str]] = None
    if args.select:
        selected = [part.strip().upper() for part in args.select.split(",") if part.strip()]
        known = {rid.upper() for rid in rule_ids()}
        unknown = [rid for rid in selected if rid not in known]
        if unknown:
            print(
                f"repro-lint: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(rule_ids())})",
                file=sys.stderr,
            )
            return EXIT_USAGE
    cache_dir = None if args.no_cache else Path(args.cache_dir)
    lint_kwargs = dict(
        selected_ids=selected,
        cache_dir=cache_dir,
        changed_only=args.changed,
    )
    try:
        result = lint_paths([Path(p) for p in args.paths], **lint_kwargs)
        if args.fix:
            fixed_paths, dropped = apply_fixes(result.diagnostics)
            if fixed_paths:
                for path in fixed_paths:
                    print(f"repro-lint: fixed {path}", file=out)
                result = lint_paths(
                    [Path(p) for p in args.paths], **lint_kwargs
                )
            for diagnostic in dropped:
                print(
                    f"repro-lint: could not auto-fix "
                    f"{diagnostic.path}:{diagnostic.line} "
                    f"[{diagnostic.rule_id}]",
                    file=sys.stderr,
                )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except RuntimeError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        Baseline.from_diagnostics(result.diagnostics).save(
            Path(args.write_baseline)
        )
        print(
            f"repro-lint: wrote {len(result.diagnostics)} finding(s) to "
            f"{args.write_baseline}",
            file=out,
        )
        return EXIT_CLEAN

    if args.baseline:
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"repro-lint: cannot read baseline {args.baseline}: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        new, baselined = baseline.split(result.diagnostics)
        result.diagnostics = new
        if baselined:
            print(
                f"repro-lint: {len(baselined)} baselined finding(s) hidden",
                file=out,
            )

    if args.format == "json":
        _render_json(result, out)
    elif args.format == "sarif":
        _render_sarif(result, out)
    else:
        _render_text(result, statistics=args.statistics, out=out)
    return EXIT_FINDINGS if result.exit_code else EXIT_CLEAN
