"""Command-line interface: ``python -m repro.lint [paths...]``.

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, Optional, Sequence

from .engine import LintResult, lint_paths
from .rules import RULES, rule_ids

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "AST-based invariant & layering checks for the repro package "
            "(rules R1-R5; see DESIGN.md 'Static analysis & invariants')"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (e.g. R1,R3); default all",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append a per-rule finding count to text output",
    )
    return parser


def _print_rules(out: IO[str]) -> None:
    for rule in RULES:
        print(f"{rule.id}  {rule.name:24s} {rule.description}", file=out)


def _render_text(result: LintResult, *, statistics: bool, out: IO[str]) -> None:
    for diagnostic in result.diagnostics:
        print(diagnostic.format_text(), file=out)
    if statistics and result.diagnostics:
        counts: dict[str, int] = {}
        for diagnostic in result.diagnostics:
            counts[diagnostic.rule_id] = counts.get(diagnostic.rule_id, 0) + 1
        print("--", file=out)
        for rule_id in sorted(counts):
            print(f"{rule_id}: {counts[rule_id]}", file=out)
    summary = (
        f"repro-lint: {len(result.diagnostics)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    if result.suppressed_count:
        summary += f", {result.suppressed_count} suppressed"
    print(summary, file=out)


def _render_json(result: LintResult, out: IO[str]) -> None:
    payload = {
        "findings": [d.to_json() for d in result.diagnostics],
        "files_checked": result.files_checked,
        "suppressed": result.suppressed_count,
        "rules": rule_ids(),
    }
    json.dump(payload, out, indent=2)
    print(file=out)


def main(argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules(out)
        return EXIT_CLEAN
    selected: Optional[list[str]] = None
    if args.select:
        selected = [part.strip().upper() for part in args.select.split(",") if part.strip()]
        known = {rid.upper() for rid in rule_ids()}
        unknown = [rid for rid in selected if rid not in known]
        if unknown:
            print(
                f"repro-lint: unknown rule id(s): {', '.join(unknown)} "
                f"(known: {', '.join(rule_ids())})",
                file=sys.stderr,
            )
            return EXIT_USAGE
    try:
        result = lint_paths([Path(p) for p in args.paths], selected_ids=selected)
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.format == "json":
        _render_json(result, out)
    else:
        _render_text(result, statistics=args.statistics, out=out)
    return EXIT_FINDINGS if result.exit_code else EXIT_CLEAN
