"""Suppression comments: ``# repro-lint: disable=R1[,R2]``.

Two scopes are supported:

- ``# repro-lint: disable=R1,R4`` — suppresses the named rules on the
  physical line carrying the comment (trailing or standalone; a
  standalone comment suppresses the *next* non-comment line as well, so
  a finding can be silenced without overlong lines).
- ``# repro-lint: disable-file=R2`` — suppresses the named rules for the
  whole file.

``disable=all`` suppresses every rule in the given scope.
"""

from __future__ import annotations

import re
import tokenize
from io import StringIO
from typing import Dict, FrozenSet, Iterable, Set

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<rules>[A-Za-z0-9_,\s-]+)"
)

ALL = "all"


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


class SuppressionIndex:
    """Per-file index answering "is rule R suppressed at line L?"."""

    def __init__(self, file_rules: FrozenSet[str], line_rules: Dict[int, FrozenSet[str]]):
        self._file_rules = file_rules
        self._line_rules = line_rules

    @property
    def file_rules(self) -> FrozenSet[str]:
        """Rules suppressed for the whole file (``disable-file=...``)."""
        return self._file_rules

    @property
    def line_rules(self) -> Dict[int, FrozenSet[str]]:
        """Line -> rules suppressed on that line (read-only view)."""
        return dict(self._line_rules)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        """Build the index by tokenizing ``source`` and reading comments.

        Tokenization (rather than a per-line regex) means directives
        inside string literals are ignored, so lint fixtures and
        documentation can mention the syntax without self-suppressing.
        Falls back to an empty index if the source fails to tokenize;
        the engine reports the syntax error separately.
        """
        file_rules: Set[str] = set()
        line_rules: Dict[int, Set[str]] = {}
        standalone: Dict[int, FrozenSet[str]] = {}
        code_lines: Set[int] = set()
        try:
            tokens = list(tokenize.generate_tokens(StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls(frozenset(), {})
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _DIRECTIVE_RE.search(tok.string)
                if not match:
                    continue
                rules = _parse_rule_list(match.group("rules"))
                if match.group("scope") == "disable-file":
                    file_rules |= rules
                else:
                    line_rules.setdefault(tok.start[0], set()).update(rules)
                    # Track standalone comments (nothing but whitespace
                    # before the hash) so they also cover the next line.
                    prefix = tok.line[: tok.start[1]]
                    if not prefix.strip():
                        standalone[tok.start[0]] = rules
            elif tok.type not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                code_lines.add(tok.start[0])
        # A standalone directive suppresses the next code-bearing line.
        if standalone:
            ordered_code = sorted(code_lines)
            for comment_line, rules in standalone.items():
                for code_line in ordered_code:
                    if code_line > comment_line:
                        line_rules.setdefault(code_line, set()).update(rules)
                        break
        return cls(
            frozenset(file_rules),
            {line: frozenset(rules) for line, rules in line_rules.items()},
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if ALL.upper() in self._file_rules or rule_id in self._file_rules:
            return True
        at_line = self._line_rules.get(line, frozenset())
        return ALL.upper() in at_line or rule_id in at_line

    def suppressed_anywhere(self) -> Iterable[str]:
        """All rule ids mentioned in any directive (for ``--list-suppressions``)."""
        seen: Set[str] = set(self._file_rules)
        for rules in self._line_rules.values():
            seen |= rules
        return sorted(seen)
