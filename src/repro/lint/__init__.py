"""repro-lint: AST-based invariant and layering checks for this repository.

The correctness of the reproduction rests on contracts the Python type
system cannot express — the Zipf singularity at ``s = 1`` (paper eq. 6/7),
the tiered-latency ordering ``d0 < d1 <= d2`` behind ``γ``, the
coordination bound ``0 <= x <= c`` and Lemma 1's existence conditions.
This package encodes those paper-level contracts as five static-analysis
rules and enforces them over the whole tree on every PR:

- **R1 exception-discipline** — deliberate failures inside ``repro`` must
  use the :mod:`repro.errors` hierarchy, never bare ``ValueError`` /
  ``RuntimeError`` / ``Exception``.
- **R2 import-layering** — the architecture DAG (``core`` below
  ``simulation``/``analysis``/``ccn``, nothing imports ``cli``), declared
  once in :data:`repro.lint.rules.r2_layering.ALLOWED_IMPORTS`.
- **R3 domain-guard** — public functions taking ``s``/``exponent``,
  ``d0/d1/d2`` or capacity parameters must validate them (directly or via
  :mod:`repro.core.validation`) before numeric use.
- **R4 numpy-aliasing** — no in-place mutation of array parameters in the
  ``simulation``/``ccn`` hot paths.
- **R5 equation-traceability** — public ``core`` functions must cite the
  paper equation/section they implement in their docstring.

Run it as ``python -m repro.lint src/ tests/`` or ``make lint``.
Suppress a finding with ``# repro-lint: disable=R1`` on the offending
line, or ``# repro-lint: disable-file=R4`` anywhere in the file.

This package deliberately imports nothing from the rest of ``repro``
(and nothing outside the standard library) so that it can lint a broken
tree and so the layering rule can require that no runtime module depends
on it.
"""

from __future__ import annotations

from .diagnostics import Diagnostic, Severity
from .engine import LintResult, discover_files, lint_file, lint_paths
from .rules import RULES, Rule, rule_ids

__all__ = [
    "Diagnostic",
    "Severity",
    "LintResult",
    "Rule",
    "RULES",
    "rule_ids",
    "discover_files",
    "lint_file",
    "lint_paths",
]
