"""repro-lint: whole-program invariant and layering checks for this repo.

The correctness of the reproduction rests on contracts the Python type
system cannot express — the Zipf singularity at ``s = 1`` (paper eq. 6/7),
the tiered-latency ordering ``d0 < d1 <= d2`` behind ``γ``, the
coordination bound ``0 <= x <= c``, Lemma 1's existence conditions, and
the bit-for-bit equivalence contracts between the scalar and batched
kernels (DESIGN.md §§9/11/12).  This package encodes those paper-level
contracts as a two-phase static-analysis framework:

**Phase 1** builds a :class:`~repro.lint.project.ProjectIndex` — per-
module symbol tables, the import graph, and re-export resolution — that
every rule can consult.  **Phase 2** runs nine per-file rules plus one
whole-program rule:

- **R1 exception-discipline** — deliberate failures inside ``repro``
  use the :mod:`repro.errors` hierarchy, never bare ``ValueError`` /
  ``RuntimeError`` / ``Exception``.
- **R2 import-layering** — the architecture DAG (``core`` below
  ``simulation``/``analysis``/``ccn``, nothing imports ``cli``),
  declared once in :data:`repro.lint.rules.r2_layering.ALLOWED_IMPORTS`.
- **R3 domain-guard** — public functions taking ``s``/``exponent``,
  ``d0/d1/d2`` or capacity parameters must validate them before use.
- **R4 numpy-aliasing** — no in-place mutation of array parameters in
  the ``simulation``/``ccn`` hot paths.
- **R5 equation-traceability** — public ``core`` functions must cite
  the paper equation/section they implement.
- **R6 observability-discipline** — obs integration layering rules.
- **R7 rng-determinism** — no module-global RNG state in simulation/
  core/catalog/adaptive; every ``default_rng`` traces to an explicit
  seed or ``SeedSequence``.
- **R8 kernel-dtype-discipline** — combined-key ``np.bincount``
  encodings carry explicit ``int64`` dtypes and an overflow-bound
  comment.
- **R9 span-pairing** — obs spans closed on all paths; counters stay
  monotone (no gauge-as-counter).
- **R10 dead-public-API** (whole-program) — exported names must be
  referenced somewhere outside their defining module.

The engine is incremental: results are cached under ``.lint-cache/``
keyed by content hash and invalidated transitively through the import
graph, so a clean tree re-parses nothing.  ``--format sarif`` emits
SARIF 2.1.0 for CI; ``--fix`` applies mechanical fixes; ``--changed``
lints only git-changed files plus their importers.

Run it as ``python -m repro.lint src/ tests/``, ``repro lint ...`` or
``make lint`` (``make lint-full`` bypasses the cache).  Suppress a
finding with ``# repro-lint: disable=R1`` on the offending line, or
``# repro-lint: disable-file=R4`` anywhere in the file.

This package deliberately imports nothing from the rest of ``repro``
(and nothing outside the standard library) so that it can lint a broken
tree and so the layering rule can require that no runtime module other
than the CLI depends on it.
"""

from __future__ import annotations

from .baseline import Baseline
from .cache import DEFAULT_CACHE_DIR, IncrementalCache
from .diagnostics import Diagnostic, Fix, Severity
from .engine import (
    LintResult,
    discover_files,
    git_changed_files,
    lint_file,
    lint_paths,
)
from .fixes import apply_fixes
from .project import ModuleSummary, ProjectIndex
from .rules import PROJECT_RULES, RULES, ProjectRule, Rule, rule_ids
from .sarif import to_sarif

__all__ = [
    "Baseline",
    "Diagnostic",
    "Fix",
    "Severity",
    "LintResult",
    "ModuleSummary",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "RULES",
    "PROJECT_RULES",
    "rule_ids",
    "discover_files",
    "git_changed_files",
    "lint_file",
    "lint_paths",
    "apply_fixes",
    "to_sarif",
    "IncrementalCache",
    "DEFAULT_CACHE_DIR",
]
