"""R1 — exception-discipline.

Library code must raise exceptions from the :mod:`repro.errors`
hierarchy so callers can catch ``ReproError`` once and let genuine
programming errors (``TypeError`` and friends) propagate.  Raising a
bare ``ValueError``/``RuntimeError``/``Exception`` from ``repro`` breaks
that contract: a caller catching ``ReproError`` misses the failure, and
a caller forced to catch ``ValueError`` also swallows unrelated bugs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: Exception names whose bare use marks an undisciplined raise.  The
#: :mod:`repro.errors` classes multiply inherit from the right builtin
#: (e.g. ``ParameterError`` is a ``ValueError``) so switching costs
#: callers nothing.
FORBIDDEN_RAISES = frozenset({"ValueError", "RuntimeError", "Exception"})

#: Units exempt from the rule: ``errors`` defines the hierarchy itself
#: and ``lint`` is standalone by design (it may not import ``repro.errors``).
EXEMPT_UNITS = frozenset({"errors", "lint"})


def _raised_name(node: ast.Raise) -> Optional[str]:
    """The plain exception class name of a ``raise``, if identifiable."""
    exc = node.exc
    if exc is None:  # bare re-raise inside except: always fine
        return None
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


class ExceptionDisciplineRule(Rule):
    id = "R1"
    name = "exception-discipline"
    description = (
        "raise ReproError subclasses (repro.errors) instead of bare "
        "ValueError/RuntimeError/Exception inside the repro package"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro or ctx.repro_unit in EXEMPT_UNITS:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            raised = _raised_name(node)
            if raised in FORBIDDEN_RAISES:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"raise of bare {raised}; use a ReproError subclass from "
                    f"repro.errors (e.g. ParameterError) so callers can catch "
                    f"library failures uniformly",
                )
