"""R5 — equation-traceability.

Every public function and class in ``repro.core`` implements a specific
piece of the paper's analysis.  Requiring the docstring to cite the
equation, section, lemma or theorem it reproduces keeps the model code
auditable against the paper: a reviewer can open the PDF next to the
module and check term by term.  (This mirrors how the reproduction was
validated in the first place; an uncited formula is where transcription
errors hide.)
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Union

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: What counts as a citation: an equation/section/figure/table number, a
#: lemma/theorem/corollary reference, an appendix pointer, or an
#: explicit "paper" mention (used for glue that implements no single
#: numbered result but explains its provenance).
CITATION_RE = re.compile(
    r"(?i)(eq\.?\s*\(?\d|equation\s*\(?\d|§|sec(?:tion)?\.?\s*[IVX\d]"
    r"|lemma\s*\d|theorem\s*\d|corollary\s*\d|proposition\s*\d"
    r"|appendix|paper|fig(?:ure)?\.?\s*\d|table\s*[IVX\d])"
)

#: Only the analytical core must be equation-traceable; simulator and
#: analysis layers cite at module level where appropriate.
WATCHED_UNITS = frozenset({"core"})

_Def = Union[ast.FunctionDef, ast.ClassDef]


def _public_defs(tree: ast.Module) -> Iterator[_Def]:
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.ClassDef)) and not node.name.startswith("_"):
            yield node


class EquationTraceabilityRule(Rule):
    id = "R5"
    name = "equation-traceability"
    description = (
        "public functions/classes in repro.core must cite the paper "
        "equation/section they implement in their docstring"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.repro_unit not in WATCHED_UNITS:
            return
        for node in _public_defs(ctx.tree):
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            doc = ast.get_docstring(node)
            if doc is None:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"public core {kind} {node.name!r} has no docstring; core "
                    f"code must cite the paper equation/section it implements",
                )
            elif not CITATION_RE.search(doc):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"docstring of public core {kind} {node.name!r} cites no "
                    f"paper equation/section/lemma; add the reference it "
                    f"implements (e.g. 'eq. 7', '§IV-B', 'Theorem 2')",
                )
