"""R9 — span-pairing.

:mod:`repro.obs` spans are a LIFO stack (DESIGN.md §10): ``span()``
pushes the handle at *call* time and only ``__exit__`` pops it.  A span
opened without a guaranteed close therefore poisons the whole session —
every later close raises ``ObservabilityError: spans must nest``, and
phase totals silently stop attributing time.  The sanctioned shapes are
the ``with`` statement and, for code that must hold a handle across a
non-lexical region, the explicit ``try``/``finally`` pairing:

.. code-block:: python

    with obs.span("solve.grid"):          # preferred
        ...

    handle = obs.span("epoch")            # manual: allowed only as
    try:                                   # assignment immediately
        ...                                # followed by try/finally
    finally:                               # that calls __exit__
        handle.__exit__(None, None, None)

The rule also guards the metrics taxonomy: counters are *monotone*
(add-merge across workers, §10), so a counter must never be decremented
and a gauge must never be used as a counter by reading its own
``.value`` back and incrementing it — merge semantics (last-write-wins)
would drop worker contributions.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set

from ..context import ModuleContext
from ..diagnostics import Diagnostic, Fix
from . import Rule

#: Units exempt from pairing discipline: obs implements the machinery
#: (its internals legitimately hold open handles), lint is standalone.
EXEMPT_UNITS = frozenset({"obs", "lint"})


def _is_span_open(node: ast.Call) -> bool:
    """A call that opens a span: ``<expr>.span(<name>)``.

    Requires exactly one non-integer positional argument so
    ``re.Match.span()``/``match.span(1)`` do not false-positive.
    """
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "span"
        and len(node.args) == 1
        and not node.keywords
        and not (
            isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, int)
        )
    )


def _try_closes(handle: str, try_stmt: ast.Try) -> bool:
    """Does the try's ``finally`` call ``<handle>.__exit__``?"""
    for stmt in try_stmt.finalbody:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "__exit__"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == handle
            ):
                return True
    return False


def _suite_end_line(suite: Sequence[ast.stmt]) -> int:
    last = suite[-1]
    return getattr(last, "end_lineno", last.lineno) or last.lineno


class SpanPairingRule(Rule):
    id = "R9"
    name = "span-pairing"
    description = (
        "obs spans must close on all paths (with-statement or "
        "try/finally); counters are monotone-only, no gauge-as-counter"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        unit = ctx.repro_unit
        if unit is None or unit in EXEMPT_UNITS:
            return
        yield from self._check_span_opens(ctx)
        yield from self._check_metric_taxonomy(ctx, unit)

    # -- span open/close pairing ---------------------------------------
    def _check_span_opens(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        sanctioned: Set[int] = set()
        # Pass 1: mark span-open calls in sanctioned positions.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With) or isinstance(node, ast.AsyncWith):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        if isinstance(sub, ast.Call) and _is_span_open(sub):
                            sanctioned.add(id(sub))
            elif isinstance(node, ast.Return) and node.value is not None:
                # span factories (e.g. a session method returning the
                # handle) delegate the pairing duty to their caller.
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call) and _is_span_open(sub):
                        sanctioned.add(id(sub))
            elif isinstance(node, ast.Call):
                # A span handle passed straight into another call (e.g.
                # an ExitStack.enter_context) transfers ownership.
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Call) and _is_span_open(sub):
                            sanctioned.add(id(sub))
        # Pass 2: assignments followed by try/finally are sanctioned;
        # walk every suite so "statement followed by" is well-defined.
        for suite in self._suites(ctx.tree):
            for pos, stmt in enumerate(suite):
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Call)
                    and _is_span_open(stmt.value)
                ):
                    continue
                handle = stmt.targets[0].id
                follower = suite[pos + 1] if pos + 1 < len(suite) else None
                if isinstance(follower, ast.Try) and _try_closes(handle, follower):
                    sanctioned.add(id(stmt.value))
                else:
                    sanctioned.add(id(stmt.value))  # report once, below
                    rest = suite[pos + 1 :]
                    fix = None
                    if rest:
                        fix = Fix(
                            "span_try_finally",
                            {
                                "assign_line": stmt.lineno,
                                "block_start_line": rest[0].lineno,
                                "block_end_line": _suite_end_line(rest),
                                "indent": stmt.col_offset,
                                "handle": handle,
                            },
                        )
                    yield self.diagnostic(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset,
                        f"span handle {handle!r} opened without a guaranteed "
                        f"close: use 'with ...span(...)' or follow the "
                        f"assignment immediately with try/finally calling "
                        f"{handle}.__exit__(None, None, None)",
                        fix=fix,
                    )
        # Pass 3: any remaining span open is unsanctioned (dropped
        # handle, stored attribute, etc.).
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _is_span_open(node)
                and id(node) not in sanctioned
            ):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "span opened here but never closed on this path; spans "
                    "push a LIFO stack at call time — every open must pair "
                    "with a close (use a with-statement)",
                )

    def _suites(self, tree: ast.Module) -> Iterator[List[ast.stmt]]:
        """Every statement suite in the module (bodies, orelse, ...)."""
        yield tree.body
        for node in ast.walk(tree):
            for field in ("body", "orelse", "finalbody"):
                suite = getattr(node, field, None)
                if (
                    isinstance(suite, list)
                    and suite
                    and all(isinstance(s, ast.stmt) for s in suite)
                    and not isinstance(node, ast.Module)
                ):
                    yield suite

    # -- metric taxonomy ------------------------------------------------
    def _check_metric_taxonomy(
        self, ctx: ModuleContext, unit: str
    ) -> Iterator[Diagnostic]:
        gauge_names = self._gauge_bound_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            target = node.func.value
            # counter(...).add(negative) — counters are monotone.
            if node.func.attr == "add" and self._is_metric_chain(target, "counter"):
                if node.args and self._is_negative(node.args[0]):
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"counter decremented in unit {unit!r}; obs counters "
                        f"are monotone (add-merge across workers) — model "
                        f"decreases with a gauge instead",
                    )
            # gauge(...).set(<reads own .value back>) — counter in disguise.
            if node.func.attr == "set" and (
                self._is_metric_chain(target, "gauge")
                or (isinstance(target, ast.Name) and target.id in gauge_names)
            ):
                for arg in node.args:
                    if isinstance(arg, ast.BinOp) and any(
                        isinstance(sub, ast.Attribute) and sub.attr == "value"
                        for sub in ast.walk(arg)
                    ):
                        yield self.diagnostic(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"gauge used as a counter in unit {unit!r} "
                            f"(set(... .value ...)); gauges merge "
                            f"last-write-wins and would drop worker "
                            f"contributions — use counter().add()",
                        )
                        break

    @staticmethod
    def _is_metric_chain(target: ast.expr, factory: str) -> bool:
        """``<expr>.gauge("x").set`` / ``<expr>.counter("x").add`` chains."""
        return (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Attribute)
            and target.func.attr == factory
        )

    @staticmethod
    def _gauge_bound_names(tree: ast.Module) -> Set[str]:
        """Local names assigned from a ``.gauge(...)`` call."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "gauge"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _is_negative(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
        ) or (
            isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and node.value < 0
        )
