"""R6 — observability-discipline.

With :mod:`repro.obs` in place there is exactly one sanctioned way for
library code to measure time or report progress: spans and sinks.
Ad-hoc ``time.time()``/``time.perf_counter()`` calls and bare
``print()`` statements scattered through ``src/repro`` bypass the
registry (so the data never reaches an events file, never merges across
workers, and never lands in a run manifest) and pollute stdout that the
CLI owns.  This rule forbids both outside the units that legitimately
need them: ``obs`` itself (the only place allowed to read the clock),
``cli``/``__main__`` (the user-facing surface that owns stdout) and
``lint`` (standalone tooling).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: Units where wall-clock reads and printing are part of the job.
EXEMPT_UNITS = frozenset({"obs", "cli", "lint", "__main__"})

#: ``time``-module functions that read a wall/monotonic clock.
CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _time_module_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the ``time`` module (``import time as t``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _clock_name_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to clock functions (``from time import perf_counter``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time" and not node.level:
            for alias in node.names:
                if alias.name in CLOCK_FUNCTIONS:
                    aliases.add(alias.asname or alias.name)
    return aliases


class ObservabilityDisciplineRule(Rule):
    id = "R6"
    name = "observability-discipline"
    description = (
        "library code must use repro.obs spans/sinks instead of ad-hoc "
        "time.time()/perf_counter() calls or bare print()"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        unit = ctx.repro_unit
        if unit is None or unit in EXEMPT_UNITS:
            return
        time_aliases = _time_module_aliases(ctx.tree)
        clock_aliases = _clock_name_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in time_aliases
                and fn.attr in CLOCK_FUNCTIONS
            ):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"ad-hoc clock read time.{fn.attr}() in unit {unit!r}; "
                    f"wrap the timed region in an obs span "
                    f"(repro.obs.get_session().span(...)) instead",
                )
            elif isinstance(fn, ast.Name) and fn.id in clock_aliases:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"ad-hoc clock read {fn.id}() (imported from time) in "
                    f"unit {unit!r}; wrap the timed region in an obs span "
                    f"(repro.obs.get_session().span(...)) instead",
                )
            elif isinstance(fn, ast.Name) and fn.id == "print":
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"bare print() in unit {unit!r}; library code must stay "
                    f"silent — record a metric/span via repro.obs, or return "
                    f"the text for the CLI to render",
                )
