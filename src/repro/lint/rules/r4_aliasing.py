"""R4 — numpy-aliasing.

The simulator and CCN data-plane hot paths pass numpy arrays around to
avoid copies.  Mutating an array *parameter* in place (``arr[...] =``,
``arr += ...``, ``np.add(..., out=arr)``) silently changes caller state
through the alias — the classic source of irreproducible metrics where a
second simulation run sees a perturbed popularity or latency vector
(cf. Fricker et al. on how mis-set traffic-mix inputs invert hit-rate
conclusions).  Intentional in-place protocols (e.g. a decay kernel
documented to update its buffer argument) must carry a line suppression,
which doubles as documentation of the aliasing contract.

Scope: functions in the ``simulation``, ``ccn`` and ``core`` units.
``core`` joined the watch list with the batched analytical solver
(``core.batch_solver``), whose memoized coefficient columns are handed
to callers as read-only views — an in-place write anywhere in ``core``
could corrupt every later solve sharing the cache.  Mutating ``self``
attributes or locals is fine; only parameters are aliased with caller
state.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: Units whose hot paths the rule watches.
WATCHED_UNITS = frozenset({"simulation", "ccn", "core"})

#: Annotation substrings marking a parameter as an array for the
#: scalar-augmented-assignment check (``param += v`` rebinds scalars
#: locally but mutates ndarrays in place).
_ARRAY_ANNOTATIONS = ("ndarray", "NDArray", "ArrayLike")


def _param_names(fn: ast.FunctionDef) -> FrozenSet[str]:
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    return frozenset(a.arg for a in args if a.arg not in ("self", "cls"))


def _array_annotated_params(fn: ast.FunctionDef) -> FrozenSet[str]:
    names = set()
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    for arg in args:
        if arg.annotation is None:
            continue
        rendered = ast.unparse(arg.annotation)
        if any(marker in rendered for marker in _ARRAY_ANNOTATIONS):
            names.add(arg.arg)
    return frozenset(names)


def _subscript_root(node: ast.AST) -> Optional[str]:
    """The base name of a (possibly nested) subscript target."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class NumpyAliasingRule(Rule):
    id = "R4"
    name = "numpy-aliasing"
    description = (
        "no in-place mutation of array parameters (subscript assignment, "
        "augmented assignment, out=) in simulation/ccn/core hot paths"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if ctx.repro_unit not in WATCHED_UNITS:
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = _param_names(fn)
            if not params:
                continue
            array_params = _array_annotated_params(fn)
            yield from self._check_function(ctx, fn, params, array_params)

    def _check_function(
        self,
        ctx: ModuleContext,
        fn: ast.FunctionDef,
        params: FrozenSet[str],
        array_params: FrozenSet[str],
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        root = _subscript_root(target)
                        if root in params:
                            yield self.diagnostic(
                                ctx,
                                node.lineno,
                                node.col_offset,
                                f"in-place subscript assignment to parameter "
                                f"{root!r} mutates caller state through the "
                                f"alias; copy first or suppress to document "
                                f"the in-place contract",
                            )
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Subscript):
                    root = _subscript_root(node.target)
                    if root in params:
                        yield self.diagnostic(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"augmented subscript assignment mutates parameter "
                            f"{root!r} in place through the alias",
                        )
                elif isinstance(node.target, ast.Name) and node.target.id in array_params:
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"augmented assignment to array parameter "
                        f"{node.target.id!r} mutates it in place (ndarray "
                        f"+= is not a rebind)",
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "out"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in params
                    ):
                        yield self.diagnostic(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"out={kw.value.id!r} writes the result into a "
                            f"parameter buffer, mutating caller state",
                        )
