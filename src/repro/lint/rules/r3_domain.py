"""R3 — domain-guard.

The paper's analysis is only valid on restricted parameter domains: the
Zipf exponent ``s`` must avoid the eq. 6/7 singularity at ``s = 1`` and
stay in ``(0, 2)``; the tiered latencies must satisfy ``d0 < d1 <= d2``
(the definition of ``γ`` divides by ``d1 - d0``); capacities and the
coordination variable must satisfy ``0 <= x <= c``.  A public function
that feeds such a parameter into arithmetic without validating it turns
a domain violation into a silent NaN or an inverted conclusion a million
requests later.

The rule requires every public module-level function (and ``__init__`` /
``__post_init__`` of public classes) taking a recognised domain
parameter to do one of:

- call a shared validator from :mod:`repro.core.validation` (or
  ``repro.core.zipf.validate_exponent``) on it,
- guard it with an explicit ``if ... raise`` / ``assert``, or
- forward it to a *trusted sink* — a constructor or function that is
  itself validated (declared in :data:`TRUSTED_SINKS`).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Tuple

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: Parameter-name classes the rule recognises, with the contract each
#: one carries (used in the finding message).
EXPONENT_PARAMS: FrozenSet[str] = frozenset({"s", "exponent", "zipf_exponent", "skew"})
LATENCY_PARAMS: FrozenSet[str] = frozenset({"d0", "d1", "d2"})
CAPACITY_PARAMS: FrozenSet[str] = frozenset(
    {"capacity", "cache_capacity", "total_capacity", "capacity_per_router"}
)

_CONTRACTS = (
    (EXPONENT_PARAMS, "Zipf exponent: s in (0, 2), s = 1 singular (paper eq. 6/7)"),
    (LATENCY_PARAMS, "tiered latency ordering d0 < d1 <= d2 (paper §III-B.1)"),
    (CAPACITY_PARAMS, "capacity bound 0 <= x <= c (paper §III-B)"),
)

#: Names whose call counts as validating every argument passed to it.
#: A function *named* like a validator is itself exempt from the rule —
#: it is the guard the rest of the tree delegates to.
VALIDATOR_NAMES: FrozenSet[str] = frozenset(
    {
        "validate_exponent",
        "require_exponent",
        "require_latency_ordering",
        "require_capacity",
        "require_probability",
        "require_positive",
        "require_finite",
        "check_existence",
    }
)

#: Callables known to validate their own domain parameters; forwarding a
#: parameter into one of these satisfies the guard.  Keep this list in
#: sync with the constructors'/functions' actual contracts.
TRUSTED_SINKS: FrozenSet[str] = frozenset(
    {
        "ZipfPopularity",
        "ZipfModel",
        "ZipfMandelbrotModel",
        "LatencyModel",
        "Scenario",
        "RoutingPerformanceModel",
        "PerformanceCostModel",
        "ProvisioningStrategy",
        "HeterogeneousModel",
        "DynamicSimulator",
        "solve_custodian",
        "solve_en_route",
        "zipf_pmf",
        "zipf_cdf",
        "harmonic_number",
        "harmonic_numbers",
        "continuous_cdf",
        "continuous_cdf_limit",
        "continuous_pdf",
        "inverse_continuous_cdf",
        "top_k_mass",
        "make_policy",
    }
)

#: Units where the rule applies.  ``lint`` is standalone; tests and
#: fixtures are out of scope because their module name is not repro.*.
EXEMPT_UNITS = frozenset({"lint"})


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_super_init(call: ast.Call) -> bool:
    """``super().__init__(...)`` / ``Base.__init__(self, ...)`` forwarding.

    Forwarding a parameter to a base-class constructor is trusted: the
    base ``__init__`` is itself subject to this rule, so the guard
    requirement propagates to the class that actually stores the value
    (e.g. ``CachePolicy.__init__`` validating ``capacity`` for every
    replacement policy).
    """
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in ("__init__", "__post_init__")


def _names_in(node: ast.AST) -> FrozenSet[str]:
    return frozenset(
        child.id for child in ast.walk(node) if isinstance(child, ast.Name)
    )


def _domain_params(fn: ast.FunctionDef) -> List[Tuple[str, str]]:
    """Recognised ``(param, contract)`` pairs of a function signature."""
    params: List[Tuple[str, str]] = []
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    for arg in args:
        if arg.arg in ("self", "cls"):
            continue
        for names, contract in _CONTRACTS:
            if arg.arg in names:
                params.append((arg.arg, contract))
    return params


def _is_guarded(fn: ast.FunctionDef, param: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = _callee_name(node)
            if callee in VALIDATOR_NAMES or callee in TRUSTED_SINKS or _is_super_init(node):
                arg_names: FrozenSet[str] = frozenset()
                for arg in node.args:
                    arg_names |= _names_in(arg)
                for kw in node.keywords:
                    arg_names |= _names_in(kw.value)
                if param in arg_names:
                    return True
        elif isinstance(node, ast.If):
            # An explicit ``if <test mentioning param>: ... raise`` guard.
            if param in _names_in(node.test) and any(
                isinstance(inner, ast.Raise) for inner in ast.walk(node)
            ):
                return True
        elif isinstance(node, ast.Assert):
            if param in _names_in(node.test):
                return True
    return False


def _public_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, str]]:
    """Module-level public functions and init methods of public classes."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            yield node, node.name
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            for member in node.body:
                if isinstance(member, ast.FunctionDef) and member.name in (
                    "__init__",
                    "__post_init__",
                ):
                    yield member, f"{node.name}.{member.name}"


class DomainGuardRule(Rule):
    id = "R3"
    name = "domain-guard"
    description = (
        "public functions taking s/exponent, d0/d1/d2 or capacity parameters "
        "must validate them (repro.core.validation) before numeric use"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not ctx.in_repro or ctx.repro_unit in EXEMPT_UNITS:
            return
        for fn, qualname in _public_functions(ctx.tree):
            if fn.name in VALIDATOR_NAMES:
                continue  # this *is* a validator; it defines the guard
            for param, contract in _domain_params(fn):
                if not _is_guarded(fn, param):
                    yield self.diagnostic(
                        ctx,
                        fn.lineno,
                        fn.col_offset,
                        f"public function {qualname!r} uses domain parameter "
                        f"{param!r} without validation ({contract}); call a "
                        f"repro.core.validation helper or forward to a trusted "
                        f"sink before numeric use",
                    )
