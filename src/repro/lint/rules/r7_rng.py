"""R7 — rng-determinism.

Every experimental claim in this reproduction rests on bit-exact
replays: the batched kernels are validated against their scalar
references *per seed* (DESIGN.md §§9/11), and the dynamic simulator's
per-router streams are carved from one ``SeedSequence.spawn`` lineage
precisely because ad-hoc seed arithmetic collided once already (the
PR 2 ``seed=0`` collision fix).  Any read of *global* RNG state — the
legacy ``np.random.*`` singleton or the stdlib ``random`` module — or
any ``default_rng()`` constructed without a seed breaks that property
silently: results drift between runs and the equivalence suites can no
longer certify the kernels.

This rule therefore enforces, in the stochastic units
(``simulation``, ``core``, ``catalog``, ``adaptive``, ``topology`` —
the synthetic generators promise seed → identical graph — and
``approx``, whose fixed points must agree bit-exactly with the
cross-validation baselines, ``ccn``, whose batched packet engine is
pinned to the scalar simulator per seed, and ``service``, whose control
loop must replay a recorded measurement stream bit-exactly):

- no calls to legacy global-state ``np.random`` functions
  (``np.random.seed``, ``np.random.rand``, ``np.random.choice``, ...);
  only the explicit constructors (``default_rng``, ``Generator``,
  ``SeedSequence`` and the BitGenerators) are sanctioned;
- no stdlib ``random`` module-level functions (``random.random()``
  et al.) — ``random.Random(seed)`` instances are allowed;
- every ``np.random.default_rng(...)`` call must receive an explicit
  seed/``SeedSequence`` argument, so each generator is derivable from a
  seed parameter or a ``SeedSequence.spawn`` lineage;
- ``np.random.Generator(bitgen())`` with an unseeded BitGenerator is
  flagged for the same reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..context import ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

#: Units whose results must replay bit-exactly from recorded seeds.
SCOPED_UNITS = frozenset(
    {
        "simulation",
        "core",
        "catalog",
        "adaptive",
        "topology",
        "approx",
        "ccn",
        "service",
    }
)

#: ``np.random`` attributes that do NOT touch global state: explicit
#: constructors and seed-lineage machinery.
SANCTIONED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: stdlib ``random`` module-level functions that mutate/read the hidden
#: global ``Random`` instance.
GLOBAL_STDLIB_RANDOM = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "getrandbits",
        "randbytes",
    }
)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the ``numpy`` module."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or alias.name)
                elif alias.name.startswith("numpy.") and not alias.asname:
                    # ``import numpy.random`` binds the top package.
                    aliases.add("numpy")
    return aliases


def _np_random_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to ``numpy.random`` itself."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy.random" and alias.asname:
                    aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy" and not node.level:
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _stdlib_random_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _direct_constructor_aliases(tree: ast.Module) -> Set[str]:
    """Names imported directly: ``from numpy.random import default_rng``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == "numpy.random"
            and not node.level
        ):
            for alias in node.names:
                if alias.name == "default_rng":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _is_unseeded_call(node: ast.Call) -> bool:
    """True when the constructor call carries no usable seed argument."""
    if node.args and not (
        isinstance(node.args[0], ast.Constant) and node.args[0].value is None
    ):
        return False
    for kw in node.keywords:
        if kw.arg in (None, "seed") and not (
            isinstance(kw.value, ast.Constant) and kw.value.value is None
        ):
            return False
    return True


class RngDeterminismRule(Rule):
    id = "R7"
    name = "rng-determinism"
    description = (
        "stochastic units must derive every Generator from an explicit "
        "seed or SeedSequence lineage; no global np.random/random state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        unit = ctx.repro_unit
        if unit not in SCOPED_UNITS:
            return
        np_aliases = _numpy_aliases(ctx.tree)
        npr_aliases = _np_random_aliases(ctx.tree)
        stdlib_aliases = _stdlib_random_aliases(ctx.tree) - npr_aliases
        direct_rng = _direct_constructor_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            # np.random.<fn>(...) — fn is Attribute over Attribute(np, random)
            attr_chain = None
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Attribute)
                and isinstance(fn.value.value, ast.Name)
                and fn.value.value.id in np_aliases
                and fn.value.attr == "random"
            ):
                attr_chain = fn.attr
            elif (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in npr_aliases
            ):
                attr_chain = fn.attr
            if attr_chain is not None:
                if attr_chain not in SANCTIONED_NP_RANDOM:
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"np.random.{attr_chain}() reads/mutates the global "
                        f"numpy RNG state in unit {unit!r}; use an explicit "
                        f"np.random.default_rng(seed) (or a SeedSequence.spawn "
                        f"child) threaded through the call instead",
                    )
                elif attr_chain == "default_rng" and _is_unseeded_call(node):
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"unseeded np.random.default_rng() in unit {unit!r} is "
                        f"entropy-seeded and cannot replay; pass an explicit "
                        f"seed or a SeedSequence.spawn child",
                    )
                elif attr_chain == "Generator" and node.args:
                    inner = node.args[0]
                    if isinstance(inner, ast.Call) and _is_unseeded_call(inner):
                        yield self.diagnostic(
                            ctx,
                            node.lineno,
                            node.col_offset,
                            f"np.random.Generator over an unseeded BitGenerator "
                            f"in unit {unit!r} cannot replay; seed the "
                            f"BitGenerator explicitly",
                        )
                continue
            # from numpy.random import default_rng; default_rng()
            if isinstance(fn, ast.Name) and fn.id in direct_rng:
                if _is_unseeded_call(node):
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        f"unseeded default_rng() in unit {unit!r} is "
                        f"entropy-seeded and cannot replay; pass an explicit "
                        f"seed or a SeedSequence.spawn child",
                    )
                continue
            # stdlib random.<fn>(...)
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id in stdlib_aliases
                and fn.attr in GLOBAL_STDLIB_RANDOM
            ):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"stdlib random.{fn.attr}() uses the hidden global Random "
                    f"instance in unit {unit!r}; construct random.Random(seed) "
                    f"or use numpy default_rng(seed) instead",
                )
