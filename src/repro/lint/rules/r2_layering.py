"""R2 — import-layering.

Enforces the architecture DAG of the reproduction.  The layer order
(bottom to top) is::

    errors ── obs                  (obs: metrics/tracing, errors-only)
      └─ core ── topology          (core↔topology: see note below)
           └─ approx / catalog     (approx: Che/TTL fixed points, no
                └─ baselines / simulation / hetero    simulation access)
                     └─ ccn / adaptive
                          └─ analysis / service
                               └─ cli

:data:`ALLOWED_IMPORTS` below is the single place the allowed-edge table
is declared; DESIGN.md renders the same table in prose.  Key paper-level
motivations: the analytical model (``core``) must stay runnable without
the simulator so Theorem/Lemma checks cannot depend on simulation
artefacts, and nothing may import ``cli`` or ``lint`` so the library
stays embeddable.

Note on ``core -> topology``: :meth:`repro.core.scenario.Scenario.from_topology`
bridges measured topologies (paper §V-A, Table III) into the model stack
via a function-local import; the edge is sanctioned here rather than
hidden.  ``topology`` itself depends only on ``errors``, so no cycle can
form.

Note on ``cli -> lint``: the ``repro lint`` subcommand delegates to
:mod:`repro.lint.cli`, so the CLI (and only the CLI) may import ``lint``.
``lint`` itself still imports nothing from ``repro``, so the "lint a
broken tree" property and acyclicity are preserved.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

from ..context import ROOT_UNIT, ModuleContext
from ..diagnostics import Diagnostic
from . import Rule

_FOUNDATION: FrozenSet[str] = frozenset({"errors", "obs"})
_MODEL: FrozenSet[str] = _FOUNDATION | {"core", "topology"}
_DATA: FrozenSet[str] = _MODEL | {"catalog"}

#: The allowed-edge table: architectural unit -> units it may import.
#: A unit may always import itself; ``repro`` root re-exports (``<root>``)
#: may import everything except ``cli`` and ``lint``.
ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "errors": frozenset(),
    "lint": frozenset(),  # standalone: stdlib only
    "obs": frozenset({"errors"}),  # foundation: every layer may record into it
    "core": frozenset({"errors", "obs", "topology"}),
    "topology": frozenset({"errors"}),
    # approx sits beside catalog: the Che/TTL approximation layer must
    # stay runnable without the simulation stack so cross-validation is
    # a genuine comparison (the harness lives in analysis, which sees
    # both sides).
    "approx": _MODEL,
    "catalog": _MODEL,
    "baselines": _DATA,
    "simulation": _DATA,
    "hetero": _DATA,
    "ccn": _DATA | {"simulation"},
    "adaptive": _DATA | {"simulation"},
    # service is the online control loop: estimator + warm tracker
    # (adaptive) over the batched solver (core).  It must stay clear of
    # the simulation stack — the loop is driven by *measured* batches,
    # never by simulated traffic it generates itself.
    "service": frozenset({"errors", "obs", "core", "adaptive"}),
    "analysis": _DATA
    | {"simulation", "ccn", "baselines", "adaptive", "hetero", "approx"},
    "cli": _DATA
    | {
        "simulation",
        "ccn",
        "baselines",
        "adaptive",
        "hetero",
        "approx",
        "analysis",
        "service",
        "lint",
    },
    ROOT_UNIT: _DATA
    | {
        "simulation",
        "ccn",
        "baselines",
        "adaptive",
        "hetero",
        "approx",
        "analysis",
        "service",
    },
    "__main__": frozenset({"cli"}),
}


def _resolve_relative(module_name: str, is_package_init: bool, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of a relative ``from ... import`` statement."""
    segments = module_name.split(".")
    # For ``from . import x`` in a module, level 1 refers to the parent
    # package; in ``__init__.py`` the module name already is the package.
    if not is_package_init:
        segments = segments[:-1]
    drop = node.level - 1
    if drop > len(segments):
        return None
    base = segments[: len(segments) - drop] if drop else segments
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _imported_units(ctx: ModuleContext) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(node, unit)`` for every import of a ``repro`` unit."""
    is_init = ctx.path.name == "__init__.py"
    assert ctx.module_name is not None
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                if target == "repro" or target.startswith("repro."):
                    yield node, _unit_of(target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                target = _resolve_relative(ctx.module_name, is_init, node)
            else:
                target = node.module
            if target and (target == "repro" or target.startswith("repro.")):
                yield node, _unit_of(target)


def _unit_of(dotted: str) -> str:
    segments = dotted.split(".")
    return segments[1] if len(segments) > 1 else ROOT_UNIT


class ImportLayeringRule(Rule):
    id = "R2"
    name = "import-layering"
    description = (
        "enforce the architecture DAG declared in "
        "repro.lint.rules.r2_layering.ALLOWED_IMPORTS"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        unit = ctx.repro_unit
        if unit is None:
            return
        allowed = ALLOWED_IMPORTS.get(unit)
        if allowed is None:
            yield self.diagnostic(
                ctx,
                1,
                0,
                f"unit {unit!r} is not declared in the layering table "
                f"(repro.lint.rules.r2_layering.ALLOWED_IMPORTS); add it with "
                f"an explicit allowed-import set",
            )
            return
        for node, imported in _imported_units(ctx):
            if imported == unit:
                continue  # intra-unit imports are always fine
            if imported == ROOT_UNIT:
                # Importing the package root from inside the package
                # re-enters the public API and invites cycles.
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "importing the repro package root from inside the package "
                    "creates a cycle through the public API; import the "
                    "concrete submodule instead",
                )
                continue
            if imported not in allowed:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    f"layering violation: {unit!r} may not import {imported!r} "
                    f"(allowed: {', '.join(sorted(allowed)) or 'nothing'}); the "
                    f"DAG is declared in repro.lint.rules.r2_layering",
                )
