"""R10 — dead-public-API (whole-program).

The reproduction's public surface is its re-export chain:
``repro/__init__.py`` and the subpackage ``__init__.py`` files advertise
(via ``__all__`` or public imports) what downstream code may rely on.
An exported name that nothing inside the project — neither library code
nor the test suite — ever references is dead weight with teeth: it is
untested by construction (the API-quality gate cannot see it), it
silently rots as kernels evolve, and it widens the surface the kernel
equivalence contracts (DESIGN.md §§9/11/12) must defend.

This is the first rule that *requires* the phase-1
:class:`~repro.lint.project.ProjectIndex`: a per-file checker cannot
know whether ``repro.analysis.sweep.sweep`` is referenced from a test
three packages away.  The check is string-level and deliberately
conservative — any mention of the identifier anywhere in the project
(call, attribute access, registry-dict wiring in the defining module,
import in a non-``__init__`` module) keeps the export alive; a ``def``/
``class`` statement and an ``__all__`` string entry are *bindings*, not
mentions, so a name that is only ever defined and exported is flagged.
Re-export imports in ``__init__.py`` files are likewise discounted
(plumbing, not use) — that is handled when the index summarises each
init module, see :func:`repro.lint.project._references`.

Intentional external-only API (documented entry points exercised by
``examples/`` scripts, say) should carry an in-place suppression with a
justifying comment, following the PR 4/5 R4 convention.
"""

from __future__ import annotations

from typing import Iterator

from ..diagnostics import Diagnostic
from . import ProjectRule

#: Names whose export is structural, never "dead".
_STRUCTURAL = frozenset({"__all__", "__version__", "main"})


class DeadPublicApiRule(ProjectRule):
    id = "R10"
    name = "dead-public-api"
    description = (
        "exported names (__all__ / package-init re-exports) must be "
        "referenced somewhere in the project or tests (project rule)"
    )

    def check_project(self, project) -> Iterator[Diagnostic]:
        for path, summary in sorted(project.summaries.items()):
            module = summary.module_name
            if module is None or not (
                module == "repro" or module.startswith("repro.")
            ):
                continue
            if not summary.exports:
                continue
            for name, line, col in summary.exports:
                if name.startswith("_") or name in _STRUCTURAL:
                    continue
                if not project.referencing_files(name):
                    yield self.diagnostic(
                        path,
                        line,
                        col,
                        f"exported name {name!r} has no reference anywhere in "
                        f"the project or tests (beyond re-export plumbing); "
                        f"remove it from the public surface or suppress with "
                        f"a comment justifying the external-only use",
                    )
