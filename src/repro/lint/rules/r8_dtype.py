"""R8 — kernel-dtype-discipline.

The vectorized kernels aggregate whole batches through *combined-key*
``np.bincount`` reductions: several small integer coordinates are packed
into one flat key, e.g. ``(client·n + custodian)·6 + code`` in the
dynamic kernel (DESIGN.md §11) and ``client·4 + lookup_code`` in the
steady kernel (§9).  The correctness of every statistic the paper
reproduction reports rides on these keys never overflowing — and numpy
makes that easy to get wrong silently: the default integer dtype is
platform-dependent (int32 on Windows), ``np.arange`` inherits it, and a
key built from an int32 operand wraps negative long before anyone
notices, turning ``bincount`` into an exception at best and corrupted
counts at worst.

In the kernel units (``simulation``, ``core``, ``ccn`` — the batched
packet engine packs ``client·6 + outcome`` cohort keys) this rule
requires:

- a combined key passed to ``np.bincount`` must be materialised into a
  named variable, never built inline in the call (auditability);
- the statements constructing such a key (any arithmetic lineage) must
  carry an explicit ``int64``/``intp`` dtype marker
  (``dtype=np.int64``, ``.astype(np.int64)``, ``np.int64(...)``) so the
  key's width is pinned regardless of platform;
- those statements must be accompanied by an overflow-bound comment
  (a comment containing ``overflow``) stating why the packed key fits —
  the invariant a future refactor must re-verify;
- ``np.arange`` calls must pass an explicit ``dtype=``; the default
  integer width is platform-dependent (auto-fixable via ``--fix``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..context import ModuleContext
from ..diagnostics import Diagnostic, Fix
from . import Rule

#: Units containing batched kernels whose keys must be overflow-audited.
KERNEL_UNITS = frozenset({"simulation", "core", "ccn"})

#: Textual markers that pin an explicit 64-bit (or pointer-sized) lineage.
_INT64_MARKERS = ("int64", "intp")

#: How many lines above a key's first construction statement an
#: overflow-bound comment may sit.
_COMMENT_REACH = 4

_ARITH_OPS = (ast.Mult, ast.Add, ast.Sub, ast.LShift, ast.BitOr)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _is_np_call(node: ast.Call, np_aliases: Set[str], fn_name: str) -> bool:
    fn = node.func
    return (
        isinstance(fn, ast.Attribute)
        and fn.attr == fn_name
        and isinstance(fn.value, ast.Name)
        and fn.value.id in np_aliases
    )


def _calls_in_scope(body: Sequence[ast.stmt]) -> List[ast.Call]:
    """All Call nodes in a suite, skipping nested def/class subtrees."""
    calls: List[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    for stmt in body:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # nested scope: analysed separately
        visit(stmt)
    return calls


def _walk_scope_statements(stmt_list: Sequence[ast.stmt]) -> List[ast.stmt]:
    """Flatten a suite into all statements, skipping nested def/class."""
    out: List[ast.stmt] = []

    def visit(body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            out.append(stmt)
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for field in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, field, None)
                if inner:
                    visit(inner)
            for handler in getattr(stmt, "handlers", []) or []:
                visit(handler.body)

    visit(stmt_list)
    return out


def _has_arithmetic(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.BinOp) and isinstance(child.op, _ARITH_OPS):
            return True
    return False


def _segment(ctx: ModuleContext, stmt: ast.stmt) -> str:
    """Source text of a statement (line-sliced; robust fallback)."""
    text = ast.get_source_segment(ctx.source, stmt)
    if text is not None:
        return text
    end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
    return "\n".join(ctx.line_at(line) for line in range(stmt.lineno, end + 1))


class KernelDtypeDisciplineRule(Rule):
    id = "R8"
    name = "kernel-dtype-discipline"
    description = (
        "combined-key bincount encodings in kernel units must be named, "
        "explicitly int64, and carry an overflow-bound comment; "
        "np.arange needs an explicit dtype"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        unit = ctx.repro_unit
        if unit not in KERNEL_UNITS:
            return
        np_aliases = _numpy_aliases(ctx.tree)
        if not np_aliases:
            return
        # --- np.arange must pin its dtype (platform-dependent default).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_np_call(node, np_aliases, "arange"):
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    fix = None
                    if not any(
                        isinstance(a, ast.Constant) and isinstance(a.value, float)
                        for a in node.args
                    ):
                        end_line = getattr(node, "end_lineno", node.lineno)
                        end_col = getattr(node, "end_col_offset", None)
                        if end_line is not None and end_col is not None:
                            fix = Fix(
                                "insert",
                                {
                                    "line": end_line,
                                    "col": end_col - 1,
                                    "text": ", dtype=np.int64",
                                },
                            )
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset,
                        "np.arange without an explicit dtype: the default "
                        "integer width is platform-dependent (int32 on "
                        "Windows); pass dtype=np.int64 (or np.intp for pure "
                        "index arrays)",
                        fix=fix,
                    )
        # --- combined-key bincount discipline, per scope.
        scopes: List[Sequence[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            yield from self._check_scope(ctx, body, np_aliases)

    # -- scope-level combined-key analysis ------------------------------
    def _check_scope(
        self,
        ctx: ModuleContext,
        body: Sequence[ast.stmt],
        np_aliases: Set[str],
    ) -> Iterator[Diagnostic]:
        statements = _walk_scope_statements(body)
        calls = _calls_in_scope(body)
        # Construction statements per local name (assign + augassign).
        lineage: Dict[str, List[ast.stmt]] = {}
        for stmt in statements:
            targets: List[str] = []
            if isinstance(stmt, ast.Assign):
                targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
            elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
                targets = [stmt.target.id]
            for name in targets:
                lineage.setdefault(name, []).append(stmt)
        # bincount calls at this scope.
        seen_keys: Set[str] = set()
        for node in calls:
            if not (_is_np_call(node, np_aliases, "bincount") and node.args):
                continue
            key = node.args[0]
            if isinstance(key, ast.BinOp):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset,
                    "combined bincount key built inline; materialise it "
                    "into a named variable with an explicit int64 dtype "
                    "and an overflow-bound comment so the packing can be "
                    "audited",
                )
                continue
            if not isinstance(key, ast.Name) or key.id in seen_keys:
                continue
            stmts = lineage.get(key.id, [])
            if not stmts:
                continue
            arithmetic = [
                s
                for s in stmts
                if (isinstance(s, ast.AugAssign) and isinstance(s.op, _ARITH_OPS))
                or _has_arithmetic(
                    s.value if isinstance(s, (ast.Assign, ast.AnnAssign)) else s
                )
            ]
            if not arithmetic:
                continue  # plain gather/copy, not a combined key
            seen_keys.add(key.id)
            texts = [_segment(ctx, s) for s in stmts]
            if not any(
                marker in text for text in texts for marker in _INT64_MARKERS
            ):
                yield self.diagnostic(
                    ctx,
                    stmts[0].lineno,
                    stmts[0].col_offset,
                    f"combined key {key.id!r} has no explicit int64 "
                    f"lineage; coerce an operand (e.g. "
                    f"np.asarray(..., dtype=np.int64)) so the packed key "
                    f"cannot silently inherit a 32-bit dtype",
                )
            first_line = min(s.lineno for s in stmts)
            last_line = max(
                getattr(s, "end_lineno", s.lineno) or s.lineno for s in stmts
            )
            window = range(max(1, first_line - _COMMENT_REACH), last_line + 1)
            if not any(
                "#" in ctx.line_at(line)
                and "overflow" in ctx.line_at(line).lower()
                for line in window
            ):
                yield self.diagnostic(
                    ctx,
                    stmts[0].lineno,
                    stmts[0].col_offset,
                    f"combined key {key.id!r} lacks an overflow-bound "
                    f"comment; state the maximum packed value (e.g. "
                    f"'# key fits int64: max (n*n)*6 ..., no overflow') "
                    f"next to its construction",
                )
