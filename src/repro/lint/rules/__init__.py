"""Rule registry for repro-lint.

Each rule lives in its own module and registers a single :class:`Rule`
subclass.  The registry order defines the reporting order for findings
on the same line.

Two rule families exist since the whole-program framework landed:

- **per-file rules** (:class:`Rule`) — phase 2a, see one
  :class:`~repro.lint.context.ModuleContext` at a time (optionally with
  its ``project`` back-reference populated);
- **project rules** (:class:`ProjectRule`) — phase 2b, see the whole
  :class:`~repro.lint.project.ProjectIndex` and can reason across
  modules (import graph, reference index, re-exports).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from ..context import ModuleContext
from ..diagnostics import Diagnostic, Fix, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..project import ProjectIndex


class Rule(ABC):
    """One named, documented invariant check over a single module."""

    #: Stable identifier used in reports and suppression comments.
    id: str = ""
    #: Short kebab-case name shown next to the id.
    name: str = ""
    #: One-line description for ``--list-rules``.
    description: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield findings for one module."""

    def diagnostic(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
        fix: Optional[Fix] = None,
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` attributed to this rule."""
        return Diagnostic(
            path=str(ctx.path),
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            severity=severity,
            fix=fix,
        )


class ProjectRule(ABC):
    """A whole-program check over the phase-1 :class:`ProjectIndex`."""

    id: str = ""
    name: str = ""
    description: str = ""

    @abstractmethod
    def check_project(self, project: "ProjectIndex") -> Iterator[Diagnostic]:
        """Yield findings over the whole project."""

    def diagnostic(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Construct a finding carrying this rule's id/name."""
        return Diagnostic(
            path=path,
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            severity=severity,
        )


def _build_registry() -> Tuple[Rule, ...]:
    from .r1_exceptions import ExceptionDisciplineRule
    from .r2_layering import ImportLayeringRule
    from .r3_domain import DomainGuardRule
    from .r4_aliasing import NumpyAliasingRule
    from .r5_traceability import EquationTraceabilityRule
    from .r6_observability import ObservabilityDisciplineRule
    from .r7_rng import RngDeterminismRule
    from .r8_dtype import KernelDtypeDisciplineRule
    from .r9_spans import SpanPairingRule

    return (
        ExceptionDisciplineRule(),
        ImportLayeringRule(),
        DomainGuardRule(),
        NumpyAliasingRule(),
        EquationTraceabilityRule(),
        ObservabilityDisciplineRule(),
        RngDeterminismRule(),
        KernelDtypeDisciplineRule(),
        SpanPairingRule(),
    )


def _build_project_registry() -> Tuple[ProjectRule, ...]:
    from .r10_dead_api import DeadPublicApiRule

    return (DeadPublicApiRule(),)


RULES: Tuple[Rule, ...] = _build_registry()
PROJECT_RULES: Tuple[ProjectRule, ...] = _build_project_registry()


def rule_ids() -> List[str]:
    """Ids of all registered rules (per-file then project), in order."""
    return [rule.id for rule in RULES] + [rule.id for rule in PROJECT_RULES]


__all__ = ["Rule", "ProjectRule", "RULES", "PROJECT_RULES", "rule_ids"]
