"""Rule registry for repro-lint.

Each rule lives in its own module and registers a single :class:`Rule`
subclass.  The registry order defines the reporting order for findings
on the same line.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List, Tuple

from ..context import ModuleContext
from ..diagnostics import Diagnostic, Severity


class Rule(ABC):
    """One named, documented invariant check."""

    #: Stable identifier used in reports and suppression comments.
    id: str = ""
    #: Short kebab-case name shown next to the id.
    name: str = ""
    #: One-line description for ``--list-rules``.
    description: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield findings for one module."""

    def diagnostic(
        self,
        ctx: ModuleContext,
        line: int,
        col: int,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        """Build a :class:`Diagnostic` attributed to this rule."""
        return Diagnostic(
            path=str(ctx.path),
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            severity=severity,
        )


def _build_registry() -> Tuple[Rule, ...]:
    from .r1_exceptions import ExceptionDisciplineRule
    from .r2_layering import ImportLayeringRule
    from .r3_domain import DomainGuardRule
    from .r4_aliasing import NumpyAliasingRule
    from .r5_traceability import EquationTraceabilityRule
    from .r6_observability import ObservabilityDisciplineRule

    return (
        ExceptionDisciplineRule(),
        ImportLayeringRule(),
        DomainGuardRule(),
        NumpyAliasingRule(),
        EquationTraceabilityRule(),
        ObservabilityDisciplineRule(),
    )


RULES: Tuple[Rule, ...] = _build_registry()


def rule_ids() -> List[str]:
    """Ids of all registered rules, in registry (reporting) order."""
    return [rule.id for rule in RULES]


__all__ = ["Rule", "RULES", "rule_ids"]
