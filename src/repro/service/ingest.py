"""Measurement-batch ingestion for the online optimizer.

One measurement batch is one control-loop tick's worth of observed
request ranks.  The wire format is deliberately trivial — one line per
batch, whitespace-separated integer ranks, ``#`` comments — so traffic
taps, replay files and shell pipelines can all feed `repro serve`.
A blank line is a well-formed *empty* batch: the window saw no traffic
that tick, and the service idles through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, TextIO, Union

import numpy as np

from ..errors import ParameterError

__all__ = ["MeasurementBatch", "parse_line", "read_stream"]


@dataclass(frozen=True)
class MeasurementBatch:
    """One tick's observed request ranks (1-based catalog positions)."""

    ranks: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    def __post_init__(self) -> None:
        ranks = np.asarray(self.ranks)
        if ranks.ndim != 1:
            raise ParameterError(
                f"measurement ranks must be one-dimensional, got shape {ranks.shape}"
            )
        if ranks.size and (
            not np.issubdtype(ranks.dtype, np.integer) or np.any(ranks < 1)
        ):
            raise ParameterError("measurement ranks must be integers >= 1")
        object.__setattr__(self, "ranks", ranks.astype(np.int64, copy=False))

    def __len__(self) -> int:
        return int(self.ranks.size)

    @property
    def empty(self) -> bool:
        """Whether the window saw no traffic this tick."""
        return self.ranks.size == 0


def parse_line(line: str) -> MeasurementBatch:
    """Parse one text line into a :class:`MeasurementBatch`.

    Whitespace-separated integer ranks; anything after ``#`` is a
    comment; a blank (or comment-only) line is an empty batch.
    """
    payload = line.split("#", 1)[0].strip()
    if not payload:
        return MeasurementBatch()
    try:
        values = [int(token) for token in payload.split()]
    except ValueError as exc:
        raise ParameterError(
            f"measurement line is not whitespace-separated integer ranks: "
            f"{payload!r}"
        ) from exc
    return MeasurementBatch(ranks=np.array(values, dtype=np.int64))


def read_stream(
    stream: Union[TextIO, Iterable[str]],
) -> Iterator[MeasurementBatch]:
    """Iterate a text stream as measurement batches, one per line.

    Works on file objects and plain string iterables alike; every line
    (including blank ones — idle ticks) yields a batch, so tick indices
    in the service line up with line numbers in the stream.
    """
    for line in stream:
        yield parse_line(line)
