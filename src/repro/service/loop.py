"""The persistent control loop behind `repro serve`.

:class:`OptimizerService` closes the paper's offline pipeline into an
online one: each tick ingests a measurement batch, refreshes the
windowed Zipf MLE, conditions the estimate through the
:class:`~repro.service.policy.DeadBandPolicy`, and re-provisions the
eq. 5 optimum through a warm
:class:`~repro.adaptive.tracker.WarmStrategyTracker` — cold solve once,
1-3 Newton corrections per re-solve after.  The loop never touches the
clock or any stream itself: latency comes from obs spans, batches come
from the caller, so a recorded stream replays bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..adaptive.estimator import ExponentEstimator
from ..adaptive.tracker import WarmStrategyTracker
from ..core.scenario import Scenario
from ..errors import ParameterError
from ..obs import get_session
from .ingest import MeasurementBatch
from .policy import DeadBandPolicy

__all__ = ["OptimizerService", "ServiceTick"]


@dataclass(frozen=True)
class ServiceTick:
    """What one control-loop tick observed and decided.

    Attributes
    ----------
    index:
        Tick number (0-based, equals the batch's position in the stream).
    observed:
        Request count in this tick's measurement window.
    estimate:
        The conditioned (post-clamp) exponent estimate, or ``None`` on
        an idle tick (no traffic seen yet this run).
    clamped:
        Whether the raw MLE fell outside the policy's solver envelope.
    level:
        The provisioned coordination level after this tick (``None``
        until the first solve).
    action:
        How the tick was served: ``"idle"`` (no traffic yet),
        ``"cold"`` (first solve), ``"warm"`` (incremental re-solve) or
        ``"skipped"`` (estimate inside the dead-band).
    solve_latency_s:
        Duration of this tick's solve span (0 when no solve ran or the
        ambient obs session is disabled).
    staleness:
        Ticks elapsed since the provisioned level was last re-solved
        (0 on a tick that solved).
    tracking_error:
        ``|estimate − solved exponent|`` — how far the live estimate
        has drifted from what the deployed level was solved for.
    """

    index: int
    observed: int
    estimate: Optional[float]
    clamped: bool
    level: Optional[float]
    action: str
    solve_latency_s: float
    staleness: int
    tracking_error: float


class OptimizerService:
    """Persistent estimate → dead-band → warm re-solve control loop.

    Parameters
    ----------
    scenario:
        Scenario template supplying every parameter but the exponent,
        which is estimated online from the measurement stream.
    memory:
        Estimator window retention per tick (see
        :class:`~repro.adaptive.estimator.ExponentEstimator`).
    policy:
        Estimate conditioning: solver envelope and dead-band width.
    bounds:
        MLE search bounds handed to the estimator.  May be wider than
        the solver envelope; estimates outside it are clamped and
        counted on the ``service.estimate_clamped`` obs counter.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        memory: float = 0.5,
        policy: Optional[DeadBandPolicy] = None,
        bounds: tuple[float, float] = (0.05, 1.95),
    ):
        lo, hi = bounds
        if not 0.0 < lo < hi:
            raise ParameterError(f"invalid estimator bounds {bounds}")
        self.scenario = scenario
        self.policy = policy if policy is not None else DeadBandPolicy()
        self.bounds = (float(lo), float(hi))
        self.estimator = ExponentEstimator(scenario.catalog_size, memory=memory)
        self.tracker = WarmStrategyTracker(
            scenario, dead_band=self.policy.dead_band
        )
        self.ticks = 0
        self._staleness = 0
        self._tracking_error = 0.0

    def ingest(self, batch: MeasurementBatch) -> ServiceTick:
        """Process one measurement batch; returns the tick's record."""
        obs = get_session()
        with obs.span("service.tick"):
            tick = self._ingest(batch, obs)
        self.ticks += 1
        if obs.enabled:
            obs.counter("service.ticks").add()
            obs.gauge("service.solve_latency_s").set(tick.solve_latency_s)
            obs.gauge("service.estimate_staleness").set(float(tick.staleness))
            obs.gauge("service.tracking_error").set(tick.tracking_error)
        return tick

    def _ingest(self, batch: MeasurementBatch, obs) -> ServiceTick:
        index = self.ticks
        if not batch.empty:
            self.estimator.observe(batch.ranks)
        if not self.estimator.has_observations:
            # Idle: nothing has ever been observed, there is no estimate
            # to act on (an empty window after traffic keeps the
            # previous window's estimate and flows through the
            # dead-band like any repeat).
            return ServiceTick(
                index=index,
                observed=len(batch),
                estimate=None,
                clamped=False,
                level=self._current_level(),
                action="idle",
                solve_latency_s=0.0,
                staleness=self._bump_staleness(),
                tracking_error=self._tracking_error,
            )
        raw = self.estimator.estimate(bounds=self.bounds)
        estimate, clamped = self.policy.clamp(raw)
        if clamped and obs.enabled:
            obs.counter("service.estimate_clamped").add()
        before = (self.tracker.cold_solves, self.tracker.warm_solves)
        with obs.span("service.solve") as span:
            strategy = self.tracker.solve(estimate)
        after = (self.tracker.cold_solves, self.tracker.warm_solves)
        if after[0] > before[0]:
            action = "cold"
        elif after[1] > before[1]:
            action = "warm"
        else:
            action = "skipped"
        if action == "skipped":
            staleness = self._bump_staleness()
            latency = 0.0
        else:
            self._staleness = 0
            staleness = 0
            latency = float(span.duration_s)
        self._tracking_error = abs(estimate - self.tracker.solved_exponent)
        return ServiceTick(
            index=index,
            observed=len(batch),
            estimate=estimate,
            clamped=clamped,
            level=strategy.level,
            action=action,
            solve_latency_s=latency,
            staleness=staleness,
            tracking_error=self._tracking_error,
        )

    def run(
        self, batches: Iterable[MeasurementBatch]
    ) -> Iterator[ServiceTick]:
        """Drive the loop over a batch stream, yielding tick records."""
        for batch in batches:
            yield self.ingest(batch)

    def _current_level(self) -> Optional[float]:
        current = self.tracker.current
        return None if current is None else current.level

    def _bump_staleness(self) -> int:
        if self.tracker.current is not None:
            self._staleness += 1
        return self._staleness
