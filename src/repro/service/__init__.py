"""Online optimization service (the `repro serve` control loop).

The paper solves eq. 5 offline for a static scenario; this package
turns the solver into a long-running control loop: measurement batches
stream in, the windowed Zipf-exponent MLE updates, and the coordination
level is re-provisioned through the warm incremental re-solver whenever
the estimate moves past a dead-band.  The loop itself is synchronous
and I/O-free — the CLI owns the clock and the streams — so every piece
is unit-testable and replayable.
"""

from .ingest import MeasurementBatch, parse_line, read_stream
from .loop import OptimizerService, ServiceTick
from .policy import DeadBandPolicy

__all__ = [
    "DeadBandPolicy",
    "MeasurementBatch",
    "OptimizerService",
    "ServiceTick",
    "parse_line",
    "read_stream",
]
