"""Estimate-conditioning policy for the online optimizer.

The estimator may run with user-chosen MLE bounds, but the batched
solver's exponent column must stay inside the paper's eq. 6 domain
``(0, 2)``.  :class:`DeadBandPolicy` owns the two knobs between an
estimate and a re-solve: the clamp onto the solver's safe envelope and
the dead-band width the warm tracker re-provisions past.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError

__all__ = ["DeadBandPolicy"]

#: The service's safe exponent envelope.  Strictly inside the eq. 6
#: domain ``(0, 2)`` so a clamped estimate always builds a valid
#: :class:`~repro.core.batch_solver.ScenarioGrid` column.
SOLVER_EXPONENT_FLOOR = 0.05
SOLVER_EXPONENT_CEILING = 1.95


@dataclass(frozen=True)
class DeadBandPolicy:
    """How estimates become re-provisioning decisions.

    Attributes
    ----------
    dead_band:
        Estimate moves with ``|Δs| <= dead_band`` of the last solved
        exponent are absorbed (the cached optimum keeps serving);
        re-solves happen only strictly past the band.  0 still
        deduplicates exactly repeated estimates.
    floor / ceiling:
        The solver envelope estimates are clamped onto before solving.
        Defaults cover the estimator's default MLE bounds, so clamping
        only engages when the service runs with widened bounds.
    """

    dead_band: float = 0.0
    floor: float = SOLVER_EXPONENT_FLOOR
    ceiling: float = SOLVER_EXPONENT_CEILING

    def __post_init__(self) -> None:
        if self.dead_band < 0.0:
            raise ParameterError(
                f"dead_band must be non-negative, got {self.dead_band}"
            )
        if not 0.0 < self.floor < self.ceiling < 2.0:
            raise ParameterError(
                "solver envelope must satisfy 0 < floor < ceiling < 2 "
                f"(paper eq. 6 domain), got [{self.floor}, {self.ceiling}]"
            )

    def clamp(self, estimate: float) -> tuple[float, bool]:
        """Project an estimate onto the solver envelope.

        Returns ``(value, clamped)`` where ``clamped`` says whether the
        estimate actually fell outside ``[floor, ceiling]``.
        """
        if estimate < self.floor:
            return self.floor, True
        if estimate > self.ceiling:
            return self.ceiling, True
        return float(estimate), False
