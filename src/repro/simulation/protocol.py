"""Distributed coordinator protocol (paper §III-A).

The paper's coordinator is "conceptually centralized; in practice, it
can be implemented in a fully distributed manner".  This module
implements that distributed realization over a topology's spanning tree
and accounts every message, so the linear cost model of eq. 3 can be
checked against an actual protocol:

1. **Convergecast** — leaves report their content-store state up the
   tree; interior nodes merge children's reports with their own and
   forward one aggregate per tree edge (``n - 1`` state messages).
2. **Decision** — the root computes the placement a
   :class:`~repro.core.strategy.ProvisioningStrategy` prescribes
   (no messages).
3. **Dissemination** — placement directives travel back down the tree;
   a node receives exactly the directives for its own subtree, so each
   directive crosses each tree edge on its custodian's root-path once.

The protocol's latency is the tree's depth-weighted link latency —
which is why the paper estimates the unit coordination cost ``w`` by
the *maximum* pairwise latency: parallel fan-out is gated by the
slowest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

import networkx as nx

from ..core.strategy import ProvisioningStrategy
from ..errors import ParameterError, TopologyError
from ..topology.graph import Topology

__all__ = ["ProtocolOutcome", "DistributedCoordinator"]

NodeId = Hashable


@dataclass(frozen=True)
class ProtocolOutcome:
    """Message and latency accounting for one coordination round.

    Attributes
    ----------
    state_messages:
        Convergecast messages (one per spanning-tree edge: ``n - 1``).
    directive_messages:
        Placement directives sent, counted per tree edge traversed.
    total_messages:
        Sum of the above.
    convergecast_latency_ms:
        Time for all state to reach the root (deepest leaf's root-path
        latency; reports ascend in parallel).
    dissemination_latency_ms:
        Time for the last directive to reach its router.
    round_latency_ms:
        End-to-end round time (convergecast + dissemination).
    placements:
        The (rank → router) map the protocol installed.
    """

    state_messages: int
    directive_messages: int
    convergecast_latency_ms: float
    dissemination_latency_ms: float
    placements: dict

    @property
    def total_messages(self) -> int:
        return self.state_messages + self.directive_messages

    @property
    def round_latency_ms(self) -> float:
        return self.convergecast_latency_ms + self.dissemination_latency_ms


class DistributedCoordinator:
    """Spanning-tree coordination protocol over a topology.

    Parameters
    ----------
    topology:
        The router network; the spanning tree is the shortest-path tree
        (by link latency) rooted at ``root``.
    root:
        The router acting as the aggregation point; defaults to the
        latency-closeness-optimal router.
    """

    def __init__(self, topology: Topology, *, root: Optional[NodeId] = None):
        self.topology = topology
        latency = topology.latency_matrix()
        if root is None:
            import numpy as np

            root = topology.nodes[int(np.argmin(latency.sum(axis=1)))]
        if root not in topology.nodes:
            raise TopologyError(f"root {root!r} is not a router of {topology.name!r}")
        self.root = root
        # Shortest-path tree: parent pointers + root-path latencies.
        lengths, paths = nx.single_source_dijkstra(
            topology.graph, root, weight="latency_ms"
        )
        self._root_path_latency: dict[NodeId, float] = dict(lengths)
        self._parent: dict[NodeId, Optional[NodeId]] = {root: None}
        self._children: dict[NodeId, list[NodeId]] = {n: [] for n in topology.nodes}
        for node, path in paths.items():
            if node == root:
                continue
            parent = path[-2]
            self._parent[node] = parent
            self._children[parent].append(node)

    def tree_depth_hops(self, node: NodeId) -> int:
        """Tree hops from ``node`` up to the root."""
        depth = 0
        current: Optional[NodeId] = node
        while self._parent.get(current) is not None:
            current = self._parent[current]
            depth += 1
        return depth

    def run_round(self, strategy: ProvisioningStrategy) -> ProtocolOutcome:
        """Execute one full coordination round for the given strategy."""
        if strategy.n_routers != self.topology.n_routers:
            raise ParameterError(
                f"strategy is for {strategy.n_routers} routers; topology has "
                f"{self.topology.n_routers}"
            )
        nodes = self.topology.nodes
        n = len(nodes)

        # Phase 1 — convergecast: one aggregate state message per tree
        # edge, ascending in parallel; latency gated by the deepest leaf.
        state_messages = n - 1
        convergecast_latency = max(self._root_path_latency.values(), default=0.0)

        # Phase 2/3 — dissemination: each coordinated rank's directive
        # travels from the root to its custodian along the tree.
        placements: dict[int, NodeId] = {}
        directive_messages = 0
        dissemination_latency = 0.0
        for rank, owner_index in strategy.iter_assignments():
            owner = nodes[owner_index]
            placements[rank] = owner
            directive_messages += self.tree_depth_hops(owner)
            dissemination_latency = max(
                dissemination_latency, self._root_path_latency[owner]
            )
        return ProtocolOutcome(
            state_messages=state_messages,
            directive_messages=directive_messages,
            convergecast_latency_ms=convergecast_latency,
            dissemination_latency_ms=dissemination_latency,
            placements=placements,
        )

    def linear_model_error(self, strategy: ProvisioningStrategy) -> float:
        """Relative gap between real directive traffic and eq. 3's ``n·x``.

        The linear model charges one unit per coordinated slot per
        router; the tree protocol sends each directive over the
        custodian's tree depth.  Their ratio quantifies how faithful the
        paper's linear communication-cost abstraction is on a concrete
        topology (exact when the mean tree depth is 1, i.e. a star).
        """
        outcome = self.run_round(strategy)
        modeled = strategy.coordination_messages()
        if modeled == 0:
            return 0.0 if outcome.directive_messages == 0 else float("inf")
        return outcome.directive_messages / modeled - 1.0
