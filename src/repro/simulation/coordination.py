"""Coordinated placement: turning a strategy into router stores.

The conceptually centralized coordinator of the paper (§III-A, node
``C`` of Figure 2) collects content-store state from all routers,
computes the placement a :class:`ProvisioningStrategy` prescribes, and
distributes directives.  This module implements that protocol at the
message-accounting level the paper's cost model (eq. 3) abstracts:

- ``collection`` — one state report per router;
- ``directives`` — one placement directive per coordinated slot per
  router (the ``w·n·x`` linear term of eq. 3);
- ``consensus`` — the minimum messages for the routers to agree on a
  partition at all: a spanning tree of the participants, ``n - 1``
  messages (this is the "at least one message" of the paper's
  two-router motivating example).

It also builds the provisioned :class:`CCNRouter` fleet for the
steady-state simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.strategy import ProvisioningStrategy
from ..errors import ParameterError
from .router import CCNRouter

__all__ = ["CoordinationReport", "Coordinator"]

NodeId = Hashable


@dataclass(frozen=True)
class CoordinationReport:
    """Message accounting for one coordination round.

    Attributes
    ----------
    collection_messages:
        State reports from routers to the coordinator (``n``; 0 when
        nothing is coordinated).
    directive_messages:
        Placement directives, one per coordinated slot per router
        (``n·x`` — the quantity eq. 3's communication term charges).
    consensus_messages:
        Minimum messages for participants to reach consensus on the
        partition (``n - 1`` over a spanning tree; the motivating
        example's single message between R1 and R2).
    """

    collection_messages: int
    directive_messages: int
    consensus_messages: int

    @property
    def total_messages(self) -> int:
        """Full protocol cost: collection plus directives."""
        return self.collection_messages + self.directive_messages


class Coordinator:
    """Builds provisioned router fleets and accounts coordination cost.

    Parameters
    ----------
    strategy:
        The provisioning plan (capacity split and rank assignment).
    routers:
        Topology node identifiers, in placement order: router ``i`` of
        the strategy's assignment is ``routers[i]``.
    """

    def __init__(self, strategy: ProvisioningStrategy, routers: Sequence[NodeId]):
        if len(routers) != strategy.n_routers:
            raise ParameterError(
                f"strategy expects {strategy.n_routers} routers, got {len(routers)}"
            )
        if len(set(routers)) != len(routers):
            raise ParameterError("router identifiers must be unique")
        self.strategy = strategy
        self.routers = list(routers)

    def placement(self) -> dict[NodeId, tuple[frozenset[int], frozenset[int]]]:
        """Per-router ``(local_ranks, coordinated_ranks)`` sets."""
        local = frozenset(self.strategy.local_ranks)
        result: dict[NodeId, tuple[frozenset[int], frozenset[int]]] = {}
        for i, node in enumerate(self.routers):
            coordinated = frozenset(
                r
                for r in self.strategy.contents_of_router(i)
                if r not in local
            )
            result[node] = (local, coordinated)
        return result

    def build_routers(self) -> dict[NodeId, CCNRouter]:
        """Materialize the provisioned steady-state router fleet."""
        fleet: dict[NodeId, CCNRouter] = {}
        for node, (local, coordinated) in self.placement().items():
            fleet[node] = CCNRouter.provisioned(
                node,
                local,
                coordinated,
                local_capacity=self.strategy.local_slots,
                coordinated_capacity=self.strategy.coordinated_slots,
            )
        return fleet

    def report(self) -> CoordinationReport:
        """Message accounting for installing this strategy."""
        n = self.strategy.n_routers
        x = self.strategy.coordinated_slots
        if x == 0:
            # Non-coordinated provisioning involves no exchange at all.
            return CoordinationReport(
                collection_messages=0,
                directive_messages=0,
                consensus_messages=0,
            )
        return CoordinationReport(
            collection_messages=n,
            directive_messages=n * x,
            consensus_messages=max(n - 1, 0),
        )

    def holders_index(self) -> dict[int, list[NodeId]]:
        """Rank → routers holding it, for the whole provisioned network.

        Local ranks map to all routers; coordinated ranks to their
        single assigned owner.
        """
        index: dict[int, list[NodeId]] = {}
        for rank in self.strategy.local_ranks:
            index[rank] = list(self.routers)
        for rank, owner in self.strategy.iter_assignments():
            index.setdefault(rank, []).append(self.routers[owner])
        return index
