"""A CCN-style router: content store plus request handling.

The paper's routers have two capabilities — forwarding and an
in-network content store.  :class:`CCNRouter` models the content-store
side: a (possibly split) store with a provisioned partition and a
dynamic partition, mirroring the model's ``c - x`` local / ``x``
coordinated split.  Forwarding decisions live in
:mod:`repro.simulation.routing`; the simulator composes the two.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..errors import ParameterError, SimulationError
from .cache import CachePolicy, StaticCache

__all__ = ["CCNRouter"]

NodeId = Hashable


class CCNRouter:
    """One router's content store, split into two partitions.

    Parameters
    ----------
    node:
        The router's identifier in the topology.
    local_store:
        The non-coordinated partition (size ``c - x`` in the model) —
        typically a :class:`StaticCache` of the top ranks, or a dynamic
        policy (LRU/LFU) in online simulations.
    coordinated_store:
        The coordinated partition (size ``x``); ``None`` when the
        router participates only in non-coordinated caching.
    """

    def __init__(
        self,
        node: NodeId,
        local_store: CachePolicy,
        coordinated_store: Optional[CachePolicy] = None,
    ):
        self.node = node
        self.local_store = local_store
        self.coordinated_store = coordinated_store

    @property
    def capacity(self) -> int:
        """Total store capacity ``c`` across both partitions."""
        # Note: ``is not None``, not truthiness — CachePolicy defines
        # __len__, so an *empty* coordinated store would be falsy.
        coordinated = (
            self.coordinated_store.capacity
            if self.coordinated_store is not None
            else 0
        )
        return self.local_store.capacity + coordinated

    def holds(self, rank: int) -> bool:
        """Whether either partition currently stores the rank."""
        if rank in self.local_store:
            return True
        return self.coordinated_store is not None and rank in self.coordinated_store

    def lookup(self, rank: int) -> bool:
        """Statistics-recording lookup across both partitions.

        The local partition is consulted first (it holds the most
        popular contents); a hit there does not touch the coordinated
        partition's statistics.
        """
        if self.local_store.lookup(rank):
            return True
        if self.coordinated_store is not None:
            return self.coordinated_store.lookup(rank)
        return False

    def admit_local(self, rank: int) -> Optional[int]:
        """Admit a fetched content into the local (dynamic) partition."""
        return self.local_store.admit(rank)

    def admit_coordinated(self, rank: int) -> Optional[int]:
        """Admit a content into the coordinated partition."""
        if self.coordinated_store is None:
            raise SimulationError(
                f"router {self.node!r} has no coordinated partition"
            )
        return self.coordinated_store.admit(rank)

    def stored_ranks(self) -> frozenset[int]:
        """All ranks currently stored on this router."""
        ranks = set(self.local_store.contents)
        if self.coordinated_store is not None:
            ranks |= self.coordinated_store.contents
        return frozenset(ranks)

    def __repr__(self) -> str:
        return (
            f"CCNRouter(node={self.node!r}, capacity={self.capacity}, "
            f"stored={len(self.stored_ranks())})"
        )

    @classmethod
    def provisioned(
        cls,
        node: NodeId,
        local_ranks: frozenset[int],
        coordinated_ranks: frozenset[int],
        *,
        local_capacity: Optional[int] = None,
        coordinated_capacity: Optional[int] = None,
    ) -> "CCNRouter":
        """Build a fully static router from explicit rank sets.

        This is the steady-state configuration the analytical model
        assumes: the local partition holds the global top ranks, the
        coordinated partition holds this router's share of the
        coordinated range.
        """
        local_capacity = (
            len(local_ranks) if local_capacity is None else local_capacity
        )
        coordinated_capacity = (
            len(coordinated_ranks)
            if coordinated_capacity is None
            else coordinated_capacity
        )
        if local_capacity < len(local_ranks):
            raise ParameterError(
                f"local capacity {local_capacity} below rank count {len(local_ranks)}"
            )
        if coordinated_capacity < len(coordinated_ranks):
            raise ParameterError(
                f"coordinated capacity {coordinated_capacity} below rank count "
                f"{len(coordinated_ranks)}"
            )
        coordinated_store = (
            StaticCache(coordinated_capacity, coordinated_ranks)
            if coordinated_capacity > 0
            else None
        )
        return cls(
            node,
            local_store=StaticCache(local_capacity, local_ranks),
            coordinated_store=coordinated_store,
        )
