"""Nearest-replica routing over a topology.

A CCN request at router ``r`` resolves in three tiers, matching the
model's ``d0``/``d1``/``d2`` structure: the local content store, the
nearest peer router holding a replica, and finally the origin server.
:class:`NearestReplicaRouter` answers "who serves this request and at
what hop/latency cost" from precomputed all-pairs matrices, and
:class:`OriginModel` places the origin in the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

import numpy as np

from ..errors import SimulationError, TopologyError
from ..topology.graph import Topology

__all__ = ["ServiceTier", "RouteDecision", "OriginModel", "NearestReplicaRouter"]

NodeId = Hashable


class ServiceTier:
    """The three service tiers of the model (string constants)."""

    LOCAL = "local"
    PEER = "peer"
    ORIGIN = "origin"

    ALL = (LOCAL, PEER, ORIGIN)


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of resolving one request.

    Attributes
    ----------
    tier:
        One of :class:`ServiceTier`'s constants.
    server:
        The serving router (``None`` when the origin serves).
    hops:
        Router-level hops traversed to fetch the content (0 for local).
    latency_ms:
        Latency of the fetch path, excluding the client access leg
        (which corresponds to the model's ``d0`` and is added by the
        metrics layer).
    """

    tier: str
    server: Optional[NodeId]
    hops: float
    latency_ms: float


@dataclass(frozen=True)
class OriginModel:
    """Placement of the origin server relative to the topology.

    The origin attaches to one router (its "gateway") and sits
    ``extra_hops``/``extra_latency_ms`` beyond it — e.g. the paper's
    motivating example has O one hop behind R0.

    Parameters
    ----------
    gateway:
        The router the origin attaches through.
    extra_hops:
        Hops between the gateway and the origin itself.
    extra_latency_ms:
        Latency between the gateway and the origin.
    """

    gateway: NodeId
    extra_hops: float = 1.0
    extra_latency_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.extra_hops < 0:
            raise SimulationError(
                f"origin extra hops must be non-negative, got {self.extra_hops}"
            )
        if self.extra_latency_ms < 0:
            raise SimulationError(
                f"origin extra latency must be non-negative, got {self.extra_latency_ms}"
            )


class NearestReplicaRouter:
    """Resolves requests to the nearest replica or the origin.

    Parameters
    ----------
    topology:
        The router network.
    origin:
        Origin placement; defaults to attaching the origin at the
        router with the highest closeness centrality (a realistic
        peering-point choice) one hop out.
    metric:
        ``"hops"`` (shortest-path hop distance, paper's presented
        metric) or ``"latency"`` (Dijkstra latency distance) for
        choosing the nearest replica.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
    ):
        if metric not in ("hops", "latency"):
            raise SimulationError(f"metric must be 'hops' or 'latency', got {metric!r}")
        self.topology = topology
        self.metric = metric
        # Hops and latency must describe the SAME path per pair, so both
        # are accumulated along the paths the chosen metric selects.
        self._hops, self._latency = self._path_matrices(topology, metric)
        if origin is None:
            centrality = self._hops.sum(axis=1)
            gateway = topology.nodes[int(np.argmin(centrality))]
            origin = OriginModel(gateway=gateway)
        if origin.gateway not in topology.nodes:
            raise TopologyError(
                f"origin gateway {origin.gateway!r} is not a router of "
                f"{topology.name!r}"
            )
        self.origin = origin
        self._distance = self._hops if metric == "hops" else self._latency

    @staticmethod
    def _path_matrices(topology: Topology, metric: str):
        """Per-pair (hops, latency) along the metric's shortest paths."""
        import networkx as nx
        import numpy as np

        n = topology.n_routers
        hops = np.zeros((n, n), dtype=np.float64)
        latency = np.zeros((n, n), dtype=np.float64)
        graph = topology.graph
        if metric == "hops":
            paths_iter = nx.all_pairs_shortest_path(graph)
        else:
            paths_iter = nx.all_pairs_dijkstra_path(graph, weight="latency_ms")
        for source, paths in paths_iter:
            i = topology.index_of(source)
            for target, path in paths.items():
                j = topology.index_of(target)
                hops[i, j] = len(path) - 1
                latency[i, j] = sum(
                    graph.edges[path[k], path[k + 1]]["latency_ms"]
                    for k in range(len(path) - 1)
                )
        if topology.pair_overhead_ms > 0:
            latency += topology.pair_overhead_ms * (1.0 - np.eye(n))
        return hops, latency

    def resolve(
        self, client: NodeId, holders: Iterable[NodeId]
    ) -> RouteDecision:
        """Route a request from ``client`` given the replica holder set.

        Local replicas win outright; otherwise the nearest peer holder
        under the configured metric (ties broken by topology node index,
        independent of holder iteration order); otherwise the origin.
        """
        client_idx = self.topology.index_of(client)
        best_idx: Optional[int] = None
        best_distance = float("inf")
        for holder in holders:
            holder_idx = self.topology.index_of(holder)
            if holder_idx == client_idx:
                return RouteDecision(
                    tier=ServiceTier.LOCAL, server=client, hops=0.0, latency_ms=0.0
                )
            distance = float(self._distance[client_idx, holder_idx])
            if distance < best_distance or (
                distance == best_distance
                and best_idx is not None
                and holder_idx < best_idx
            ):
                best_distance = distance
                best_idx = holder_idx
        if best_idx is not None:
            return RouteDecision(
                tier=ServiceTier.PEER,
                server=self.topology.nodes[best_idx],
                hops=float(self._hops[client_idx, best_idx]),
                latency_ms=float(self._latency[client_idx, best_idx]),
            )
        gateway_idx = self.topology.index_of(self.origin.gateway)
        return RouteDecision(
            tier=ServiceTier.ORIGIN,
            server=None,
            hops=float(self._hops[client_idx, gateway_idx]) + self.origin.extra_hops,
            latency_ms=float(self._latency[client_idx, gateway_idx])
            + self.origin.extra_latency_ms,
        )

    def path_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """The per-pair ``(hops, latency_ms)`` matrices, node-index ordered.

        Read-only views of the internal tables (both describe the same
        shortest paths under the configured metric); callers needing a
        mutable array must copy.  This is the bulk counterpart of
        :meth:`resolve` used by the batched steady-state kernel.
        """
        hops = self._hops.view()
        latency = self._latency.view()
        hops.flags.writeable = False
        latency.flags.writeable = False
        return hops, latency

    def metric_matrix(self) -> np.ndarray:
        """Read-only nearest-replica decision matrix (hops or latency)."""
        distance = self._distance.view()
        distance.flags.writeable = False
        return distance

    def origin_distance(self, client: NodeId) -> tuple[float, float]:
        """``(hops, latency_ms)`` from a client router to the origin."""
        client_idx = self.topology.index_of(client)
        gateway_idx = self.topology.index_of(self.origin.gateway)
        return (
            float(self._hops[client_idx, gateway_idx]) + self.origin.extra_hops,
            float(self._latency[client_idx, gateway_idx])
            + self.origin.extra_latency_ms,
        )

    def mean_peer_distance(self) -> tuple[float, float]:
        """Mean ``(hops, latency_ms)`` over ordered non-self router pairs.

        This is the simulator-side counterpart of the model's
        ``d1 - d0`` extraction (Table III).
        """
        n = self.topology.n_routers
        if n < 2:
            return 0.0, 0.0
        off_diag = n * (n - 1)
        return (
            float(self._hops.sum()) / off_diag,
            float(self._latency.sum()) / off_diag,
        )
