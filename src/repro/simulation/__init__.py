"""Discrete request-level CCN caching simulator.

The analytical model's event-level counterpart: content stores with
replacement policies, nearest-replica routing, coordinated placement
with message accounting, and steady-state/dynamic simulators.
"""

from .batch import BatchAggregate, SteadyStateKernel
from .cache import (
    CachePolicy,
    FIFOCache,
    LFUCache,
    LRUCache,
    PerfectLFUCache,
    RandomCache,
    StaticCache,
    make_policy,
)
from .coordination import CoordinationReport, Coordinator
from .dynamic_batch import DynamicBatchAggregate, DynamicKernel, DynamicKernelRun
from .failures import (
    build_degraded_simulator,
    coordinated_mass_lost,
    fail_stores,
)
from .metrics import MetricsCollector, SimulationMetrics
from .protocol import DistributedCoordinator, ProtocolOutcome
from .router import CCNRouter
from .routing import (
    NearestReplicaRouter,
    OriginModel,
    RouteDecision,
    ServiceTier,
)
from .sharded import (
    RegionFailure,
    ShardedRunResult,
    deterministic_view,
    run_sharded,
)
from .simulator import DynamicSimulator, SteadyStateSimulator

__all__ = [
    "BatchAggregate",
    "CCNRouter",
    "CachePolicy",
    "CoordinationReport",
    "Coordinator",
    "DistributedCoordinator",
    "DynamicBatchAggregate",
    "DynamicKernel",
    "DynamicKernelRun",
    "DynamicSimulator",
    "FIFOCache",
    "LFUCache",
    "LRUCache",
    "MetricsCollector",
    "NearestReplicaRouter",
    "PerfectLFUCache",
    "OriginModel",
    "ProtocolOutcome",
    "RandomCache",
    "RegionFailure",
    "RouteDecision",
    "ServiceTier",
    "ShardedRunResult",
    "SimulationMetrics",
    "StaticCache",
    "SteadyStateKernel",
    "SteadyStateSimulator",
    "build_degraded_simulator",
    "coordinated_mass_lost",
    "deterministic_view",
    "fail_stores",
    "make_policy",
    "run_sharded",
]
