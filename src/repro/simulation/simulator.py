"""Request-level simulators over a topology.

Two simulators bracket the paper's abstraction:

- :class:`SteadyStateSimulator` drives a workload over a *provisioned*
  (static) placement — exactly the steady state eq. 2 models — and
  measures origin load, hop counts and latency.  Comparing its output
  against the analytical ``T(x)``/``G_O`` validates the model; it also
  reproduces the motivating example (Table I) exactly.

- :class:`DynamicSimulator` runs online cache replacement (LRU/LFU/...)
  per router, either fully non-coordinated (miss → origin) or
  hash-coordinated (miss → rank's custodian router → origin), showing
  that the provisioned steady state emerges from dynamics.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

from ..catalog.workload import Workload
from ..core.strategy import ProvisioningStrategy
from ..errors import ParameterError, SimulationError
from ..topology.graph import Topology
from .cache import make_policy
from .coordination import Coordinator
from .metrics import MetricsCollector, SimulationMetrics
from .router import CCNRouter
from .routing import NearestReplicaRouter, OriginModel, RouteDecision, ServiceTier

__all__ = ["SteadyStateSimulator", "DynamicSimulator"]

NodeId = Hashable


class SteadyStateSimulator:
    """Simulates a provisioned (static) placement in steady state.

    Parameters
    ----------
    topology:
        The router network.
    fleet:
        Router stores keyed by topology node.  Every topology node must
        appear (use capacity-0 stores for storage-less routers like the
        motivating example's R0).
    origin:
        Origin placement (defaults to the most central router's
        gateway, one hop out).
    metric:
        Nearest-replica metric, ``"hops"`` or ``"latency"``.
    coordination_messages:
        Messages charged for installing this placement (from a
        :class:`~repro.simulation.coordination.CoordinationReport`).
    """

    def __init__(
        self,
        topology: Topology,
        fleet: Mapping[NodeId, CCNRouter],
        *,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        coordination_messages: int = 0,
    ):
        missing = set(topology.nodes) - set(fleet)
        if missing:
            raise SimulationError(
                f"fleet is missing routers {sorted(map(repr, missing))}"
            )
        extra = set(fleet) - set(topology.nodes)
        if extra:
            raise SimulationError(
                f"fleet has routers not in the topology: {sorted(map(repr, extra))}"
            )
        self.topology = topology
        self.fleet = dict(fleet)
        self.router = NearestReplicaRouter(topology, origin=origin, metric=metric)
        self.coordination_messages = int(coordination_messages)
        # Static placement: build the rank -> holders index once.
        self._holders: dict[int, list[NodeId]] = {}
        for node, ccn_router in self.fleet.items():
            for rank in ccn_router.stored_ranks():
                self._holders.setdefault(rank, []).append(node)

    @classmethod
    def from_strategy(
        cls,
        topology: Topology,
        strategy: ProvisioningStrategy,
        *,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        message_accounting: str = "directives",
    ) -> "SteadyStateSimulator":
        """Provision every router of the topology per the strategy.

        ``message_accounting`` selects which protocol cost is charged:
        ``"directives"`` (the eq. 3 ``n·x`` placement messages, plus
        state collection), ``"consensus"`` (the minimal ``n - 1``
        spanning-tree agreement of the motivating example), or
        ``"none"``.
        """
        if strategy.n_routers != topology.n_routers:
            raise ParameterError(
                f"strategy is for {strategy.n_routers} routers but topology "
                f"{topology.name!r} has {topology.n_routers}"
            )
        coordinator = Coordinator(strategy, topology.nodes)
        report = coordinator.report()
        if message_accounting == "directives":
            messages = report.total_messages
        elif message_accounting == "consensus":
            messages = report.consensus_messages
        elif message_accounting == "none":
            messages = 0
        else:
            raise ParameterError(
                f"unknown message accounting {message_accounting!r}"
            )
        return cls(
            topology,
            coordinator.build_routers(),
            origin=origin,
            metric=metric,
            coordination_messages=messages,
        )

    def resolve(self, client: NodeId, rank: int) -> RouteDecision:
        """Resolve a single request (records per-router statistics)."""
        ccn_router = self.fleet.get(client)
        if ccn_router is None:
            raise SimulationError(f"request from unknown router {client!r}")
        ccn_router.lookup(rank)  # record local store statistics
        return self.router.resolve(client, self._holders.get(rank, ()))

    def run(self, workload: Workload, count: int) -> SimulationMetrics:
        """Drive ``count`` requests of the workload and summarize."""
        collector = MetricsCollector()
        collector.record_messages(self.coordination_messages)
        for request in workload.requests(count):
            collector.record(self.resolve(request.client, request.rank))
        return collector.summary()


class DynamicSimulator:
    """Online cache-replacement simulation.

    Parameters
    ----------
    topology:
        The router network.
    capacity:
        Per-router content-store capacity ``c``.
    policy:
        Replacement policy name for the dynamic partitions
        (``"lru"``/``"lfu"``/``"fifo"``/``"random"``).
    coordination_level:
        ``ℓ ∈ [0, 1]``: fraction of each store run as a
        hash-coordinated partition.  ``0`` is fully non-coordinated
        (misses go straight to the origin); ``1`` is fully coordinated
        (every rank has a custodian router).
    origin / metric:
        As in :class:`SteadyStateSimulator`.
    seed:
        Seed for randomized policies.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        capacity: int,
        policy: str = "lru",
        coordination_level: float = 0.0,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        seed: int = 0,
    ):
        if int(capacity) != capacity or capacity < 1:
            raise ParameterError(
                f"capacity must be a positive integer, got {capacity}"
            )
        if not 0.0 <= coordination_level <= 1.0:
            raise ParameterError(
                f"coordination level must lie in [0, 1], got {coordination_level}"
            )
        self.topology = topology
        self.capacity = int(capacity)
        self.level = float(coordination_level)
        self.router = NearestReplicaRouter(topology, origin=origin, metric=metric)
        coordinated_slots = int(round(self.level * self.capacity))
        local_slots = self.capacity - coordinated_slots
        self.fleet: dict[NodeId, CCNRouter] = {}
        for i, node in enumerate(topology.nodes):
            local = make_policy(policy, local_slots, seed=seed * 1009 + i)
            coordinated = (
                make_policy(policy, coordinated_slots, seed=seed * 2003 + i)
                if coordinated_slots > 0
                else None
            )
            self.fleet[node] = CCNRouter(node, local, coordinated)
        self._nodes = topology.nodes
        self._coordinated_slots = coordinated_slots

    def _custodian(self, rank: int) -> NodeId:
        """The rank's custodian router under static hash partitioning."""
        return self._nodes[rank % len(self._nodes)]

    def _resolve(self, client: NodeId, rank: int) -> RouteDecision:
        ccn_router = self.fleet.get(client)
        if ccn_router is None:
            raise SimulationError(f"request from unknown router {client!r}")
        if ccn_router.lookup(rank):
            return RouteDecision(
                tier=ServiceTier.LOCAL, server=client, hops=0.0, latency_ms=0.0
            )
        if self._coordinated_slots > 0:
            custodian = self._custodian(rank)
            custodian_router = self.fleet[custodian]
            if custodian is not client and rank in custodian_router.coordinated_store:
                custodian_router.coordinated_store.lookup(rank)
                decision = self.router.resolve(client, [custodian])
                ccn_router.admit_local(rank)
                return decision
            # Miss at the custodian too: fetch from origin via the
            # custodian (it admits the content for future requests).
            origin_hops, origin_latency = self.router.origin_distance(custodian)
            to_custodian = self.router.resolve(client, [custodian])
            if custodian is client:
                hops, latency = self.router.origin_distance(client)
            else:
                hops = to_custodian.hops + origin_hops
                latency = to_custodian.latency_ms + origin_latency
            custodian_router.admit_coordinated(rank)
            ccn_router.admit_local(rank)
            return RouteDecision(
                tier=ServiceTier.ORIGIN, server=None, hops=hops, latency_ms=latency
            )
        hops, latency = self.router.origin_distance(client)
        ccn_router.admit_local(rank)
        return RouteDecision(
            tier=ServiceTier.ORIGIN, server=None, hops=hops, latency_ms=latency
        )

    def run(
        self,
        workload: Workload,
        count: int,
        *,
        warmup: int = 0,
    ) -> SimulationMetrics:
        """Drive the workload, optionally discarding a warm-up prefix.

        ``warmup`` requests are simulated (populating caches) but not
        counted, so the summary reflects steady-state behaviour — the
        regime the analytical model describes.
        """
        if warmup < 0:
            raise ParameterError(f"warmup must be non-negative, got {warmup}")
        collector = MetricsCollector()
        for i, request in enumerate(workload.requests(count + warmup)):
            decision = self._resolve(request.client, request.rank)
            if i >= warmup:
                collector.record(decision)
        return collector.summary()
