"""Request-level simulators over a topology.

Two simulators bracket the paper's abstraction:

- :class:`SteadyStateSimulator` drives a workload over a *provisioned*
  (static) placement — exactly the steady state eq. 2 models — and
  measures origin load, hop counts and latency.  Comparing its output
  against the analytical ``T(x)``/``G_O`` validates the model; it also
  reproduces the motivating example (Table I) exactly.

- :class:`DynamicSimulator` runs online cache replacement (LRU/LFU/...)
  per router, either fully non-coordinated (miss → origin) or
  hash-coordinated (miss → rank's custodian router → origin), showing
  that the provisioned steady state emerges from dynamics.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

import numpy as np

from ..catalog.workload import DEFAULT_BATCH_SIZE, RequestBatch, Workload
from ..core.strategy import ProvisioningStrategy
from ..errors import ParameterError, SimulationError
from ..obs import get_session
from ..topology.graph import Topology
from .batch import SteadyStateKernel
from .cache import StaticCache, make_policy
from .dynamic_batch import DynamicKernel
from .coordination import Coordinator
from .metrics import MetricsCollector, SimulationMetrics
from .router import CCNRouter
from .routing import NearestReplicaRouter, OriginModel, RouteDecision, ServiceTier

__all__ = ["SteadyStateSimulator", "DynamicSimulator"]

NodeId = Hashable


class SteadyStateSimulator:
    """Simulates a provisioned (static) placement in steady state.

    Parameters
    ----------
    topology:
        The router network.
    fleet:
        Router stores keyed by topology node.  Every topology node must
        appear (use capacity-0 stores for storage-less routers like the
        motivating example's R0).
    origin:
        Origin placement (defaults to the most central router's
        gateway, one hop out).
    metric:
        Nearest-replica metric, ``"hops"`` or ``"latency"``.
    coordination_messages:
        Messages charged for installing this placement (from a
        :class:`~repro.simulation.coordination.CoordinationReport`).
    """

    def __init__(
        self,
        topology: Topology,
        fleet: Mapping[NodeId, CCNRouter],
        *,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        coordination_messages: int = 0,
    ):
        missing = set(topology.nodes) - set(fleet)
        if missing:
            raise SimulationError(
                f"fleet is missing routers {sorted(map(repr, missing))}"
            )
        extra = set(fleet) - set(topology.nodes)
        if extra:
            raise SimulationError(
                f"fleet has routers not in the topology: {sorted(map(repr, extra))}"
            )
        self.topology = topology
        self.fleet = dict(fleet)
        self.router = NearestReplicaRouter(topology, origin=origin, metric=metric)
        self.coordination_messages = int(coordination_messages)
        # Static placement: build the rank -> holders index once.
        self._holders: dict[int, list[NodeId]] = {}
        for node, ccn_router in self.fleet.items():
            for rank in ccn_router.stored_ranks():
                self._holders.setdefault(rank, []).append(node)
        # The batched kernel assumes the placement truly is static (the
        # class contract); fleets assembled from dynamic policies would
        # drift under the scalar path's admits/touches, so only pure
        # StaticCache fleets take the fast path.
        self._placement_is_static = all(
            isinstance(r.local_store, StaticCache)
            and (
                r.coordinated_store is None
                or isinstance(r.coordinated_store, StaticCache)
            )
            for r in self.fleet.values()
        )
        self._kernel: Optional[SteadyStateKernel] = None

    @classmethod
    def from_strategy(
        cls,
        topology: Topology,
        strategy: ProvisioningStrategy,
        *,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        message_accounting: str = "directives",
    ) -> "SteadyStateSimulator":
        """Provision every router of the topology per the strategy.

        ``message_accounting`` selects which protocol cost is charged:
        ``"directives"`` (the eq. 3 ``n·x`` placement messages, plus
        state collection), ``"consensus"`` (the minimal ``n - 1``
        spanning-tree agreement of the motivating example), or
        ``"none"``.
        """
        if strategy.n_routers != topology.n_routers:
            raise ParameterError(
                f"strategy is for {strategy.n_routers} routers but topology "
                f"{topology.name!r} has {topology.n_routers}"
            )
        coordinator = Coordinator(strategy, topology.nodes)
        report = coordinator.report()
        if message_accounting == "directives":
            messages = report.total_messages
        elif message_accounting == "consensus":
            messages = report.consensus_messages
        elif message_accounting == "none":
            messages = 0
        else:
            raise ParameterError(
                f"unknown message accounting {message_accounting!r}"
            )
        return cls(
            topology,
            coordinator.build_routers(),
            origin=origin,
            metric=metric,
            coordination_messages=messages,
        )

    def resolve(self, client: NodeId, rank: int) -> RouteDecision:
        """Resolve a single request (records per-router statistics)."""
        ccn_router = self.fleet.get(client)
        if ccn_router is None:
            raise SimulationError(f"request from unknown router {client!r}")
        ccn_router.lookup(rank)  # record local store statistics
        return self.router.resolve(client, self._holders.get(rank, ()))

    def run(
        self,
        workload: Workload,
        count: int,
        *,
        batched: Optional[bool] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> SimulationMetrics:
        """Drive ``count`` requests of the workload and summarize.

        ``batched=None`` (the default) resolves whole
        :class:`~repro.catalog.workload.RequestBatch` chunks against the
        precomputed placement decision table whenever the fleet is fully
        static, falling back to the scalar reference loop otherwise; the
        two paths produce the same metrics and content-store statistics
        for the same workload seed.  ``batched=True`` insists on the
        fast path (raising for non-static fleets); ``batched=False``
        forces the scalar loop.
        """
        use_batched = self._placement_is_static if batched is None else bool(batched)
        if use_batched and not self._placement_is_static:
            raise SimulationError(
                "batched resolution requires a fully static fleet "
                "(every partition a StaticCache); use batched=False"
            )
        if use_batched and not hasattr(workload, "batches"):
            # Duck-typed workloads (only a ``requests`` method) predate
            # the batch API; silently take the reference path unless the
            # caller insisted on batching.
            if batched:
                raise SimulationError(
                    f"workload {type(workload).__name__!r} does not provide "
                    "batches(); subclass repro.catalog.Workload or use "
                    "batched=False"
                )
            use_batched = False
        collector = MetricsCollector()
        collector.record_messages(self.coordination_messages)
        # Observability: one span per run plus per-batch instruments —
        # never per-request, so the ambient no-op session stays within
        # noise on the hot path (tests/obs/test_overhead.py).
        obs = get_session()
        with obs.span("sim.steady.run") as span:
            if not use_batched:
                for request in workload.requests(count):
                    collector.record(self.resolve(request.client, request.rank))
            else:
                if self._kernel is None:
                    with obs.span("sim.steady.kernel_build"):
                        self._kernel = SteadyStateKernel(
                            self.topology, self.fleet, self.router, self._holders
                        )
                batch_sizes = obs.histogram("sim.steady.batch_size")
                for batch in workload.batches(count, batch_size=batch_size):
                    batch_sizes.observe(len(batch))
                    obs.counter("sim.steady.batches").add()
                    self._record_batch(batch, collector)
        metrics = collector.summary()
        if obs.enabled:
            obs.counter("sim.steady.requests").add(metrics.requests)
            obs.counter("sim.steady.local_hits").add(metrics.local_hits)
            obs.counter("sim.steady.peer_hits").add(metrics.peer_hits)
            obs.counter("sim.steady.origin_hits").add(metrics.origin_hits)
            if span.duration_s > 0:
                obs.gauge("sim.steady.rps").set(metrics.requests / span.duration_s)
        return metrics

    def run_scalar(self, workload: Workload, count: int) -> SimulationMetrics:
        """The scalar reference implementation (one ``resolve`` per request)."""
        return self.run(workload, count, batched=False)

    def _record_batch(
        self, batch: RequestBatch, collector: MetricsCollector
    ) -> None:
        """Resolve one batch through the kernel and fold in the results."""
        kernel = self._kernel
        assert kernel is not None
        try:
            palette_idx = kernel.node_indices(batch.clients)
        except KeyError as exc:
            raise SimulationError(
                f"request from unknown router {exc.args[0]!r}"
            ) from exc
        aggregate = kernel.resolve_batch(
            palette_idx[batch.client_index], batch.ranks
        )
        served_by = {
            kernel.nodes[i]: int(n)
            for i, n in enumerate(aggregate.served_by_counts.tolist())
            if n
        }
        collector.record_batch(
            local_hits=aggregate.local_hits,
            peer_hits=aggregate.peer_hits,
            origin_hits=aggregate.origin_hits,
            total_hops=aggregate.total_hops,
            total_latency_ms=aggregate.total_latency_ms,
            served_by=served_by,
        )
        # Reproduce the per-partition store statistics the scalar path's
        # ``CCNRouter.lookup`` records request by request.
        for i, (local_hit, coordinated_hit, missed) in enumerate(
            aggregate.lookup_counts.tolist()
        ):
            if not (local_hit or coordinated_hit or missed):
                continue
            router = self.fleet[kernel.nodes[i]]
            router.local_store.hits += local_hit
            router.local_store.misses += coordinated_hit + missed
            if router.coordinated_store is not None:
                router.coordinated_store.hits += coordinated_hit
                router.coordinated_store.misses += missed


class DynamicSimulator:
    """Online cache-replacement simulation.

    Parameters
    ----------
    topology:
        The router network.
    capacity:
        Per-router content-store capacity ``c``.
    policy:
        Replacement policy name for the dynamic partitions
        (``"lru"``/``"lfu"``/``"perfect-lfu"``/``"fifo"``/``"random"``).
    coordination_level:
        ``ℓ ∈ [0, 1]``: fraction of each store run as a
        hash-coordinated partition.  ``0`` is fully non-coordinated
        (misses go straight to the origin); ``1`` is fully coordinated
        (every rank has a custodian router).
    origin / metric:
        As in :class:`SteadyStateSimulator`.
    seed:
        Seed for randomized policies — an int, or a
        ``numpy.random.SeedSequence`` child (as spawned per region by
        :mod:`repro.simulation.sharded`).
    """

    def __init__(
        self,
        topology: Topology,
        *,
        capacity: int,
        policy: str = "lru",
        coordination_level: float = 0.0,
        origin: Optional[OriginModel] = None,
        metric: str = "hops",
        seed: "int | np.random.SeedSequence" = 0,
    ):
        if int(capacity) != capacity or capacity < 1:
            raise ParameterError(
                f"capacity must be a positive integer, got {capacity}"
            )
        if not 0.0 <= coordination_level <= 1.0:
            raise ParameterError(
                f"coordination level must lie in [0, 1], got {coordination_level}"
            )
        self.topology = topology
        self.capacity = int(capacity)
        self.level = float(coordination_level)
        self.policy = policy.strip().lower()
        self.router = NearestReplicaRouter(topology, origin=origin, metric=metric)
        coordinated_slots = int(round(self.level * self.capacity))
        local_slots = self.capacity - coordinated_slots
        self.fleet: dict[NodeId, CCNRouter] = {}
        # One independent child seed stream per (router, partition):
        # arithmetic derivations like ``seed * k + i`` collide (with
        # seed=0 every router's local and coordinated streams coincide),
        # whereas SeedSequence.spawn guarantees disjoint streams.
        # The per-router sequences are kept so failure injection can
        # respawn *fresh* streams for replacement stores.
        self._partition_seeds: dict[NodeId, np.random.SeedSequence] = {}
        # Copy a caller-provided SeedSequence instead of spawning from
        # it directly: spawn advances the shared object's child counter,
        # so two simulators built from one sequence would otherwise get
        # different fleets.  Same (entropy, spawn_key) → same streams.
        root_seq = (
            np.random.SeedSequence(
                entropy=seed.entropy,
                spawn_key=seed.spawn_key,
                pool_size=seed.pool_size,
            )
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        for node, per_router in zip(
            topology.nodes, root_seq.spawn(topology.n_routers)
        ):
            self._partition_seeds[node] = per_router
            local_seq, coordinated_seq = per_router.spawn(2)
            local = make_policy(self.policy, local_slots, seed=local_seq)
            coordinated = (
                make_policy(self.policy, coordinated_slots, seed=coordinated_seq)
                if coordinated_slots > 0
                else None
            )
            self.fleet[node] = CCNRouter(node, local, coordinated)
        self._nodes = topology.nodes
        self._n_nodes = len(topology.nodes)
        self._coordinated_slots = coordinated_slots
        self._local_slots = local_slots
        self._kernel: Optional[DynamicKernel] = None
        # Hot-loop tables: the origin path cost per client and the
        # client → custodian peer decision are placement-independent,
        # so compute them once instead of per request.
        self._origin_cost = {
            node: self.router.origin_distance(node) for node in topology.nodes
        }
        self._peer_decisions: dict[tuple[NodeId, NodeId], RouteDecision] = {}

    def _custodian(self, rank: int) -> NodeId:
        """The rank's custodian router under static hash partitioning."""
        return self._nodes[rank % self._n_nodes]

    def _peer_decision(self, client: NodeId, custodian: NodeId) -> RouteDecision:
        """The (immutable, cacheable) peer-tier decision client → custodian."""
        key = (client, custodian)
        decision = self._peer_decisions.get(key)
        if decision is None:
            decision = self._peer_decisions[key] = self.router.resolve(
                client, (custodian,)
            )
        return decision

    def _resolve(self, client: NodeId, rank: int) -> RouteDecision:
        ccn_router = self.fleet.get(client)
        if ccn_router is None:
            raise SimulationError(f"request from unknown router {client!r}")
        if ccn_router.lookup(rank):
            return RouteDecision(
                tier=ServiceTier.LOCAL, server=client, hops=0.0, latency_ms=0.0
            )
        if self._coordinated_slots > 0:
            custodian = self._custodian(rank)
            if custodian is not client:
                custodian_router = self.fleet[custodian]
                # One statistics-recording lookup replaces the former
                # membership check + lookup double probe; a custodian
                # miss now counts as a miss on its coordinated store,
                # which is the store that was actually consulted.
                if custodian_router.coordinated_store.lookup(rank):
                    decision = self._peer_decision(client, custodian)
                    ccn_router.admit_local(rank)
                    return decision
                # Miss at the custodian too: fetch from origin via the
                # custodian (it admits the content for future requests).
                to_custodian = self._peer_decision(client, custodian)
                origin_hops, origin_latency = self._origin_cost[custodian]
                hops = to_custodian.hops + origin_hops
                latency = to_custodian.latency_ms + origin_latency
            else:
                custodian_router = ccn_router
                hops, latency = self._origin_cost[client]
            custodian_router.admit_coordinated(rank)
            ccn_router.admit_local(rank)
            return RouteDecision(
                tier=ServiceTier.ORIGIN, server=None, hops=hops, latency_ms=latency
            )
        hops, latency = self._origin_cost[client]
        ccn_router.admit_local(rank)
        return RouteDecision(
            tier=ServiceTier.ORIGIN, server=None, hops=hops, latency_ms=latency
        )

    def run(
        self,
        workload: Workload,
        count: int,
        *,
        warmup: int = 0,
        batched: Optional[bool] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> SimulationMetrics:
        """Drive the workload, optionally discarding a warm-up prefix.

        ``warmup`` requests are simulated (populating caches) but not
        counted, so the summary reflects steady-state behaviour — the
        regime the analytical model describes.

        ``batched=None`` (the default) drives whole
        :class:`~repro.catalog.workload.RequestBatch` columns through
        the array-backed replacement kernel
        (:mod:`repro.simulation.dynamic_batch`) whenever the workload
        provides ``batches()``, falling back to the scalar reference
        loop otherwise.  Both paths advance the same cache state (same
        eviction decisions, same random streams) and produce the same
        metrics and content-store statistics for the same seed;
        ``batched=True`` insists on the kernel (raising for duck-typed
        workloads without the batch API), ``batched=False`` forces the
        scalar loop.
        """
        if warmup < 0:
            raise ParameterError(f"warmup must be non-negative, got {warmup}")
        has_batches = hasattr(workload, "batches")
        use_batched = has_batches if batched is None else bool(batched)
        if use_batched and not has_batches:
            raise SimulationError(
                f"workload {type(workload).__name__!r} does not provide "
                "batches(); subclass repro.catalog.Workload or use "
                "batched=False"
            )
        collector = MetricsCollector()
        obs = get_session()
        with obs.span("sim.dynamic.run"):
            if use_batched:
                kernel_seconds = self._run_batched(
                    workload, count, warmup, collector, obs, batch_size
                )
            else:
                kernel_seconds = self._run_scalar_loop(
                    workload, count, warmup, collector, obs, batch_size
                )
        metrics = collector.summary()
        if obs.enabled:
            obs.counter("sim.dynamic.requests").add(metrics.requests)
            obs.counter("sim.dynamic.warmup_requests").add(warmup)
            obs.counter("sim.dynamic.local_hits").add(metrics.local_hits)
            obs.counter("sim.dynamic.peer_hits").add(metrics.peer_hits)
            obs.counter("sim.dynamic.origin_hits").add(metrics.origin_hits)
            if kernel_seconds > 0:
                # Throughput over the kernel-only spans (replacement +
                # aggregation, excluding workload generation), so the
                # gauge compares like-for-like across code paths.
                obs.gauge("sim.dynamic.rps").set(
                    (metrics.requests + warmup) / kernel_seconds
                )
        return metrics

    def run_scalar(
        self,
        workload: Workload,
        count: int,
        *,
        warmup: int = 0,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> SimulationMetrics:
        """The scalar reference implementation (one ``_resolve`` per request)."""
        return self.run(
            workload, count, warmup=warmup, batched=False, batch_size=batch_size
        )

    def _get_kernel(self, obs) -> DynamicKernel:
        """The (lazily built, placement-independent) batched kernel."""
        if self._kernel is None:
            with obs.span("sim.dynamic.kernel_build"):
                self._kernel = DynamicKernel(
                    self.topology,
                    self.router,
                    self.policy,
                    self._local_slots,
                    self._coordinated_slots,
                )
        return self._kernel

    def _run_batched(
        self, workload, count, warmup, collector, obs, batch_size
    ) -> float:
        """Kernel path: one engine session over the run's batches."""
        kernel = self._get_kernel(obs)
        session = kernel.start_run(self.fleet)
        batch_sizes = obs.histogram("sim.dynamic.batch_size")
        kernel_seconds = 0.0
        seen = 0
        try:
            for batch in workload.batches(count + warmup, batch_size=batch_size):
                n_batch = len(batch)
                batch_sizes.observe(n_batch)
                obs.counter("sim.dynamic.batches").add()
                counted_from = min(max(warmup - seen, 0), n_batch)
                with obs.span("sim.dynamic.kernel") as span:
                    aggregate = session.process(batch, counted_from)
                kernel_seconds += span.duration_s
                seen += n_batch
                served_by = {
                    kernel.nodes[i]: int(n)
                    for i, n in enumerate(aggregate.served_by_counts.tolist())
                    if n
                }
                collector.record_batch(
                    local_hits=aggregate.local_hits,
                    peer_hits=aggregate.peer_hits,
                    origin_hits=aggregate.origin_hits,
                    total_hops=aggregate.total_hops,
                    total_latency_ms=aggregate.total_latency_ms,
                    served_by=served_by,
                )
        finally:
            # Always hand mirrored state back so the fleet's contents
            # stay consistent even if a batch raised mid-run.
            session.finish()
        return kernel_seconds

    def _run_scalar_loop(
        self, workload, count, warmup, collector, obs, batch_size
    ) -> float:
        """Reference path: per-request ``_resolve``, columnar input when possible."""
        resolve = self._resolve
        record = collector.record
        if not hasattr(workload, "batches"):
            # Duck-typed workloads interleave generation with
            # resolution, so this kernel span necessarily includes
            # generation time (documented caveat for the rps gauge).
            with obs.span("sim.dynamic.kernel") as span:
                for i, request in enumerate(workload.requests(count + warmup)):
                    decision = resolve(request.client, request.rank)
                    if i >= warmup:
                        record(decision)
            return span.duration_s
        kernel_seconds = 0.0
        i = 0
        for batch in workload.batches(count + warmup, batch_size=batch_size):
            clients = batch.clients
            with obs.span("sim.dynamic.kernel") as span:
                for ci, rank in zip(
                    batch.client_index.tolist(), batch.ranks.tolist()
                ):
                    decision = resolve(clients[ci], rank)
                    if i >= warmup:
                        record(decision)
                    i += 1
            kernel_seconds += span.duration_s
        return kernel_seconds
